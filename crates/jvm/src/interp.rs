//! The bytecode interpreter.
//!
//! A single explicit frame stack drives execution; Java exceptions are
//! ordinary completions (heap references) that unwind through per-method
//! handler tables, while [`VmError`] is reserved for engine faults. Class
//! initialization (`<clinit>`) is performed by pushing initializer frames
//! and re-executing the triggering instruction.
//!
//! Every instruction is charged against a simulated cycle budget (see
//! [`insn_cost`]) so experiment timings are deterministic and
//! machine-independent.

use std::sync::Arc;

use dvm_bytecode::insn::{ArithOp, ICond, Insn, LogicOp, NumKind, NumType, ShiftOp};
use dvm_bytecode::Code;
use dvm_classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_classfile::pool::Constant;

use crate::classes::{InitState, InvokeInfo};
use crate::error::{Result, VmError};
use crate::heap::{ArrayData, ClassId, HeapObject, HeapRef};
use crate::natives::NativeResult;
use crate::value::Value;
use crate::vm::Vm;

/// Maximum frame-stack depth.
pub const MAX_FRAMES: usize = 2048;

/// How a top-level invocation completed.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// Normal return with the method's value (if non-void).
    Normal(Option<Value>),
    /// An uncaught Java exception.
    Exception(HeapRef),
}

/// One activation record.
#[derive(Debug)]
struct Frame {
    class: ClassId,
    method: usize,
    code: Arc<Code>,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

impl Frame {
    fn is_clinit(&self, vm: &Vm) -> bool {
        vm.registry.get(self.class).methods[self.method].name == "<clinit>"
    }
}

/// Simulated cycle cost of one instruction (200 MHz PentiumPro-flavored).
pub fn insn_cost(insn: &Insn) -> u64 {
    match insn {
        Insn::Nop => 1,
        Insn::New(_) => 24,
        Insn::NewArray(_) | Insn::ANewArray(_) | Insn::MultiANewArray(_, _) => 20,
        Insn::InvokeVirtual(_) | Insn::InvokeInterface(_) => 14,
        Insn::InvokeSpecial(_) | Insn::InvokeStatic(_) => 12,
        Insn::GetField(_) | Insn::PutField(_) | Insn::GetStatic(_) | Insn::PutStatic(_) => 3,
        Insn::ArrayLoad(_) | Insn::ArrayStore(_) => 2,
        Insn::Arith(_, ArithOp::Div) | Insn::Arith(_, ArithOp::Rem) => 8,
        Insn::Arith(NumKind::Float, _) | Insn::Arith(NumKind::Double, _) => 2,
        Insn::Ldc(_) | Insn::Ldc2(_) => 2,
        Insn::TableSwitch { .. } | Insn::LookupSwitch { .. } => 4,
        Insn::MonitorEnter | Insn::MonitorExit => 8,
        Insn::AThrow => 30,
        Insn::CheckCast(_) | Insn::InstanceOf(_) => 4,
        _ => 1,
    }
}

impl Vm {
    /// Invokes a static method and runs to completion.
    pub fn run_static(
        &mut self,
        class: &str,
        method: &str,
        descriptor: &str,
        args: Vec<Value>,
    ) -> Result<Completion> {
        let class_id = self.load_class(class)?;
        let (decl, idx) = self
            .registry
            .resolve_method(class_id, method, descriptor)
            .ok_or_else(|| VmError::NoSuchMember {
                class: class.to_owned(),
                name: method.to_owned(),
                descriptor: descriptor.to_owned(),
            })?;
        let mut frames: Vec<Frame> = Vec::new();
        // Initialize the class first if needed.
        if self.push_clinit_frames(&mut frames, decl)? {
            let done = execute(self, &mut frames)?;
            if let Completion::Exception(e) = done {
                return Ok(Completion::Exception(e));
            }
        }
        let m = &self.registry.get(decl).methods[idx];
        if m.is_native() {
            let name = m.name.clone();
            let desc = m.descriptor.clone();
            let decl_name = self.registry.get(decl).name.clone();
            return self.call_native_toplevel(&decl_name, &name, &desc, &args);
        }
        // Prefer compiled IR for the entry method when the exec tier has it.
        if self.exec.installed(decl, idx) {
            return crate::exec::run_ir(self, decl, idx, args);
        }
        let m = &self.registry.get(decl).methods[idx];
        let code = m
            .code
            .clone()
            .ok_or_else(|| VmError::BadCode(format!("{class}.{method} has no body")))?;
        self.exec.stats.interp_invocations += 1;
        let frame = make_frame(decl, idx, code, args);
        frames.push(frame);
        execute(self, &mut frames)
    }

    /// Convenience entry point: runs `class.main()V` or
    /// `class.main([Ljava/lang/String;)V`.
    pub fn run_main(&mut self, class: &str) -> Result<Completion> {
        let id = self.load_class(class)?;
        if self.registry.resolve_method(id, "main", "()V").is_some() {
            self.run_static(class, "main", "()V", vec![])
        } else {
            self.run_static(class, "main", "([Ljava/lang/String;)V", vec![Value::NULL])
        }
    }

    fn call_native_toplevel(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        args: &[Value],
    ) -> Result<Completion> {
        let f = self
            .natives
            .lookup(class, name, desc)
            .ok_or_else(|| VmError::MissingNative(format!("{class}.{name}:{desc}")))?;
        self.stats.invocations += 1;
        match f(self, args)? {
            NativeResult::Return(v) => Ok(Completion::Normal(v)),
            NativeResult::Throw { class, message } => {
                let e = self.make_exception(&class, &message)?;
                Ok(Completion::Exception(e))
            }
        }
    }

    /// Pushes `<clinit>` frames for `class` and its uninitialized
    /// superclasses. Returns `true` if any frame was pushed.
    fn push_clinit_frames(&mut self, frames: &mut Vec<Frame>, class: ClassId) -> Result<bool> {
        // Collect the chain bottom-up, then push sub-first so supers (pushed
        // last) execute first.
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.registry.get(id);
            if rc.init_state == InitState::NotInitialized {
                chain.push(id);
            }
            cur = rc.super_class;
        }
        if chain.is_empty() {
            return Ok(false);
        }
        let mut pushed = false;
        for id in chain {
            self.set_init_state(id, InitState::InProgress);
            let rc = self.registry.get(id);
            if let Some(idx) = rc.find_method("<clinit>", "()V") {
                if let Some(code) = rc.methods[idx].code.clone() {
                    frames.push(make_frame(id, idx, code, vec![]));
                    pushed = true;
                    continue;
                }
            }
            // No initializer body: initialization completes immediately.
            self.set_init_state(id, InitState::Initialized);
        }
        Ok(pushed)
    }
}

fn make_frame(class: ClassId, method: usize, code: Arc<Code>, args: Vec<Value>) -> Frame {
    let max_locals = code.max_locals as usize;
    let mut locals = Vec::with_capacity(max_locals.max(args.len()));
    for v in args {
        let wide = v.is_wide();
        locals.push(v);
        if wide {
            locals.push(Value::Invalid);
        }
    }
    while locals.len() < max_locals {
        locals.push(Value::Invalid);
    }
    Frame {
        class,
        method,
        code,
        pc: 0,
        locals,
        stack: Vec::new(),
    }
}

/// Runs one method on the interpreter tier to completion (used by the
/// compiled-IR executor when a callee has no compiled code).
pub(crate) fn run_interp_call(
    vm: &mut Vm,
    class: ClassId,
    method: usize,
    args: Vec<Value>,
) -> Result<Completion> {
    let m = &vm.registry.get(class).methods[method];
    let code = m
        .code
        .clone()
        .ok_or_else(|| VmError::BadCode(format!("{} is abstract", m.name)))?;
    vm.exec.stats.interp_invocations += 1;
    let mut frames = vec![make_frame(class, method, code, args)];
    execute(vm, &mut frames)
}

/// Runs `<clinit>` for `class` (and uninitialized superclasses) to
/// completion. Returns an exception that escaped initialization, if any.
pub(crate) fn run_clinit(vm: &mut Vm, class: ClassId) -> Result<Option<HeapRef>> {
    let mut frames = Vec::new();
    if vm.push_clinit_frames(&mut frames, class)? {
        if let Completion::Exception(e) = execute(vm, &mut frames)? {
            return Ok(Some(e));
        }
    }
    Ok(None)
}

// ---- Stack helpers ----------------------------------------------------------

fn pop(frame: &mut Frame) -> Result<Value> {
    frame
        .stack
        .pop()
        .ok_or_else(|| VmError::BadCode("operand stack underflow".into()))
}

fn pop_int(frame: &mut Frame) -> Result<i32> {
    match pop(frame)? {
        Value::Int(v) => Ok(v),
        other => Err(VmError::BadCode(format!("expected int, got {other:?}"))),
    }
}

fn pop_long(frame: &mut Frame) -> Result<i64> {
    match pop(frame)? {
        Value::Long(v) => Ok(v),
        other => Err(VmError::BadCode(format!("expected long, got {other:?}"))),
    }
}

fn pop_float(frame: &mut Frame) -> Result<f32> {
    match pop(frame)? {
        Value::Float(v) => Ok(v),
        other => Err(VmError::BadCode(format!("expected float, got {other:?}"))),
    }
}

fn pop_double(frame: &mut Frame) -> Result<f64> {
    match pop(frame)? {
        Value::Double(v) => Ok(v),
        other => Err(VmError::BadCode(format!("expected double, got {other:?}"))),
    }
}

fn pop_ref(frame: &mut Frame) -> Result<Option<HeapRef>> {
    match pop(frame)? {
        Value::Ref(r) => Ok(r),
        other => Err(VmError::BadCode(format!(
            "expected reference, got {other:?}"
        ))),
    }
}

/// What the main loop should do after a step.
enum Step {
    /// Advance to the next instruction.
    Next,
    /// `pc` was set explicitly (branch, re-execution, call, return).
    Jumped,
    /// Raise a Java exception.
    Throw(HeapRef),
    /// The outermost frame returned.
    Finished(Option<Value>),
}

/// Runs the frame stack to completion.
fn execute(vm: &mut Vm, frames: &mut Vec<Frame>) -> Result<Completion> {
    // The inner loop runs instructions of one activation without re-cloning
    // the shared code Arc; it re-snapshots whenever the frame stack changes
    // (call, return, unwinding).
    while !frames.is_empty() {
        let (code, depth) = {
            let f = frames.last().expect("checked non-empty");
            (f.code.clone(), frames.len())
        };
        loop {
            if frames.len() != depth {
                break; // frame stack changed: re-snapshot
            }
            let Some(frame) = frames.last_mut() else {
                break;
            };
            if frame.pc >= code.insns.len() {
                return Err(VmError::BadCode("fell off the end of a method".into()));
            }
            if let Some(fuel) = vm.fuel.as_mut() {
                if *fuel == 0 {
                    return Err(VmError::OutOfFuel);
                }
                *fuel -= 1;
            }
            let insn = &code.insns[frame.pc];
            vm.stats.instructions += 1;
            vm.stats.cycles += insn_cost(insn);

            match step(vm, frames, insn)? {
                Step::Next => {
                    if let Some(f) = frames.last_mut() {
                        f.pc += 1;
                    }
                }
                Step::Jumped => {}
                Step::Throw(exc) => {
                    if !unwind(vm, frames, exc)? {
                        return Ok(Completion::Exception(exc));
                    }
                    break; // handler may be in a different frame
                }
                Step::Finished(v) => return Ok(Completion::Normal(v)),
            }
        }
    }
    Ok(Completion::Normal(None))
}

/// Unwinds `frames` looking for a handler for `exc`. Returns `false` when
/// the exception escapes the outermost frame.
fn unwind(vm: &mut Vm, frames: &mut Vec<Frame>, exc: HeapRef) -> Result<bool> {
    let exc_class = vm.class_of(exc)?;
    while let Some(frame) = frames.last_mut() {
        let pc = frame.pc;
        let mut target = None;
        let handlers = frame.code.handlers.clone();
        for h in &handlers {
            if pc < h.start || pc >= h.end {
                continue;
            }
            if h.catch_type == 0 {
                target = Some(h.handler);
                break;
            }
            let catch_name = {
                let rc = vm.registry.get(frame.class);
                rc.pool.get_class_name(h.catch_type)?.to_owned()
            };
            let catch_id = vm.load_class(&catch_name)?;
            if vm.registry.is_subtype(exc_class, catch_id) {
                target = Some(h.handler);
                break;
            }
        }
        // Re-borrow: load_class above may not invalidate, but be explicit.
        let frame = frames.last_mut().expect("frame checked above");
        if let Some(t) = target {
            frame.stack.clear();
            frame.stack.push(Value::Ref(Some(exc)));
            frame.pc = t;
            return Ok(true);
        }
        let finished_clinit = frame.is_clinit(vm);
        let class = frame.class;
        frames.pop();
        if finished_clinit {
            // An exception escaping <clinit> leaves the class erroneous; we
            // model the common path by marking it initialized so execution
            // can surface the exception.
            vm.set_init_state(class, InitState::Initialized);
        }
    }
    Ok(false)
}

/// Helper: the current (top) frame.
macro_rules! top {
    ($frames:expr) => {
        $frames
            .last_mut()
            .expect("frame stack cannot be empty during step")
    };
}

fn throw(vm: &mut Vm, class: &str, msg: String) -> Result<Step> {
    let e = vm.make_exception(class, &msg)?;
    Ok(Step::Throw(e))
}

#[allow(clippy::too_many_lines)]
fn step(vm: &mut Vm, frames: &mut Vec<Frame>, insn: &Insn) -> Result<Step> {
    match insn {
        Insn::Nop => Ok(Step::Next),
        Insn::AConstNull => {
            top!(frames).stack.push(Value::NULL);
            Ok(Step::Next)
        }
        Insn::IConst(v) => {
            top!(frames).stack.push(Value::Int(*v));
            Ok(Step::Next)
        }
        Insn::LConst(v) => {
            top!(frames).stack.push(Value::Long(*v));
            Ok(Step::Next)
        }
        Insn::FConst(v) => {
            top!(frames).stack.push(Value::Float(*v));
            Ok(Step::Next)
        }
        Insn::DConst(v) => {
            top!(frames).stack.push(Value::Double(*v));
            Ok(Step::Next)
        }
        Insn::Ldc(idx) | Insn::Ldc2(idx) => {
            let constant = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get(*idx)?.clone()
            };
            let v = match constant {
                Constant::Integer(v) => Value::Int(v),
                Constant::Float(v) => Value::Float(v),
                Constant::Long(v) => Value::Long(v),
                Constant::Double(v) => Value::Double(v),
                Constant::String { .. } => {
                    let s = {
                        let rc = vm.registry.get(top!(frames).class);
                        rc.pool.get_string(*idx)?.to_owned()
                    };
                    Value::Ref(Some(vm.intern_string(&s)?))
                }
                other => {
                    return Err(VmError::BadCode(format!("ldc of {:?}", other.kind())));
                }
            };
            top!(frames).stack.push(v);
            Ok(Step::Next)
        }
        Insn::Load(_, slot) => {
            let slot = *slot;
            let frame = top!(frames);
            let v = *frame
                .locals
                .get(slot as usize)
                .ok_or_else(|| VmError::BadCode(format!("local {slot} out of range")))?;
            frame.stack.push(v);
            Ok(Step::Next)
        }
        Insn::Store(_, slot) => {
            let slot = *slot;
            let frame = top!(frames);
            let v = pop(frame)?;
            let slot = slot as usize;
            if slot >= frame.locals.len() {
                return Err(VmError::BadCode(format!("local {slot} out of range")));
            }
            let wide = v.is_wide();
            frame.locals[slot] = v;
            if wide && slot + 1 < frame.locals.len() {
                frame.locals[slot + 1] = Value::Invalid;
            }
            Ok(Step::Next)
        }
        Insn::ArrayLoad(_) => {
            let frame = top!(frames);
            let index = pop_int(frame)?;
            let arr = pop_ref(frame)?;
            let Some(arr) = arr else {
                return throw(vm, "java/lang/NullPointerException", "array load".into());
            };
            let obj = vm.heap.get(arr)?;
            let HeapObject::Array(data) = obj else {
                return Err(VmError::BadCode("array load on non-array".into()));
            };
            if index < 0 || index as usize >= data.len() {
                let len = data.len();
                return throw(
                    vm,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            let v = match data {
                ArrayData::Byte(v) => Value::Int(v[i] as i32),
                ArrayData::Char(v) => Value::Int(v[i] as i32),
                ArrayData::Short(v) => Value::Int(v[i] as i32),
                ArrayData::Int(v) => Value::Int(v[i]),
                ArrayData::Long(v) => Value::Long(v[i]),
                ArrayData::Float(v) => Value::Float(v[i]),
                ArrayData::Double(v) => Value::Double(v[i]),
                ArrayData::Ref(_, v) => Value::Ref(v[i]),
            };
            top!(frames).stack.push(v);
            Ok(Step::Next)
        }
        Insn::ArrayStore(_) => {
            let frame = top!(frames);
            let value = pop(frame)?;
            let index = pop_int(frame)?;
            let arr = pop_ref(frame)?;
            let Some(arr) = arr else {
                return throw(vm, "java/lang/NullPointerException", "array store".into());
            };
            let len = match vm.heap.get(arr)? {
                HeapObject::Array(d) => d.len(),
                _ => return Err(VmError::BadCode("array store on non-array".into())),
            };
            if index < 0 || index as usize >= len {
                return throw(
                    vm,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            let HeapObject::Array(data) = vm.heap.get_mut(arr)? else {
                unreachable!("checked above");
            };
            match (data, value) {
                (ArrayData::Byte(v), Value::Int(x)) => v[i] = x as i8,
                (ArrayData::Char(v), Value::Int(x)) => v[i] = x as u16,
                (ArrayData::Short(v), Value::Int(x)) => v[i] = x as i16,
                (ArrayData::Int(v), Value::Int(x)) => v[i] = x,
                (ArrayData::Long(v), Value::Long(x)) => v[i] = x,
                (ArrayData::Float(v), Value::Float(x)) => v[i] = x,
                (ArrayData::Double(v), Value::Double(x)) => v[i] = x,
                (ArrayData::Ref(_, v), Value::Ref(x)) => v[i] = x,
                (d, v) => {
                    return Err(VmError::BadCode(format!(
                        "array store kind mismatch {d:?} <- {v:?}"
                    )))
                }
            }
            Ok(Step::Next)
        }
        Insn::Pop => {
            pop(top!(frames))?;
            Ok(Step::Next)
        }
        Insn::Pop2 => {
            let frame = top!(frames);
            let v = pop(frame)?;
            if !v.is_wide() {
                pop(frame)?;
            }
            Ok(Step::Next)
        }
        Insn::Dup => {
            let frame = top!(frames);
            let v = *frame
                .stack
                .last()
                .ok_or_else(|| VmError::BadCode("dup on empty stack".into()))?;
            frame.stack.push(v);
            Ok(Step::Next)
        }
        Insn::DupX1 => dup_block(top!(frames), 1, BlockSel::One),
        Insn::DupX2 => dup_block(top!(frames), 1, BlockSel::Auto),
        Insn::Dup2 => dup_block(top!(frames), 2, BlockSel::None),
        Insn::Dup2X1 => dup_block(top!(frames), 2, BlockSel::One),
        Insn::Dup2X2 => dup_block(top!(frames), 2, BlockSel::Auto),
        Insn::Swap => {
            let frame = top!(frames);
            let a = pop(frame)?;
            let b = pop(frame)?;
            frame.stack.push(a);
            frame.stack.push(b);
            Ok(Step::Next)
        }
        Insn::Arith(kind, op) => arith(vm, frames, *kind, *op),
        Insn::Shift(kind, op) => {
            let (kind, op) = (*kind, *op);
            let frame = top!(frames);
            let amount = pop_int(frame)?;
            match kind {
                NumKind::Int => {
                    let v = pop_int(frame)?;
                    let s = amount & 0x1F;
                    let r = match op {
                        ShiftOp::Shl => v.wrapping_shl(s as u32),
                        ShiftOp::Shr => v.wrapping_shr(s as u32),
                        ShiftOp::Ushr => ((v as u32).wrapping_shr(s as u32)) as i32,
                    };
                    frame.stack.push(Value::Int(r));
                }
                NumKind::Long => {
                    let v = pop_long(frame)?;
                    let s = amount & 0x3F;
                    let r = match op {
                        ShiftOp::Shl => v.wrapping_shl(s as u32),
                        ShiftOp::Shr => v.wrapping_shr(s as u32),
                        ShiftOp::Ushr => ((v as u64).wrapping_shr(s as u32)) as i64,
                    };
                    frame.stack.push(Value::Long(r));
                }
                _ => return Err(VmError::BadCode("shift on float kind".into())),
            }
            Ok(Step::Next)
        }
        Insn::Logic(kind, op) => {
            let (kind, op) = (*kind, *op);
            let frame = top!(frames);
            match kind {
                NumKind::Int => {
                    let b = pop_int(frame)?;
                    let a = pop_int(frame)?;
                    let r = match op {
                        LogicOp::And => a & b,
                        LogicOp::Or => a | b,
                        LogicOp::Xor => a ^ b,
                    };
                    frame.stack.push(Value::Int(r));
                }
                NumKind::Long => {
                    let b = pop_long(frame)?;
                    let a = pop_long(frame)?;
                    let r = match op {
                        LogicOp::And => a & b,
                        LogicOp::Or => a | b,
                        LogicOp::Xor => a ^ b,
                    };
                    frame.stack.push(Value::Long(r));
                }
                _ => return Err(VmError::BadCode("logic on float kind".into())),
            }
            Ok(Step::Next)
        }
        Insn::IInc(slot, delta) => {
            let (slot, delta) = (*slot, *delta);
            let frame = top!(frames);
            match frame.locals.get_mut(slot as usize) {
                Some(Value::Int(v)) => {
                    *v = v.wrapping_add(delta as i32);
                    Ok(Step::Next)
                }
                other => Err(VmError::BadCode(format!("iinc on {other:?}"))),
            }
        }
        Insn::Convert(from, to) => {
            let (from, to) = (*from, *to);
            let frame = top!(frames);
            let v = match (from, to) {
                (NumType::Int, NumType::Long) => Value::Long(pop_int(frame)? as i64),
                (NumType::Int, NumType::Float) => Value::Float(pop_int(frame)? as f32),
                (NumType::Int, NumType::Double) => Value::Double(pop_int(frame)? as f64),
                (NumType::Int, NumType::Byte) => Value::Int(pop_int(frame)? as i8 as i32),
                (NumType::Int, NumType::Char) => Value::Int(pop_int(frame)? as u16 as i32),
                (NumType::Int, NumType::Short) => Value::Int(pop_int(frame)? as i16 as i32),
                (NumType::Long, NumType::Int) => Value::Int(pop_long(frame)? as i32),
                (NumType::Long, NumType::Float) => Value::Float(pop_long(frame)? as f32),
                (NumType::Long, NumType::Double) => Value::Double(pop_long(frame)? as f64),
                (NumType::Float, NumType::Int) => Value::Int(f2i(pop_float(frame)? as f64)),
                (NumType::Float, NumType::Long) => Value::Long(f2l(pop_float(frame)? as f64)),
                (NumType::Float, NumType::Double) => Value::Double(pop_float(frame)? as f64),
                (NumType::Double, NumType::Int) => Value::Int(f2i(pop_double(frame)?)),
                (NumType::Double, NumType::Long) => Value::Long(f2l(pop_double(frame)?)),
                (NumType::Double, NumType::Float) => Value::Float(pop_double(frame)? as f32),
                (a, b) => return Err(VmError::BadCode(format!("bad conversion {a:?} -> {b:?}"))),
            };
            frame.stack.push(v);
            Ok(Step::Next)
        }
        Insn::LCmp => {
            let frame = top!(frames);
            let b = pop_long(frame)?;
            let a = pop_long(frame)?;
            frame.stack.push(Value::Int(match a.cmp(&b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }));
            Ok(Step::Next)
        }
        Insn::FCmp(g) => {
            let g = *g;
            let frame = top!(frames);
            let b = pop_float(frame)?;
            let a = pop_float(frame)?;
            frame.stack.push(Value::Int(fcmp(a as f64, b as f64, g)));
            Ok(Step::Next)
        }
        Insn::DCmp(g) => {
            let g = *g;
            let frame = top!(frames);
            let b = pop_double(frame)?;
            let a = pop_double(frame)?;
            frame.stack.push(Value::Int(fcmp(a, b, g)));
            Ok(Step::Next)
        }
        Insn::If(cond, target) => {
            let (cond, target) = (*cond, *target);
            let frame = top!(frames);
            let v = pop_int(frame)?;
            branch_if(frame, icond(cond, v, 0), target)
        }
        Insn::IfICmp(cond, target) => {
            let (cond, target) = (*cond, *target);
            let frame = top!(frames);
            let b = pop_int(frame)?;
            let a = pop_int(frame)?;
            branch_if(frame, icond(cond, a, b), target)
        }
        Insn::IfACmp(eq, target) => {
            let (eq, target) = (*eq, *target);
            let frame = top!(frames);
            let b = pop_ref(frame)?;
            let a = pop_ref(frame)?;
            branch_if(frame, (a == b) == eq, target)
        }
        Insn::IfNull(target) => {
            let target = *target;
            let frame = top!(frames);
            let v = pop_ref(frame)?;
            branch_if(frame, v.is_none(), target)
        }
        Insn::IfNonNull(target) => {
            let target = *target;
            let frame = top!(frames);
            let v = pop_ref(frame)?;
            branch_if(frame, v.is_some(), target)
        }
        Insn::Goto(target) => {
            top!(frames).pc = *target;
            Ok(Step::Jumped)
        }
        Insn::Jsr(target) => {
            let target = *target;
            let frame = top!(frames);
            frame.stack.push(Value::RetAddr(frame.pc as u32 + 1));
            frame.pc = target;
            Ok(Step::Jumped)
        }
        Insn::Ret(slot) => {
            let slot = *slot;
            let frame = top!(frames);
            match frame.locals.get(slot as usize) {
                Some(Value::RetAddr(pc)) => {
                    frame.pc = *pc as usize;
                    Ok(Step::Jumped)
                }
                other => Err(VmError::BadCode(format!("ret on {other:?}"))),
            }
        }
        Insn::TableSwitch {
            default,
            low,
            targets,
        } => {
            let (default, low) = (*default, *low);
            let frame = top!(frames);
            let v = pop_int(frame)?;
            let idx = v.wrapping_sub(low);
            let t = if idx >= 0 && (idx as usize) < targets.len() {
                targets[idx as usize]
            } else {
                default
            };
            frame.pc = t;
            Ok(Step::Jumped)
        }
        Insn::LookupSwitch { default, pairs } => {
            let default = *default;
            let frame = top!(frames);
            let v = pop_int(frame)?;
            let t = pairs
                .iter()
                .find(|(k, _)| *k == v)
                .map(|(_, t)| *t)
                .unwrap_or(default);
            frame.pc = t;
            Ok(Step::Jumped)
        }
        Insn::Return(kind) => {
            let kind = *kind;
            let frame = top!(frames);
            let ret = match kind {
                Some(_) => Some(pop(frame)?),
                None => None,
            };
            let was_clinit = frame.is_clinit(vm);
            let class = frame.class;
            frames.pop();
            if was_clinit {
                vm.set_init_state(class, InitState::Initialized);
            }
            match frames.last_mut() {
                Some(caller) => {
                    if let Some(v) = ret {
                        caller.stack.push(v);
                    }
                    Ok(Step::Jumped) // caller.pc already advanced at call
                }
                None => Ok(Step::Finished(ret)),
            }
        }
        Insn::GetStatic(idx) => static_field(vm, frames, *idx, false),
        Insn::PutStatic(idx) => static_field(vm, frames, *idx, true),
        Insn::GetField(idx) => {
            let idx = *idx;
            let caller = top!(frames).class;
            let obj = pop_ref(top!(frames))?;
            let Some(obj) = obj else {
                return throw(vm, "java/lang/NullPointerException", "getfield".into());
            };
            let off = instance_field_offset(vm, caller, idx, obj)?;
            let v = match vm.heap.get(obj)? {
                HeapObject::Instance { fields, .. } => fields[off],
                _ => return Err(VmError::BadCode("getfield on non-instance".into())),
            };
            top!(frames).stack.push(v);
            Ok(Step::Next)
        }
        Insn::PutField(idx) => {
            let idx = *idx;
            let caller = top!(frames).class;
            let frame = top!(frames);
            let value = pop(frame)?;
            let obj = pop_ref(frame)?;
            let Some(obj) = obj else {
                return throw(vm, "java/lang/NullPointerException", "putfield".into());
            };
            let off = instance_field_offset(vm, caller, idx, obj)?;
            match vm.heap.get_mut(obj)? {
                HeapObject::Instance { fields, .. } => fields[off] = value,
                _ => return Err(VmError::BadCode("putfield on non-instance".into())),
            }
            Ok(Step::Next)
        }
        Insn::InvokeVirtual(idx) | Insn::InvokeInterface(idx) => {
            invoke(vm, frames, *idx, Dispatch::Virtual)
        }
        Insn::InvokeSpecial(idx) => invoke(vm, frames, *idx, Dispatch::Special),
        Insn::InvokeStatic(idx) => invoke(vm, frames, *idx, Dispatch::Static),
        Insn::New(idx) => {
            let idx = *idx;
            let class_name = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get_class_name(idx)?.to_owned()
            };
            let class = vm.load_class(&class_name)?;
            if vm.registry.get(class).init_state == InitState::NotInitialized {
                let mut tmp = Vec::new();
                if vm.push_clinit_frames(&mut tmp, class)? {
                    frames.extend(tmp);
                    return Ok(Step::Jumped); // re-execute `new` after clinit
                }
            }
            maybe_gc(vm, frames);
            let r = vm.alloc_instance(class)?;
            top!(frames).stack.push(Value::Ref(Some(r)));
            Ok(Step::Next)
        }
        Insn::NewArray(kind) => {
            let kind = *kind;
            let frame = top!(frames);
            let len = pop_int(frame)?;
            if len < 0 {
                return throw(vm, "java/lang/NegativeArraySizeException", len.to_string());
            }
            maybe_gc(vm, frames);
            let n = len as usize;
            let data = match kind {
                dvm_bytecode::AKind::Byte => ArrayData::Byte(vec![0; n]),
                dvm_bytecode::AKind::Char => ArrayData::Char(vec![0; n]),
                dvm_bytecode::AKind::Short => ArrayData::Short(vec![0; n]),
                dvm_bytecode::AKind::Int => ArrayData::Int(vec![0; n]),
                dvm_bytecode::AKind::Long => ArrayData::Long(vec![0; n]),
                dvm_bytecode::AKind::Float => ArrayData::Float(vec![0.0; n]),
                dvm_bytecode::AKind::Double => ArrayData::Double(vec![0.0; n]),
                dvm_bytecode::AKind::Ref => {
                    return Err(VmError::BadCode("newarray of reference kind".into()))
                }
            };
            vm.stats.allocations += 1;
            let r = vm.heap.alloc(HeapObject::Array(data))?;
            top!(frames).stack.push(Value::Ref(Some(r)));
            Ok(Step::Next)
        }
        Insn::ANewArray(idx) => {
            let idx = *idx;
            let elem = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get_class_name(idx)?.to_owned()
            };
            let frame = top!(frames);
            let len = pop_int(frame)?;
            if len < 0 {
                return throw(vm, "java/lang/NegativeArraySizeException", len.to_string());
            }
            maybe_gc(vm, frames);
            vm.stats.allocations += 1;
            let r = vm.heap.alloc(HeapObject::Array(ArrayData::Ref(
                elem,
                vec![None; len as usize],
            )))?;
            top!(frames).stack.push(Value::Ref(Some(r)));
            Ok(Step::Next)
        }
        Insn::ArrayLength => {
            let frame = top!(frames);
            let arr = pop_ref(frame)?;
            let Some(arr) = arr else {
                return throw(vm, "java/lang/NullPointerException", "arraylength".into());
            };
            let len = match vm.heap.get(arr)? {
                HeapObject::Array(d) => d.len(),
                HeapObject::Str(s) => s.len(),
                _ => return Err(VmError::BadCode("arraylength on non-array".into())),
            };
            top!(frames).stack.push(Value::Int(len as i32));
            Ok(Step::Next)
        }
        Insn::AThrow => {
            let frame = top!(frames);
            let exc = pop_ref(frame)?;
            match exc {
                Some(e) => Ok(Step::Throw(e)),
                None => throw(
                    vm,
                    "java/lang/NullPointerException",
                    "athrow of null".into(),
                ),
            }
        }
        Insn::CheckCast(idx) => {
            let idx = *idx;
            let target = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get_class_name(idx)?.to_owned()
            };
            let frame = top!(frames);
            let v = pop_ref(frame)?;
            let ok = match v {
                None => true,
                Some(r) => reference_instanceof(vm, r, &target)?,
            };
            if ok {
                top!(frames).stack.push(Value::Ref(v));
                Ok(Step::Next)
            } else {
                throw(vm, "java/lang/ClassCastException", target)
            }
        }
        Insn::InstanceOf(idx) => {
            let idx = *idx;
            let target = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get_class_name(idx)?.to_owned()
            };
            let frame = top!(frames);
            let v = pop_ref(frame)?;
            let res = match v {
                None => 0,
                Some(r) => reference_instanceof(vm, r, &target)? as i32,
            };
            top!(frames).stack.push(Value::Int(res));
            Ok(Step::Next)
        }
        Insn::MonitorEnter | Insn::MonitorExit => {
            // Single-threaded model: monitors are cycle cost only.
            let frame = top!(frames);
            let v = pop_ref(frame)?;
            if v.is_none() {
                return throw(vm, "java/lang/NullPointerException", "monitor".into());
            }
            Ok(Step::Next)
        }
        Insn::MultiANewArray(idx, dims) => {
            let (idx, dims) = (*idx, *dims);
            let desc = {
                let rc = vm.registry.get(top!(frames).class);
                rc.pool.get_class_name(idx)?.to_owned()
            };
            let frame = top!(frames);
            let mut sizes = Vec::with_capacity(dims as usize);
            for _ in 0..dims {
                sizes.push(pop_int(frame)?);
            }
            sizes.reverse();
            if sizes.iter().any(|&s| s < 0) {
                return throw(
                    vm,
                    "java/lang/NegativeArraySizeException",
                    format!("{sizes:?}"),
                );
            }
            maybe_gc(vm, frames);
            let ft = FieldType::parse(&desc)?;
            let r = alloc_multi(vm, &ft, &sizes)?;
            top!(frames).stack.push(Value::Ref(Some(r)));
            Ok(Step::Next)
        }
    }
}

/// Resolves (and caches) a static-field site to `(declaring class,
/// offset)` for `idx` in `caller`'s pool.
pub(crate) fn resolve_static_site(
    vm: &mut Vm,
    caller: ClassId,
    idx: u16,
) -> Result<(ClassId, usize)> {
    if let Some(&t) = vm.registry.get(caller).sfield_cache.get(&idx) {
        return Ok(t);
    }
    let (class_name, field_name) = {
        let rc = vm.registry.get(caller);
        let (c, n, _) = rc.pool.get_member_ref(idx)?;
        (c.to_owned(), n.to_owned())
    };
    let class = vm.load_class(&class_name)?;
    let Some(t) = vm.registry.resolve_static(class, &field_name) else {
        return Err(VmError::NoSuchMember {
            class: class_name,
            name: field_name,
            descriptor: "<static>".into(),
        });
    };
    vm.registry.get_mut(caller).sfield_cache.insert(idx, t);
    Ok(t)
}

/// Handles `getstatic`/`putstatic`, triggering class initialization.
#[allow(clippy::ptr_arg)] // clinit frames are pushed onto the live stack
fn static_field(vm: &mut Vm, frames: &mut Vec<Frame>, idx: u16, is_put: bool) -> Result<Step> {
    let caller = top!(frames).class;
    let (decl, off) = resolve_static_site(vm, caller, idx)?;
    if vm.registry.get(decl).init_state == InitState::NotInitialized {
        let mut tmp = Vec::new();
        if vm.push_clinit_frames(&mut tmp, decl)? {
            frames.extend(tmp);
            return Ok(Step::Jumped); // re-execute after clinit
        }
    }
    if is_put {
        let v = pop(top!(frames))?;
        vm.registry.get_mut(decl).statics[off] = v;
    } else {
        let v = vm.registry.get(decl).statics[off];
        top!(frames).stack.push(v);
    }
    Ok(Step::Next)
}

/// Resolves (and caches) an instance-field offset for `idx` in `caller`'s
/// pool. Offsets are receiver-independent because subclass layouts share
/// the superclass prefix.
pub(crate) fn instance_field_offset(
    vm: &mut Vm,
    caller: ClassId,
    idx: u16,
    receiver: HeapRef,
) -> Result<usize> {
    if let Some(&off) = vm.registry.get(caller).ifield_cache.get(&idx) {
        return Ok(off);
    }
    let field_name = {
        let rc = vm.registry.get(caller);
        rc.pool.get_member_ref(idx)?.1.to_owned()
    };
    let class = vm.class_of(receiver)?;
    let Some(off) = vm.registry.resolve_field(class, &field_name) else {
        return Err(VmError::NoSuchMember {
            class: vm.registry.get(class).name.clone(),
            name: field_name,
            descriptor: "<instance>".into(),
        });
    };
    vm.registry.get_mut(caller).ifield_cache.insert(idx, off);
    Ok(off)
}

pub(crate) fn icond(cond: ICond, a: i32, b: i32) -> bool {
    match cond {
        ICond::Eq => a == b,
        ICond::Ne => a != b,
        ICond::Lt => a < b,
        ICond::Ge => a >= b,
        ICond::Gt => a > b,
        ICond::Le => a <= b,
    }
}

fn branch_if(frame: &mut Frame, take: bool, target: usize) -> Result<Step> {
    if take {
        frame.pc = target;
        Ok(Step::Jumped)
    } else {
        Ok(Step::Next)
    }
}

pub(crate) fn fcmp(a: f64, b: f64, g: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if g {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

pub(crate) fn f2i(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

pub(crate) fn f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Which values form the inserted-below block for dup variants.
enum BlockSel {
    /// No insertion: plain duplication (dup2).
    None,
    /// Skip exactly one value (x1 forms).
    One,
    /// Skip one wide value or two narrow values (x2 forms).
    Auto,
}

fn dup_block(frame: &mut Frame, top_slots: u16, below: BlockSel) -> Result<Step> {
    // Collect the top block (top_slots slots: one wide value or that many
    // narrow values).
    let mut block = Vec::new();
    let mut slots = 0;
    while slots < top_slots {
        let v = pop(frame)?;
        slots += if v.is_wide() { 2 } else { 1 };
        block.push(v);
    }
    let mut skipped = Vec::new();
    match below {
        BlockSel::None => {}
        BlockSel::One => skipped.push(pop(frame)?),
        BlockSel::Auto => {
            let v = pop(frame)?;
            let wide = v.is_wide();
            skipped.push(v);
            if !wide {
                skipped.push(pop(frame)?);
            }
        }
    }
    // Push: copy of block, then skipped, then block again (all restoring
    // original order: block/skipped were collected top-first).
    for v in block.iter().rev() {
        frame.stack.push(*v);
    }
    for v in skipped.iter().rev() {
        frame.stack.push(*v);
    }
    for v in block.iter().rev() {
        frame.stack.push(*v);
    }
    Ok(Step::Next)
}

fn arith(vm: &mut Vm, frames: &mut [Frame], kind: NumKind, op: ArithOp) -> Result<Step> {
    let frame = top!(frames);
    match kind {
        NumKind::Int => {
            if op == ArithOp::Neg {
                let v = pop_int(frame)?;
                frame.stack.push(Value::Int(v.wrapping_neg()));
                return Ok(Step::Next);
            }
            let b = pop_int(frame)?;
            let a = pop_int(frame)?;
            let r = match op {
                ArithOp::Add => a.wrapping_add(b),
                ArithOp::Sub => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return throw(vm, "java/lang/ArithmeticException", "/ by zero".into());
                    }
                    a.wrapping_div(b)
                }
                ArithOp::Rem => {
                    if b == 0 {
                        return throw(vm, "java/lang/ArithmeticException", "% by zero".into());
                    }
                    a.wrapping_rem(b)
                }
                ArithOp::Neg => unreachable!(),
            };
            frame.stack.push(Value::Int(r));
        }
        NumKind::Long => {
            if op == ArithOp::Neg {
                let v = pop_long(frame)?;
                frame.stack.push(Value::Long(v.wrapping_neg()));
                return Ok(Step::Next);
            }
            let b = pop_long(frame)?;
            let a = pop_long(frame)?;
            let r = match op {
                ArithOp::Add => a.wrapping_add(b),
                ArithOp::Sub => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return throw(vm, "java/lang/ArithmeticException", "/ by zero".into());
                    }
                    a.wrapping_div(b)
                }
                ArithOp::Rem => {
                    if b == 0 {
                        return throw(vm, "java/lang/ArithmeticException", "% by zero".into());
                    }
                    a.wrapping_rem(b)
                }
                ArithOp::Neg => unreachable!(),
            };
            frame.stack.push(Value::Long(r));
        }
        NumKind::Float => {
            if op == ArithOp::Neg {
                let v = pop_float(frame)?;
                frame.stack.push(Value::Float(-v));
                return Ok(Step::Next);
            }
            let b = pop_float(frame)?;
            let a = pop_float(frame)?;
            let r = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Rem => a % b,
                ArithOp::Neg => unreachable!(),
            };
            frame.stack.push(Value::Float(r));
        }
        NumKind::Double => {
            if op == ArithOp::Neg {
                let v = pop_double(frame)?;
                frame.stack.push(Value::Double(-v));
                return Ok(Step::Next);
            }
            let b = pop_double(frame)?;
            let a = pop_double(frame)?;
            let r = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Rem => a % b,
                ArithOp::Neg => unreachable!(),
            };
            frame.stack.push(Value::Double(r));
        }
    }
    Ok(Step::Next)
}

/// Dispatch style for invocations.
enum Dispatch {
    Virtual,
    Special,
    Static,
}

/// Resolves (and caches) the invoke-site information for `idx` in
/// `caller`'s pool.
pub(crate) fn invoke_info(
    vm: &mut Vm,
    caller: ClassId,
    idx: u16,
    is_static: bool,
) -> Result<InvokeInfo> {
    if let Some(info) = vm.registry.get(caller).invoke_cache.get(&idx) {
        return Ok(info.clone());
    }
    let (class_name, method_name, method_desc) = {
        let rc = vm.registry.get(caller);
        let (c, n, d) = rc.pool.get_member_ref(idx)?;
        (c.to_owned(), n.to_owned(), d.to_owned())
    };
    let decl_class = vm.load_class(&class_name)?;
    let md = MethodDescriptor::parse(&method_desc)?;
    // Statically resolve the target for static/special dispatch (the
    // binding never changes); virtual dispatch caches per receiver class.
    let static_target = if is_static {
        vm.registry
            .resolve_method(decl_class, &method_name, &method_desc)
    } else {
        None
    };
    let info = InvokeInfo {
        name: Arc::from(method_name.as_str()),
        descriptor: Arc::from(method_desc.as_str()),
        decl_class,
        param_count: md.params.len(),
        static_target,
    };
    vm.registry
        .get_mut(caller)
        .invoke_cache
        .insert(idx, info.clone());
    Ok(info)
}

/// Looks up (and caches on the method) the native implementation.
pub(crate) fn native_fn_of(
    vm: &mut Vm,
    class: ClassId,
    method: usize,
) -> Result<crate::natives::NativeFn> {
    if let Some(f) = vm.registry.get(class).methods[method].native_impl {
        return Ok(f);
    }
    let (decl_name, name, desc) = {
        let rc = vm.registry.get(class);
        let m = &rc.methods[method];
        (rc.name.clone(), m.name.clone(), m.descriptor.clone())
    };
    let f = vm
        .natives
        .lookup(&decl_name, &name, &desc)
        .ok_or_else(|| VmError::MissingNative(format!("{decl_name}.{name}:{desc}")))?;
    vm.registry.get_mut(class).methods[method].native_impl = Some(f);
    Ok(f)
}

fn invoke(vm: &mut Vm, frames: &mut Vec<Frame>, idx: u16, dispatch: Dispatch) -> Result<Step> {
    let caller = top!(frames).class;
    let is_static_dispatch = matches!(dispatch, Dispatch::Static | Dispatch::Special);
    let info = invoke_info(vm, caller, idx, is_static_dispatch)?;
    let decl_class = info.decl_class;
    if matches!(dispatch, Dispatch::Static)
        && vm.registry.get(decl_class).init_state == InitState::NotInitialized
    {
        let mut tmp = Vec::new();
        if vm.push_clinit_frames(&mut tmp, decl_class)? {
            frames.extend(tmp);
            return Ok(Step::Jumped); // re-execute the invoke after clinit
        }
    }

    // Pop receiver + arguments into the callee's argument vector.
    let frame = top!(frames);
    let is_instance = !matches!(dispatch, Dispatch::Static);
    let mut full_args = vec![Value::Invalid; info.param_count + usize::from(is_instance)];
    for slot in (usize::from(is_instance)..full_args.len()).rev() {
        full_args[slot] = pop(frame)?;
    }
    let receiver = if is_instance {
        match pop_ref(frame)? {
            Some(r) => {
                full_args[0] = Value::Ref(Some(r));
                Some(r)
            }
            None => {
                return throw(
                    vm,
                    "java/lang/NullPointerException",
                    format!("invoke {}", info.name),
                )
            }
        }
    } else {
        None
    };

    // Resolve the target method.
    let (target_class, target_idx) = match (&dispatch, receiver) {
        (Dispatch::Virtual, Some(r)) => {
            let recv_class = vm.class_of(r)?;
            match vm.registry.get(caller).vcall_cache.get(&(idx, recv_class)) {
                Some(&t) => t,
                None => {
                    let t = vm
                        .registry
                        .resolve_method(recv_class, &info.name, &info.descriptor)
                        .ok_or_else(|| VmError::NoSuchMember {
                            class: vm.registry.get(recv_class).name.clone(),
                            name: info.name.to_string(),
                            descriptor: info.descriptor.to_string(),
                        })?;
                    vm.registry
                        .get_mut(caller)
                        .vcall_cache
                        .insert((idx, recv_class), t);
                    t
                }
            }
        }
        _ => info
            .static_target
            .or_else(|| {
                vm.registry
                    .resolve_method(decl_class, &info.name, &info.descriptor)
            })
            .ok_or_else(|| VmError::NoSuchMember {
                class: vm.registry.get(decl_class).name.clone(),
                name: info.name.to_string(),
                descriptor: info.descriptor.to_string(),
            })?,
    };

    // Advance caller pc now; the callee's return resumes after the call.
    top!(frames).pc += 1;
    vm.stats.invocations += 1;

    let target = &vm.registry.get(target_class).methods[target_idx];
    if target.is_native() {
        let f = match target.native_impl {
            Some(f) => f,
            None => native_fn_of(vm, target_class, target_idx)?,
        };
        match f(vm, &full_args)? {
            NativeResult::Return(v) => {
                // The caller frame is still on top.
                if let Some(v) = v {
                    top!(frames).stack.push(v);
                }
                // Native call completed; pc already advanced.
                Ok(Step::Jumped)
            }
            NativeResult::Throw { class, message } => {
                // Roll the caller pc back so the handler search sees the
                // faulting instruction's position.
                top!(frames).pc -= 1;
                let e = vm.make_exception(&class, &message)?;
                Ok(Step::Throw(e))
            }
        }
    } else if vm.exec.installed(target_class, target_idx) {
        // Compiled-IR tier. Publish the suspended interpreter frames'
        // references so a collection triggered inside compiled code sees
        // them; the compiled activation publishes its own registers.
        let base = vm.exec_roots.len();
        for f in frames.iter() {
            for v in f.locals.iter().chain(f.stack.iter()) {
                if let Value::Ref(Some(r)) = v {
                    vm.exec_roots.push(*r);
                }
            }
        }
        let done = crate::exec::run_ir(vm, target_class, target_idx, full_args);
        vm.exec_roots.truncate(base);
        match done? {
            Completion::Normal(v) => {
                // The caller frame is still on top; pc already advanced.
                if let Some(v) = v {
                    top!(frames).stack.push(v);
                }
                Ok(Step::Jumped)
            }
            Completion::Exception(e) => {
                top!(frames).pc -= 1;
                Ok(Step::Throw(e))
            }
        }
    } else {
        if frames.len() >= MAX_FRAMES {
            return Err(VmError::StackOverflow);
        }
        let code = target
            .code
            .clone()
            .ok_or_else(|| VmError::BadCode(format!("{} is abstract", info.name)))?;
        vm.exec.stats.interp_invocations += 1;
        frames.push(make_frame(target_class, target_idx, code, full_args));
        Ok(Step::Jumped)
    }
}

pub(crate) fn reference_instanceof(vm: &mut Vm, r: HeapRef, target: &str) -> Result<bool> {
    if target.starts_with('[') {
        // Array types: match on array-ness only (sufficient for the
        // workloads this system generates).
        return Ok(matches!(vm.heap.get(r)?, HeapObject::Array(_)));
    }
    let class = vm.class_of(r)?;
    let target_id = vm.load_class(target)?;
    Ok(vm.registry.is_subtype(class, target_id))
}

fn alloc_multi(vm: &mut Vm, ft: &FieldType, sizes: &[i32]) -> Result<HeapRef> {
    let FieldType::Array(elem) = ft else {
        return Err(VmError::BadCode("multianewarray of non-array type".into()));
    };
    let n = sizes[0] as usize;
    vm.stats.allocations += 1;
    if sizes.len() == 1 {
        let data = match elem.as_ref() {
            FieldType::Byte | FieldType::Boolean => ArrayData::Byte(vec![0; n]),
            FieldType::Char => ArrayData::Char(vec![0; n]),
            FieldType::Short => ArrayData::Short(vec![0; n]),
            FieldType::Int => ArrayData::Int(vec![0; n]),
            FieldType::Long => ArrayData::Long(vec![0; n]),
            FieldType::Float => ArrayData::Float(vec![0.0; n]),
            FieldType::Double => ArrayData::Double(vec![0.0; n]),
            FieldType::Object(name) => ArrayData::Ref(name.clone(), vec![None; n]),
            FieldType::Array(_) => ArrayData::Ref(elem.descriptor(), vec![None; n]),
        };
        return vm.heap.alloc(HeapObject::Array(data));
    }
    let mut elems = Vec::with_capacity(n);
    for _ in 0..n {
        elems.push(Some(alloc_multi(vm, elem, &sizes[1..])?));
    }
    vm.heap
        .alloc(HeapObject::Array(ArrayData::Ref(elem.descriptor(), elems)))
}

fn maybe_gc(vm: &mut Vm, frames: &[Frame]) {
    if !vm.heap.wants_gc() {
        return;
    }
    let mut roots = vm.global_roots();
    for f in frames {
        for v in f.locals.iter().chain(f.stack.iter()) {
            if let Value::Ref(Some(r)) = v {
                roots.push(*r);
            }
        }
    }
    vm.heap.collect(roots);
}
