//! The bootstrap runtime library.
//!
//! The DVM client ships a small core library whose methods are implemented
//! natively by the engine (the paper's "runtime libraries"). This module
//! synthesizes those class files; `natives.rs` supplies the
//! implementations. Everything else — including the `dvm/rt/*` dynamic
//! service components — arrives over the network like any other class.

use dvm_classfile::{AccessFlags, ClassBuilder, ClassFile};

fn native() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::NATIVE
}

fn static_native() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::STATIC | AccessFlags::NATIVE
}

/// Internal names of every bootstrap class, in link order (supertypes
/// first).
pub fn bootstrap_class_names() -> Vec<&'static str> {
    vec![
        "java/lang/Object",
        "java/lang/String",
        "java/lang/StringBuilder",
        "java/io/OutputStream",
        "java/io/PrintStream",
        "java/lang/System",
        "java/lang/Throwable",
        "java/lang/Error",
        "java/lang/Exception",
        "java/lang/RuntimeException",
        "java/lang/NullPointerException",
        "java/lang/ArithmeticException",
        "java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/NegativeArraySizeException",
        "java/lang/ClassCastException",
        "java/lang/IllegalArgumentException",
        "java/lang/SecurityException",
        "java/lang/LinkageError",
        "java/lang/VerifyError",
        "java/lang/NoSuchFieldError",
        "java/lang/NoSuchMethodError",
        "java/lang/IncompatibleClassChangeError",
        "java/lang/OutOfMemoryError",
        "java/lang/StackOverflowError",
        "java/lang/Thread",
        "java/lang/Math",
        "java/lang/Integer",
        "java/io/FileInputStream",
        "dvm/rt/RTVerifier",
        "dvm/rt/Enforcer",
        "dvm/rt/Audit",
        "dvm/rt/Profiler",
    ]
}

/// Builds all bootstrap classes, in link order.
#[allow(clippy::vec_init_then_push)] // each push is one class; a literal vec would bury them
pub fn bootstrap_classes() -> Vec<ClassFile> {
    let mut v = Vec::new();

    v.push(
        ClassBuilder::new("java/lang/Object")
            .no_super_class()
            .bodyless_method(native(), "<init>", "()V")
            .bodyless_method(native(), "hashCode", "()I")
            .bodyless_method(native(), "equals", "(Ljava/lang/Object;)Z")
            .bodyless_method(native(), "toString", "()Ljava/lang/String;")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/String")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(native(), "length", "()I")
            .bodyless_method(native(), "charAt", "(I)C")
            .bodyless_method(native(), "hashCode", "()I")
            .bodyless_method(native(), "equals", "(Ljava/lang/Object;)Z")
            .bodyless_method(native(), "concat", "(Ljava/lang/String;)Ljava/lang/String;")
            .bodyless_method(native(), "substring", "(II)Ljava/lang/String;")
            .bodyless_method(static_native(), "valueOf", "(I)Ljava/lang/String;")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/StringBuilder")
            .field(AccessFlags::PRIVATE, "buf", "Ljava/lang/String;")
            .bodyless_method(native(), "<init>", "()V")
            .bodyless_method(
                native(),
                "append",
                "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
            )
            .bodyless_method(native(), "append", "(I)Ljava/lang/StringBuilder;")
            .bodyless_method(native(), "toString", "()Ljava/lang/String;")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/io/OutputStream")
            .bodyless_method(native(), "<init>", "()V")
            .bodyless_method(native(), "write", "(I)V")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/io/PrintStream")
            .super_class("java/io/OutputStream")
            .bodyless_method(native(), "println", "(Ljava/lang/String;)V")
            .bodyless_method(native(), "println", "(I)V")
            .bodyless_method(native(), "println", "()V")
            .bodyless_method(native(), "print", "(Ljava/lang/String;)V")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/System")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .field(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "out",
                "Ljava/io/PrintStream;",
            )
            .field(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "err",
                "Ljava/io/PrintStream;",
            )
            .bodyless_method(
                static_native(),
                "getProperty",
                "(Ljava/lang/String;)Ljava/lang/String;",
            )
            .bodyless_method(static_native(), "currentTimeMillis", "()J")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/Throwable")
            .field(AccessFlags::PRIVATE, "message", "Ljava/lang/String;")
            .bodyless_method(native(), "<init>", "()V")
            .bodyless_method(native(), "<init>", "(Ljava/lang/String;)V")
            .bodyless_method(native(), "getMessage", "()Ljava/lang/String;")
            .build(),
    );

    // Trivial Throwable subclasses: constructors and getMessage are
    // inherited (resolution walks the hierarchy to the Throwable natives).
    let subclasses: [(&str, &str); 17] = [
        ("java/lang/Error", "java/lang/Throwable"),
        ("java/lang/Exception", "java/lang/Throwable"),
        ("java/lang/RuntimeException", "java/lang/Exception"),
        (
            "java/lang/NullPointerException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/ArithmeticException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/ArrayIndexOutOfBoundsException",
            "java/lang/RuntimeException",
        ),
        (
            "java/lang/NegativeArraySizeException",
            "java/lang/RuntimeException",
        ),
        ("java/lang/ClassCastException", "java/lang/RuntimeException"),
        (
            "java/lang/IllegalArgumentException",
            "java/lang/RuntimeException",
        ),
        ("java/lang/SecurityException", "java/lang/RuntimeException"),
        ("java/lang/LinkageError", "java/lang/Error"),
        ("java/lang/VerifyError", "java/lang/LinkageError"),
        (
            "java/lang/NoSuchFieldError",
            "java/lang/IncompatibleClassChangeError",
        ),
        (
            "java/lang/NoSuchMethodError",
            "java/lang/IncompatibleClassChangeError",
        ),
        (
            "java/lang/IncompatibleClassChangeError",
            "java/lang/LinkageError",
        ),
        ("java/lang/OutOfMemoryError", "java/lang/Error"),
        ("java/lang/StackOverflowError", "java/lang/Error"),
    ];
    // Emit in dependency order (IncompatibleClassChangeError before the two
    // errors that extend it).
    let order = [
        "java/lang/Error",
        "java/lang/Exception",
        "java/lang/RuntimeException",
        "java/lang/NullPointerException",
        "java/lang/ArithmeticException",
        "java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/NegativeArraySizeException",
        "java/lang/ClassCastException",
        "java/lang/IllegalArgumentException",
        "java/lang/SecurityException",
        "java/lang/LinkageError",
        "java/lang/IncompatibleClassChangeError",
        "java/lang/VerifyError",
        "java/lang/NoSuchFieldError",
        "java/lang/NoSuchMethodError",
        "java/lang/OutOfMemoryError",
        "java/lang/StackOverflowError",
    ];
    for name in order {
        let (_, sup) = subclasses.iter().find(|(n, _)| *n == name).unwrap();
        v.push(ClassBuilder::new(name).super_class(sup).build());
    }

    v.push(
        ClassBuilder::new("java/lang/Thread")
            .field(AccessFlags::PRIVATE, "priority", "I")
            .field(
                AccessFlags::PRIVATE | AccessFlags::STATIC,
                "current",
                "Ljava/lang/Thread;",
            )
            .bodyless_method(static_native(), "currentThread", "()Ljava/lang/Thread;")
            .bodyless_method(native(), "setPriority", "(I)V")
            .bodyless_method(native(), "getPriority", "()I")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/Math")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(static_native(), "min", "(II)I")
            .bodyless_method(static_native(), "max", "(II)I")
            .bodyless_method(static_native(), "abs", "(I)I")
            .bodyless_method(static_native(), "sqrt", "(D)D")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/lang/Integer")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(static_native(), "toString", "(I)Ljava/lang/String;")
            .bodyless_method(static_native(), "parseInt", "(Ljava/lang/String;)I")
            .build(),
    );

    v.push(
        ClassBuilder::new("java/io/FileInputStream")
            .field(AccessFlags::PRIVATE, "fd", "I")
            .bodyless_method(native(), "<init>", "(Ljava/lang/String;)V")
            .bodyless_method(native(), "read", "()I")
            .bodyless_method(native(), "available", "()I")
            .bodyless_method(native(), "close", "()V")
            .build(),
    );

    // Dynamic service components (the client halves of the DVM services).
    v.push(
        ClassBuilder::new("dvm/rt/RTVerifier")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(
                static_native(),
                "checkField",
                "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
            )
            .bodyless_method(
                static_native(),
                "checkMethod",
                "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
            )
            .bodyless_method(
                static_native(),
                "checkClass",
                "(Ljava/lang/String;Ljava/lang/String;)V",
            )
            .build(),
    );

    v.push(
        ClassBuilder::new("dvm/rt/Enforcer")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(static_native(), "check", "(II)V")
            .build(),
    );

    v.push(
        ClassBuilder::new("dvm/rt/Audit")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(static_native(), "enter", "(I)V")
            .bodyless_method(static_native(), "exit", "(I)V")
            .bodyless_method(static_native(), "event", "(I)V")
            .build(),
    );

    v.push(
        ClassBuilder::new("dvm/rt/Profiler")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL)
            .bodyless_method(static_native(), "count", "(I)V")
            .bodyless_method(static_native(), "firstUse", "(I)V")
            .build(),
    );

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bootstrap_classes_build_and_serialize() {
        let mut classes = bootstrap_classes();
        assert!(classes.len() > 25);
        for cf in &mut classes {
            let name = cf.name().unwrap().to_owned();
            let bytes = cf.to_bytes().unwrap_or_else(|e| panic!("{name}: {e}"));
            let parsed = ClassFile::parse(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed.name().unwrap(), name);
        }
    }

    #[test]
    fn link_order_has_supertypes_first() {
        use std::collections::HashSet;
        let classes = bootstrap_classes();
        let mut seen: HashSet<String> = HashSet::new();
        for cf in &classes {
            if let Some(sup) = cf.super_name().unwrap() {
                assert!(
                    seen.contains(sup),
                    "{} before its super {sup}",
                    cf.name().unwrap()
                );
            }
            seen.insert(cf.name().unwrap().to_owned());
        }
    }

    #[test]
    fn names_list_matches_built_classes() {
        let classes = bootstrap_classes();
        let names: Vec<String> = classes
            .iter()
            .map(|c| c.name().unwrap().to_owned())
            .collect();
        for n in bootstrap_class_names() {
            assert!(names.iter().any(|x| x == n), "missing {n}");
        }
    }
}
