//! The optimizing execution tier: runs `dvm-exec` register IR.
//!
//! The proxy's compiler stage lowers rewritten classes into the register
//! IR defined by `dvm-exec`; this module is the client half — it keeps
//! compiled functions per `(class, method)` ([`ExecTier`]) and executes
//! them with a direct dispatch loop over registers instead of an operand
//! stack. Every observable behavior (heap effects, exception classes and
//! messages, service callbacks, class-initialization order) mirrors the
//! interpreter in [`crate::interp`] exactly; only the per-instruction
//! accounting differs, which is the whole point of the tier.
//!
//! Methods the lowering declined stay on the interpreter, and calls from
//! compiled code into uncompiled code (and vice versa) cross tiers
//! transparently. When compiled code can trigger a garbage collection —
//! at allocation sites and around every call-out — the activation's live
//! references are published to [`Vm::exec_roots`] so the collector sees
//! them alongside the interpreter's frames.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dvm_bytecode::insn::{AKind, ArithOp, LogicOp, NumKind, NumType, ShiftOp};
use dvm_exec::{ClassIr, CmpKind, Function, InvokeKind, RConst, RInsn, SOp, ServiceKind, VReg};

use crate::classes::InitState;
use crate::error::{Result, VmError};
use crate::heap::{ArrayData, ClassId, HeapObject, HeapRef};
use crate::hooks::{AuditKind, SecurityDecision};
use crate::interp::{self, Completion};
use crate::natives::NativeResult;
use crate::value::Value;
use crate::vm::Vm;

/// Maximum depth of nested IR activations (each one is a native stack
/// frame, unlike the interpreter's heap-allocated frame vector).
pub const MAX_EXEC_DEPTH: usize = 512;

/// Per-tier dispatch counters and installation bookkeeping.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Method activations executed on the compiled-IR tier.
    pub ir_invocations: u64,
    /// Method activations executed on the interpreter tier.
    pub interp_invocations: u64,
    /// Classes for which at least one compiled method was installed.
    pub installed_classes: u64,
    /// Compiled methods installed and eligible for IR dispatch.
    pub installed_methods: u64,
}

/// The client-resident store of compiled code.
///
/// Compiled classes arrive asynchronously (the DVM client fetches them
/// from the proxy's compilation cache next to the class bytes), so the
/// tier keeps a *pending* map keyed by class name that providers can
/// feed through [`ExecTier::offer`] or a shared [`ExecTier::pending_handle`];
/// when the VM links a class it drains the entry and binds each function
/// to its resolved method index.
pub struct ExecTier {
    pending: Arc<Mutex<HashMap<String, ClassIr>>>,
    funcs: HashMap<(ClassId, usize), Arc<Function>>,
    pub(crate) depth: usize,
    /// Tier statistics.
    pub stats: ExecStats,
}

impl std::fmt::Debug for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecTier")
            .field("installed", &self.funcs.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for ExecTier {
    fn default() -> ExecTier {
        ExecTier::new()
    }
}

impl ExecTier {
    /// Creates an empty tier.
    pub fn new() -> ExecTier {
        ExecTier {
            pending: Arc::new(Mutex::new(HashMap::new())),
            funcs: HashMap::new(),
            depth: 0,
            stats: ExecStats::default(),
        }
    }

    /// Returns the shared pending map so a class provider can deposit
    /// compiled IR as it fetches classes.
    pub fn pending_handle(&self) -> Arc<Mutex<HashMap<String, ClassIr>>> {
        Arc::clone(&self.pending)
    }

    /// Deposits compiled IR for a class that may not be linked yet.
    pub fn offer(&self, ir: ClassIr) {
        self.pending.lock().insert(ir.class.clone(), ir);
    }

    /// Replaces the pending map with an externally owned one, keeping
    /// anything already offered. A class provider that fetches IR
    /// packages alongside classes shares its map this way: packages it
    /// deposits mid-load are bound the moment the class finishes
    /// linking.
    pub fn adopt_pending(&mut self, handle: Arc<Mutex<HashMap<String, ClassIr>>>) {
        {
            let mut shared = handle.lock();
            for (name, ir) in self.pending.lock().drain() {
                shared.entry(name).or_insert(ir);
            }
        }
        self.pending = handle;
    }

    pub(crate) fn take_pending(&self, name: &str) -> Option<ClassIr> {
        self.pending.lock().remove(name)
    }

    /// Returns `true` when `(class, method)` has compiled code installed.
    pub fn installed(&self, class: ClassId, method: usize) -> bool {
        self.funcs.contains_key(&(class, method))
    }

    /// Number of compiled methods currently installed.
    pub fn installed_methods(&self) -> usize {
        self.funcs.len()
    }

    pub(crate) fn get(&self, class: ClassId, method: usize) -> Option<Arc<Function>> {
        self.funcs.get(&(class, method)).cloned()
    }

    pub(crate) fn install(&mut self, class: ClassId, method: usize, func: Function) {
        self.funcs.insert((class, method), Arc::new(func));
        self.stats.installed_methods += 1;
    }
}

/// What the dispatch loop should do after one instruction.
enum Flow {
    Next,
    Jump(usize),
    Throw(HeapRef),
    Ret(Option<Value>),
}

/// Simulated cycle cost of one IR instruction. Mirrors
/// [`interp::insn_cost`] for equivalent operations; the wins come from
/// the instructions the optimizer removed and from [`RInsn::Service`]
/// intrinsics, which cost 2 cycles instead of a 12-cycle `invokestatic`
/// dispatch into a native stub.
pub fn ir_cost(insn: &RInsn) -> u64 {
    match insn {
        RInsn::New { .. } => 24,
        RInsn::NewArray { .. } | RInsn::ANewArray { .. } => 20,
        RInsn::Invoke {
            kind: InvokeKind::Virtual | InvokeKind::Interface,
            ..
        } => 14,
        RInsn::Invoke { .. } => 12,
        RInsn::GetStatic { .. }
        | RInsn::PutStatic { .. }
        | RInsn::GetField { .. }
        | RInsn::PutField { .. } => 3,
        RInsn::ArrayLoad { .. } | RInsn::ArrayStore { .. } => 2,
        RInsn::Arith {
            kind: NumKind::Int | NumKind::Long,
            op: ArithOp::Div | ArithOp::Rem,
            ..
        } => 8,
        RInsn::Arith {
            kind: NumKind::Float | NumKind::Double,
            ..
        } => 2,
        RInsn::Const {
            v: RConst::Str(_), ..
        } => 2,
        RInsn::TableSwitch { .. } | RInsn::LookupSwitch { .. } => 4,
        RInsn::Monitor { .. } => 8,
        RInsn::AThrow { .. } => 30,
        RInsn::CheckCast { .. } | RInsn::InstanceOf { .. } => 4,
        RInsn::Service { .. } => 2,
        _ => 1,
    }
}

/// Executes the compiled function installed for `(class, method)`.
///
/// `args` use the interpreter's calling convention: one [`Value`] per
/// argument value (receiver first for instance methods); the executor
/// spreads them over the local-slot registers, padding wide values.
pub fn run_ir(vm: &mut Vm, class: ClassId, method: usize, args: Vec<Value>) -> Result<Completion> {
    let Some(func) = vm.exec.get(class, method) else {
        return Err(VmError::BadCode("method has no compiled code".into()));
    };
    if vm.exec.depth >= MAX_EXEC_DEPTH {
        return Err(VmError::StackOverflow);
    }
    vm.exec.depth += 1;
    vm.exec.stats.ir_invocations += 1;
    let base = vm.exec_roots.len();
    let result = exec_func(vm, class, &func, args, base);
    vm.exec_roots.truncate(base);
    vm.exec.depth -= 1;
    result
}

fn exec_func(
    vm: &mut Vm,
    class: ClassId,
    func: &Function,
    args: Vec<Value>,
    base: usize,
) -> Result<Completion> {
    let mut regs = vec![Value::Invalid; func.num_regs as usize];
    // Arguments land at their local-*slot* offsets, exactly like the
    // interpreter's make_frame: a wide argument occupies one register
    // but advances the slot cursor by two.
    let mut slot = 0usize;
    for v in args {
        let wide = v.is_wide();
        if slot >= regs.len() {
            return Err(VmError::BadCode(
                "argument slots exceed compiled register file".into(),
            ));
        }
        regs[slot] = v;
        slot += if wide { 2 } else { 1 };
    }
    let mut pc = 0usize;
    loop {
        let Some(insn) = func.insns.get(pc) else {
            return Err(VmError::BadCode("fell off the end of a method".into()));
        };
        if let Some(fuel) = vm.fuel.as_mut() {
            if *fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            *fuel -= 1;
        }
        vm.stats.instructions += 1;
        vm.stats.cycles += ir_cost(insn);
        match step_ir(vm, class, &mut regs, insn, base)? {
            Flow::Next => pc += 1,
            Flow::Jump(t) => pc = t,
            Flow::Ret(v) => return Ok(Completion::Normal(v)),
            Flow::Throw(exc) => match dispatch_handler(vm, class, func, &mut regs, pc, exc)? {
                Some(h) => pc = h,
                None => return Ok(Completion::Exception(exc)),
            },
        }
    }
}

/// Finds a matching handler for `exc` at `pc`, depositing the exception
/// in the stack-depth-0 register (the IR unwinding contract).
fn dispatch_handler(
    vm: &mut Vm,
    class: ClassId,
    func: &Function,
    regs: &mut [Value],
    pc: usize,
    exc: HeapRef,
) -> Result<Option<usize>> {
    let exc_class = vm.class_of(exc)?;
    for h in &func.handlers {
        if pc < h.start || pc >= h.end {
            continue;
        }
        let matched = if h.catch_type == 0 {
            true
        } else {
            let catch_name = {
                let rc = vm.registry.get(class);
                rc.pool.get_class_name(h.catch_type)?.to_owned()
            };
            let catch_id = vm.load_class(&catch_name)?;
            vm.registry.is_subtype(exc_class, catch_id)
        };
        if matched {
            wr(regs, VReg(func.max_locals), Value::Ref(Some(exc)))?;
            return Ok(Some(h.handler));
        }
    }
    Ok(None)
}

// ---- Register helpers -------------------------------------------------------

fn rd(regs: &[Value], r: VReg) -> Result<Value> {
    regs.get(r.0 as usize)
        .copied()
        .ok_or_else(|| VmError::BadCode(format!("register {} out of range", r.0)))
}

fn wr(regs: &mut [Value], r: VReg, v: Value) -> Result<()> {
    match regs.get_mut(r.0 as usize) {
        Some(slot) => {
            *slot = v;
            Ok(())
        }
        None => Err(VmError::BadCode(format!("register {} out of range", r.0))),
    }
}

fn want_int(v: Value) -> Result<i32> {
    match v {
        Value::Int(x) => Ok(x),
        other => Err(VmError::BadCode(format!("expected int, got {other:?}"))),
    }
}

fn want_long(v: Value) -> Result<i64> {
    match v {
        Value::Long(x) => Ok(x),
        other => Err(VmError::BadCode(format!("expected long, got {other:?}"))),
    }
}

fn want_float(v: Value) -> Result<f32> {
    match v {
        Value::Float(x) => Ok(x),
        other => Err(VmError::BadCode(format!("expected float, got {other:?}"))),
    }
}

fn want_double(v: Value) -> Result<f64> {
    match v {
        Value::Double(x) => Ok(x),
        other => Err(VmError::BadCode(format!("expected double, got {other:?}"))),
    }
}

fn want_ref(v: Value) -> Result<Option<HeapRef>> {
    match v {
        Value::Ref(r) => Ok(r),
        other => Err(VmError::BadCode(format!(
            "expected reference, got {other:?}"
        ))),
    }
}

fn rd_int(regs: &[Value], r: VReg) -> Result<i32> {
    want_int(rd(regs, r)?)
}

fn rd_long(regs: &[Value], r: VReg) -> Result<i64> {
    want_long(rd(regs, r)?)
}

fn rd_float(regs: &[Value], r: VReg) -> Result<f32> {
    want_float(rd(regs, r)?)
}

fn rd_double(regs: &[Value], r: VReg) -> Result<f64> {
    want_double(rd(regs, r)?)
}

fn rd_ref(regs: &[Value], r: VReg) -> Result<Option<HeapRef>> {
    want_ref(rd(regs, r)?)
}

fn sop_val(regs: &[Value], op: SOp) -> Result<i32> {
    match op {
        SOp::Imm(v) => Ok(v),
        SOp::Reg(r) => rd_int(regs, r),
    }
}

// ---- GC root publication ----------------------------------------------------

/// Publishes this activation's live references into `vm.exec_roots`
/// (replacing any previous publication by the same activation). Called
/// before every operation that can reach the collector.
fn sync_roots(vm: &mut Vm, base: usize, regs: &[Value]) {
    vm.exec_roots.truncate(base);
    for v in regs {
        if let Value::Ref(Some(r)) = v {
            vm.exec_roots.push(*r);
        }
    }
}

fn maybe_gc_ir(vm: &mut Vm, base: usize, regs: &[Value]) {
    if !vm.heap.wants_gc() {
        return;
    }
    sync_roots(vm, base, regs);
    let roots = vm.global_roots();
    vm.heap.collect(roots);
}

fn throw_ir(vm: &mut Vm, class: &str, msg: String) -> Result<Flow> {
    let e = vm.make_exception(class, &msg)?;
    Ok(Flow::Throw(e))
}

/// Runs `<clinit>` for `class` (on the interpreter tier, as always) if
/// it has not been initialized, surfacing an escaping exception.
fn ensure_initialized(
    vm: &mut Vm,
    class: ClassId,
    base: usize,
    regs: &[Value],
) -> Result<Option<Flow>> {
    if vm.registry.get(class).init_state != InitState::NotInitialized {
        return Ok(None);
    }
    sync_roots(vm, base, regs);
    match interp::run_clinit(vm, class)? {
        Some(e) => Ok(Some(Flow::Throw(e))),
        None => Ok(None),
    }
}

fn convert(from: NumType, to: NumType, v: Value) -> Result<Value> {
    use NumType::*;
    Ok(match (from, to) {
        (Int, Long) => Value::Long(want_int(v)? as i64),
        (Int, Float) => Value::Float(want_int(v)? as f32),
        (Int, Double) => Value::Double(want_int(v)? as f64),
        (Int, Byte) => Value::Int(want_int(v)? as i8 as i32),
        (Int, Char) => Value::Int(want_int(v)? as u16 as i32),
        (Int, Short) => Value::Int(want_int(v)? as i16 as i32),
        (Long, Int) => Value::Int(want_long(v)? as i32),
        (Long, Float) => Value::Float(want_long(v)? as f32),
        (Long, Double) => Value::Double(want_long(v)? as f64),
        (Float, Int) => Value::Int(interp::f2i(want_float(v)? as f64)),
        (Float, Long) => Value::Long(interp::f2l(want_float(v)? as f64)),
        (Float, Double) => Value::Double(want_float(v)? as f64),
        (Double, Int) => Value::Int(interp::f2i(want_double(v)?)),
        (Double, Long) => Value::Long(interp::f2l(want_double(v)?)),
        (Double, Float) => Value::Float(want_double(v)? as f32),
        (a, b) => return Err(VmError::BadCode(format!("bad conversion {a:?} -> {b:?}"))),
    })
}

#[allow(clippy::too_many_lines)]
fn step_ir(
    vm: &mut Vm,
    class: ClassId,
    regs: &mut [Value],
    insn: &RInsn,
    base: usize,
) -> Result<Flow> {
    match insn {
        RInsn::Const { dst, v } => {
            let v = match v {
                RConst::Null => Value::NULL,
                RConst::Int(x) => Value::Int(*x),
                RConst::Long(x) => Value::Long(*x),
                RConst::Float(x) => Value::Float(*x),
                RConst::Double(x) => Value::Double(*x),
                RConst::Str(idx) => {
                    let s = {
                        let rc = vm.registry.get(class);
                        rc.pool.get_string(*idx)?.to_owned()
                    };
                    Value::Ref(Some(vm.intern_string(&s)?))
                }
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::Move { dst, src } => {
            let v = rd(regs, *src)?;
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::Arith {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            let v = match kind {
                NumKind::Int => {
                    let b = rd_int(regs, *b)?;
                    let a = rd_int(regs, *a)?;
                    let r = match op {
                        ArithOp::Add => a.wrapping_add(b),
                        ArithOp::Sub => a.wrapping_sub(b),
                        ArithOp::Mul => a.wrapping_mul(b),
                        ArithOp::Div => {
                            if b == 0 {
                                return throw_ir(
                                    vm,
                                    "java/lang/ArithmeticException",
                                    "/ by zero".into(),
                                );
                            }
                            a.wrapping_div(b)
                        }
                        ArithOp::Rem => {
                            if b == 0 {
                                return throw_ir(
                                    vm,
                                    "java/lang/ArithmeticException",
                                    "% by zero".into(),
                                );
                            }
                            a.wrapping_rem(b)
                        }
                        ArithOp::Neg => a.wrapping_neg(),
                    };
                    Value::Int(r)
                }
                NumKind::Long => {
                    let b = rd_long(regs, *b)?;
                    let a = rd_long(regs, *a)?;
                    let r = match op {
                        ArithOp::Add => a.wrapping_add(b),
                        ArithOp::Sub => a.wrapping_sub(b),
                        ArithOp::Mul => a.wrapping_mul(b),
                        ArithOp::Div => {
                            if b == 0 {
                                return throw_ir(
                                    vm,
                                    "java/lang/ArithmeticException",
                                    "/ by zero".into(),
                                );
                            }
                            a.wrapping_div(b)
                        }
                        ArithOp::Rem => {
                            if b == 0 {
                                return throw_ir(
                                    vm,
                                    "java/lang/ArithmeticException",
                                    "% by zero".into(),
                                );
                            }
                            a.wrapping_rem(b)
                        }
                        ArithOp::Neg => a.wrapping_neg(),
                    };
                    Value::Long(r)
                }
                NumKind::Float => {
                    let b = rd_float(regs, *b)?;
                    let a = rd_float(regs, *a)?;
                    Value::Float(match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                        ArithOp::Rem => a % b,
                        ArithOp::Neg => -a,
                    })
                }
                NumKind::Double => {
                    let b = rd_double(regs, *b)?;
                    let a = rd_double(regs, *a)?;
                    Value::Double(match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                        ArithOp::Rem => a % b,
                        ArithOp::Neg => -a,
                    })
                }
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::ArithImm { op, dst, src, imm } => {
            let a = rd_int(regs, *src)?;
            let r = match op {
                ArithOp::Add => a.wrapping_add(*imm),
                ArithOp::Mul => a.wrapping_mul(*imm),
                other => {
                    return Err(VmError::BadCode(format!(
                        "immediate arithmetic with {other:?}"
                    )))
                }
            };
            wr(regs, *dst, Value::Int(r))?;
            Ok(Flow::Next)
        }
        RInsn::Neg { kind, dst, src } => {
            let v = match kind {
                NumKind::Int => Value::Int(rd_int(regs, *src)?.wrapping_neg()),
                NumKind::Long => Value::Long(rd_long(regs, *src)?.wrapping_neg()),
                NumKind::Float => Value::Float(-rd_float(regs, *src)?),
                NumKind::Double => Value::Double(-rd_double(regs, *src)?),
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::Shift {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            let amount = rd_int(regs, *b)?;
            let v = match kind {
                NumKind::Int => {
                    let x = rd_int(regs, *a)?;
                    let s = (amount & 0x1F) as u32;
                    Value::Int(match op {
                        ShiftOp::Shl => x.wrapping_shl(s),
                        ShiftOp::Shr => x.wrapping_shr(s),
                        ShiftOp::Ushr => ((x as u32).wrapping_shr(s)) as i32,
                    })
                }
                NumKind::Long => {
                    let x = rd_long(regs, *a)?;
                    let s = (amount & 0x3F) as u32;
                    Value::Long(match op {
                        ShiftOp::Shl => x.wrapping_shl(s),
                        ShiftOp::Shr => x.wrapping_shr(s),
                        ShiftOp::Ushr => ((x as u64).wrapping_shr(s)) as i64,
                    })
                }
                _ => return Err(VmError::BadCode("shift on float kind".into())),
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::Logic {
            kind,
            op,
            dst,
            a,
            b,
        } => {
            let v = match kind {
                NumKind::Int => {
                    let b = rd_int(regs, *b)?;
                    let a = rd_int(regs, *a)?;
                    Value::Int(match op {
                        LogicOp::And => a & b,
                        LogicOp::Or => a | b,
                        LogicOp::Xor => a ^ b,
                    })
                }
                NumKind::Long => {
                    let b = rd_long(regs, *b)?;
                    let a = rd_long(regs, *a)?;
                    Value::Long(match op {
                        LogicOp::And => a & b,
                        LogicOp::Or => a | b,
                        LogicOp::Xor => a ^ b,
                    })
                }
                _ => return Err(VmError::BadCode("logic on float kind".into())),
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::LogicImm { op, dst, src, imm } => {
            let a = rd_int(regs, *src)?;
            let r = match op {
                LogicOp::And => a & imm,
                LogicOp::Or => a | imm,
                LogicOp::Xor => a ^ imm,
            };
            wr(regs, *dst, Value::Int(r))?;
            Ok(Flow::Next)
        }
        RInsn::ShiftImm { op, dst, src, imm } => {
            let x = rd_int(regs, *src)?;
            let s = (imm & 0x1F) as u32;
            let r = match op {
                ShiftOp::Shl => x.wrapping_shl(s),
                ShiftOp::Shr => x.wrapping_shr(s),
                ShiftOp::Ushr => ((x as u32).wrapping_shr(s)) as i32,
            };
            wr(regs, *dst, Value::Int(r))?;
            Ok(Flow::Next)
        }
        RInsn::Convert { from, to, dst, src } => {
            let v = convert(*from, *to, rd(regs, *src)?)?;
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::Cmp { kind, dst, a, b } => {
            let r = match kind {
                CmpKind::Long => {
                    let b = rd_long(regs, *b)?;
                    let a = rd_long(regs, *a)?;
                    match a.cmp(&b) {
                        std::cmp::Ordering::Less => -1,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    }
                }
                CmpKind::Float(g) => {
                    let b = rd_float(regs, *b)? as f64;
                    let a = rd_float(regs, *a)? as f64;
                    interp::fcmp(a, b, *g)
                }
                CmpKind::Double(g) => {
                    let b = rd_double(regs, *b)?;
                    let a = rd_double(regs, *a)?;
                    interp::fcmp(a, b, *g)
                }
            };
            wr(regs, *dst, Value::Int(r))?;
            Ok(Flow::Next)
        }
        RInsn::If { cond, a, b, target } => {
            let av = rd_int(regs, *a)?;
            let bv = match b {
                Some(r) => rd_int(regs, *r)?,
                None => 0,
            };
            if interp::icond(*cond, av, bv) {
                Ok(Flow::Jump(*target))
            } else {
                Ok(Flow::Next)
            }
        }
        RInsn::IfRef { eq, a, b, target } => {
            let av = rd_ref(regs, *a)?;
            let bv = match b {
                Some(r) => rd_ref(regs, *r)?,
                None => None,
            };
            if (av == bv) == *eq {
                Ok(Flow::Jump(*target))
            } else {
                Ok(Flow::Next)
            }
        }
        RInsn::Goto { target } => Ok(Flow::Jump(*target)),
        RInsn::TableSwitch {
            on,
            low,
            targets,
            default,
        } => {
            let v = rd_int(regs, *on)?;
            let idx = v.wrapping_sub(*low);
            let t = if idx >= 0 && (idx as usize) < targets.len() {
                targets[idx as usize]
            } else {
                *default
            };
            Ok(Flow::Jump(t))
        }
        RInsn::LookupSwitch { on, pairs, default } => {
            let v = rd_int(regs, *on)?;
            let t = pairs
                .iter()
                .find(|(k, _)| *k == v)
                .map(|(_, t)| *t)
                .unwrap_or(*default);
            Ok(Flow::Jump(t))
        }
        RInsn::Return { src } => {
            let v = match src {
                Some(r) => Some(rd(regs, *r)?),
                None => None,
            };
            Ok(Flow::Ret(v))
        }
        RInsn::GetStatic { idx, dst } => {
            let (decl, off) = interp::resolve_static_site(vm, class, *idx)?;
            if let Some(flow) = ensure_initialized(vm, decl, base, regs)? {
                return Ok(flow);
            }
            let v = vm.registry.get(decl).statics[off];
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::PutStatic { idx, src } => {
            let (decl, off) = interp::resolve_static_site(vm, class, *idx)?;
            if let Some(flow) = ensure_initialized(vm, decl, base, regs)? {
                return Ok(flow);
            }
            let v = rd(regs, *src)?;
            vm.registry.get_mut(decl).statics[off] = v;
            Ok(Flow::Next)
        }
        RInsn::GetField { idx, obj, dst } => {
            let Some(obj) = rd_ref(regs, *obj)? else {
                return throw_ir(vm, "java/lang/NullPointerException", "getfield".into());
            };
            let off = interp::instance_field_offset(vm, class, *idx, obj)?;
            let v = match vm.heap.get(obj)? {
                HeapObject::Instance { fields, .. } => fields[off],
                _ => return Err(VmError::BadCode("getfield on non-instance".into())),
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::PutField { idx, obj, src } => {
            let Some(obj) = rd_ref(regs, *obj)? else {
                return throw_ir(vm, "java/lang/NullPointerException", "putfield".into());
            };
            let value = rd(regs, *src)?;
            let off = interp::instance_field_offset(vm, class, *idx, obj)?;
            match vm.heap.get_mut(obj)? {
                HeapObject::Instance { fields, .. } => fields[off] = value,
                _ => return Err(VmError::BadCode("putfield on non-instance".into())),
            }
            Ok(Flow::Next)
        }
        RInsn::Invoke {
            kind,
            idx,
            args,
            dst,
        } => invoke_ir(vm, class, regs, *kind, *idx, args, *dst, base),
        RInsn::New { idx, dst } => {
            let class_name = {
                let rc = vm.registry.get(class);
                rc.pool.get_class_name(*idx)?.to_owned()
            };
            let nid = vm.load_class(&class_name)?;
            if let Some(flow) = ensure_initialized(vm, nid, base, regs)? {
                return Ok(flow);
            }
            maybe_gc_ir(vm, base, regs);
            let r = vm.alloc_instance(nid)?;
            wr(regs, *dst, Value::Ref(Some(r)))?;
            Ok(Flow::Next)
        }
        RInsn::NewArray { akind, len, dst } => {
            let len = rd_int(regs, *len)?;
            if len < 0 {
                return throw_ir(vm, "java/lang/NegativeArraySizeException", len.to_string());
            }
            maybe_gc_ir(vm, base, regs);
            let n = len as usize;
            let data = match akind {
                AKind::Byte => ArrayData::Byte(vec![0; n]),
                AKind::Char => ArrayData::Char(vec![0; n]),
                AKind::Short => ArrayData::Short(vec![0; n]),
                AKind::Int => ArrayData::Int(vec![0; n]),
                AKind::Long => ArrayData::Long(vec![0; n]),
                AKind::Float => ArrayData::Float(vec![0.0; n]),
                AKind::Double => ArrayData::Double(vec![0.0; n]),
                AKind::Ref => return Err(VmError::BadCode("newarray of reference kind".into())),
            };
            vm.stats.allocations += 1;
            let r = vm.heap.alloc(HeapObject::Array(data))?;
            wr(regs, *dst, Value::Ref(Some(r)))?;
            Ok(Flow::Next)
        }
        RInsn::ANewArray { idx, len, dst } => {
            let elem = {
                let rc = vm.registry.get(class);
                rc.pool.get_class_name(*idx)?.to_owned()
            };
            let len = rd_int(regs, *len)?;
            if len < 0 {
                return throw_ir(vm, "java/lang/NegativeArraySizeException", len.to_string());
            }
            maybe_gc_ir(vm, base, regs);
            vm.stats.allocations += 1;
            let r = vm.heap.alloc(HeapObject::Array(ArrayData::Ref(
                elem,
                vec![None; len as usize],
            )))?;
            wr(regs, *dst, Value::Ref(Some(r)))?;
            Ok(Flow::Next)
        }
        RInsn::ArrayLoad {
            arr, index, dst, ..
        } => {
            let index = rd_int(regs, *index)?;
            let Some(arr) = rd_ref(regs, *arr)? else {
                return throw_ir(vm, "java/lang/NullPointerException", "array load".into());
            };
            let obj = vm.heap.get(arr)?;
            let HeapObject::Array(data) = obj else {
                return Err(VmError::BadCode("array load on non-array".into()));
            };
            if index < 0 || index as usize >= data.len() {
                let len = data.len();
                return throw_ir(
                    vm,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            let v = match data {
                ArrayData::Byte(v) => Value::Int(v[i] as i32),
                ArrayData::Char(v) => Value::Int(v[i] as i32),
                ArrayData::Short(v) => Value::Int(v[i] as i32),
                ArrayData::Int(v) => Value::Int(v[i]),
                ArrayData::Long(v) => Value::Long(v[i]),
                ArrayData::Float(v) => Value::Float(v[i]),
                ArrayData::Double(v) => Value::Double(v[i]),
                ArrayData::Ref(_, v) => Value::Ref(v[i]),
            };
            wr(regs, *dst, v)?;
            Ok(Flow::Next)
        }
        RInsn::ArrayStore {
            arr, index, src, ..
        } => {
            let value = rd(regs, *src)?;
            let index = rd_int(regs, *index)?;
            let Some(arr) = rd_ref(regs, *arr)? else {
                return throw_ir(vm, "java/lang/NullPointerException", "array store".into());
            };
            let len = match vm.heap.get(arr)? {
                HeapObject::Array(d) => d.len(),
                _ => return Err(VmError::BadCode("array store on non-array".into())),
            };
            if index < 0 || index as usize >= len {
                return throw_ir(
                    vm,
                    "java/lang/ArrayIndexOutOfBoundsException",
                    format!("index {index}, length {len}"),
                );
            }
            let i = index as usize;
            let HeapObject::Array(data) = vm.heap.get_mut(arr)? else {
                unreachable!("checked above");
            };
            match (data, value) {
                (ArrayData::Byte(v), Value::Int(x)) => v[i] = x as i8,
                (ArrayData::Char(v), Value::Int(x)) => v[i] = x as u16,
                (ArrayData::Short(v), Value::Int(x)) => v[i] = x as i16,
                (ArrayData::Int(v), Value::Int(x)) => v[i] = x,
                (ArrayData::Long(v), Value::Long(x)) => v[i] = x,
                (ArrayData::Float(v), Value::Float(x)) => v[i] = x,
                (ArrayData::Double(v), Value::Double(x)) => v[i] = x,
                (ArrayData::Ref(_, v), Value::Ref(x)) => v[i] = x,
                (d, v) => {
                    return Err(VmError::BadCode(format!(
                        "array store kind mismatch {d:?} <- {v:?}"
                    )))
                }
            }
            Ok(Flow::Next)
        }
        RInsn::ArrayLength { arr, dst } => {
            let Some(arr) = rd_ref(regs, *arr)? else {
                return throw_ir(vm, "java/lang/NullPointerException", "arraylength".into());
            };
            let len = match vm.heap.get(arr)? {
                HeapObject::Array(d) => d.len(),
                HeapObject::Str(s) => s.len(),
                _ => return Err(VmError::BadCode("arraylength on non-array".into())),
            };
            wr(regs, *dst, Value::Int(len as i32))?;
            Ok(Flow::Next)
        }
        RInsn::AThrow { exc } => match rd_ref(regs, *exc)? {
            Some(e) => Ok(Flow::Throw(e)),
            None => throw_ir(
                vm,
                "java/lang/NullPointerException",
                "athrow of null".into(),
            ),
        },
        RInsn::CheckCast { idx, obj } => {
            let target = {
                let rc = vm.registry.get(class);
                rc.pool.get_class_name(*idx)?.to_owned()
            };
            let v = rd_ref(regs, *obj)?;
            let ok = match v {
                None => true,
                Some(r) => interp::reference_instanceof(vm, r, &target)?,
            };
            if ok {
                Ok(Flow::Next)
            } else {
                throw_ir(vm, "java/lang/ClassCastException", target)
            }
        }
        RInsn::InstanceOf { idx, obj, dst } => {
            let target = {
                let rc = vm.registry.get(class);
                rc.pool.get_class_name(*idx)?.to_owned()
            };
            let v = rd_ref(regs, *obj)?;
            let res = match v {
                None => 0,
                Some(r) => interp::reference_instanceof(vm, r, &target)? as i32,
            };
            wr(regs, *dst, Value::Int(res))?;
            Ok(Flow::Next)
        }
        RInsn::Monitor { obj, .. } => {
            // Single-threaded model: monitors are cycle cost only.
            if rd_ref(regs, *obj)?.is_none() {
                return throw_ir(vm, "java/lang/NullPointerException", "monitor".into());
            }
            Ok(Flow::Next)
        }
        RInsn::Service { kind, a, b } => {
            let site = sop_val(regs, *a)?;
            match kind {
                ServiceKind::Security => {
                    let perm = sop_val(regs, *b)?;
                    vm.stats.security_checks += 1;
                    match vm.services.security_check(site, perm) {
                        SecurityDecision::Allow { cost_cycles } => {
                            vm.stats.cycles += cost_cycles;
                            Ok(Flow::Next)
                        }
                        SecurityDecision::Deny { cost_cycles } => {
                            vm.stats.cycles += cost_cycles;
                            throw_ir(
                                vm,
                                "java/lang/SecurityException",
                                format!("sid {site} denied permission {perm}"),
                            )
                        }
                    }
                }
                ServiceKind::AuditEnter => {
                    vm.services.audit_event(site, AuditKind::Enter);
                    vm.stats.cycles += 15;
                    Ok(Flow::Next)
                }
                ServiceKind::AuditExit => {
                    vm.services.audit_event(site, AuditKind::Exit);
                    vm.stats.cycles += 15;
                    Ok(Flow::Next)
                }
                ServiceKind::AuditEvent => {
                    vm.services.audit_event(site, AuditKind::Event);
                    vm.stats.cycles += 15;
                    Ok(Flow::Next)
                }
                ServiceKind::ProfileCount => {
                    vm.services.profile_count(site);
                    vm.stats.cycles += 5;
                    Ok(Flow::Next)
                }
                ServiceKind::ProfileFirstUse => {
                    vm.services.first_use(site);
                    vm.stats.cycles += 5;
                    Ok(Flow::Next)
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn invoke_ir(
    vm: &mut Vm,
    class: ClassId,
    regs: &mut [Value],
    kind: InvokeKind,
    idx: u16,
    args: &[VReg],
    dst: Option<VReg>,
    base: usize,
) -> Result<Flow> {
    let is_static_dispatch = matches!(kind, InvokeKind::Static | InvokeKind::Special);
    let info = interp::invoke_info(vm, class, idx, is_static_dispatch)?;
    if matches!(kind, InvokeKind::Static) {
        if let Some(flow) = ensure_initialized(vm, info.decl_class, base, regs)? {
            return Ok(flow);
        }
    }

    let mut full_args = Vec::with_capacity(args.len());
    for r in args {
        full_args.push(rd(regs, *r)?);
    }
    let is_instance = !matches!(kind, InvokeKind::Static);
    let receiver = if is_instance {
        match full_args.first() {
            Some(Value::Ref(Some(r))) => Some(*r),
            Some(Value::Ref(None)) => {
                return throw_ir(
                    vm,
                    "java/lang/NullPointerException",
                    format!("invoke {}", info.name),
                )
            }
            other => {
                return Err(VmError::BadCode(format!(
                    "expected reference receiver, got {other:?}"
                )))
            }
        }
    } else {
        None
    };

    // Resolve the target, reusing the interpreter's per-site caches.
    let (target_class, target_idx) = match receiver {
        Some(r) if matches!(kind, InvokeKind::Virtual | InvokeKind::Interface) => {
            let recv_class = vm.class_of(r)?;
            match vm.registry.get(class).vcall_cache.get(&(idx, recv_class)) {
                Some(&t) => t,
                None => {
                    let t = vm
                        .registry
                        .resolve_method(recv_class, &info.name, &info.descriptor)
                        .ok_or_else(|| VmError::NoSuchMember {
                            class: vm.registry.get(recv_class).name.clone(),
                            name: info.name.to_string(),
                            descriptor: info.descriptor.to_string(),
                        })?;
                    vm.registry
                        .get_mut(class)
                        .vcall_cache
                        .insert((idx, recv_class), t);
                    t
                }
            }
        }
        _ => info
            .static_target
            .or_else(|| {
                vm.registry
                    .resolve_method(info.decl_class, &info.name, &info.descriptor)
            })
            .ok_or_else(|| VmError::NoSuchMember {
                class: vm.registry.get(info.decl_class).name.clone(),
                name: info.name.to_string(),
                descriptor: info.descriptor.to_string(),
            })?,
    };

    vm.stats.invocations += 1;
    sync_roots(vm, base, regs);
    let is_native = vm.registry.get(target_class).methods[target_idx].is_native();
    let completion = if is_native {
        let f = interp::native_fn_of(vm, target_class, target_idx)?;
        match f(vm, &full_args)? {
            NativeResult::Return(v) => Completion::Normal(v),
            NativeResult::Throw { class, message } => {
                let e = vm.make_exception(&class, &message)?;
                Completion::Exception(e)
            }
        }
    } else if vm.exec.installed(target_class, target_idx) {
        run_ir(vm, target_class, target_idx, full_args)?
    } else {
        interp::run_interp_call(vm, target_class, target_idx, full_args)?
    };

    match completion {
        Completion::Normal(v) => {
            if let Some(d) = dst {
                let Some(v) = v else {
                    return Err(VmError::BadCode("void call with a result register".into()));
                };
                wr(regs, d, v)?;
            }
            Ok(Flow::Next)
        }
        Completion::Exception(e) => Ok(Flow::Throw(e)),
    }
}
