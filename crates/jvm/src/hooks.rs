//! Client-side hooks for the DVM's dynamic service components.
//!
//! Injected service calls (`dvm/rt/Enforcer.check`, `dvm/rt/Audit.*`,
//! `dvm/rt/Profiler.*`) terminate in these hooks. The VM itself stays
//! service-agnostic: the enforcement manager, audit forwarder, and profiler
//! live in their service crates and are plugged in by `dvm-core`.

/// Result of an access-control check performed by the enforcement manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityDecision {
    /// Access granted; `cost_cycles` models where the answer came from
    /// (warm client cache vs. a policy download from the security server).
    Allow {
        /// Simulated cycles the check consumed.
        cost_cycles: u64,
    },
    /// Access denied; the VM throws `java/lang/SecurityException`.
    Deny {
        /// Simulated cycles the check consumed.
        cost_cycles: u64,
    },
}

/// The client-resident dynamic service components.
///
/// All methods have no-op defaults so a bare VM (monolithic configuration
/// with services disabled, as in the paper's DVM measurements on the Sun
/// JDK client) runs unmodified applications.
pub trait DynamicServices: Send {
    /// `dvm/rt/Enforcer.check(sid, perm)` — consult the enforcement
    /// manager.
    fn security_check(&mut self, _sid: i32, _perm: i32) -> SecurityDecision {
        SecurityDecision::Allow { cost_cycles: 0 }
    }

    /// `dvm/rt/Audit.enter/exit/event(site)` — forward an audit event.
    fn audit_event(&mut self, _site: i32, _kind: AuditKind) {}

    /// `dvm/rt/Profiler.count(site)` — bump an execution counter.
    fn profile_count(&mut self, _site: i32) {}

    /// `dvm/rt/Profiler.firstUse(site)` — record first execution of a
    /// method (drives the §5 repartitioning first-use graph).
    fn first_use(&mut self, _site: i32) {}
}

/// Kinds of audit events emitted by instrumented code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Method or constructor entry.
    Enter,
    /// Method or constructor exit.
    Exit,
    /// A generic noteworthy event.
    Event,
}

/// Per-operation check costs for the *monolithic* security model.
///
/// Sun's JDK hardwires security checks at the library sites its developers
/// anticipated (property access, file open, thread operations); file
/// *reads* have no check at all — the paper's Figure 9 marks that row
/// "N/A". A monolithic client configures the cycle cost of each
/// anticipated check here (computed from the stack-introspection model);
/// the DVM client leaves everything `None` and relies on injected
/// enforcement calls instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuiltinChecks {
    /// `System.getProperty` check cost, if checked.
    pub get_property: Option<u64>,
    /// `FileInputStream.<init>` (open) check cost, if checked.
    pub open_file: Option<u64>,
    /// `Thread.setPriority` check cost, if checked.
    pub set_priority: Option<u64>,
    /// `FileInputStream.read` check cost — `None` in the JDK model (the
    /// unanticipated operation).
    pub read_file: Option<u64>,
}

/// The default hook set: everything is a no-op and all checks allow.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoServices;

impl DynamicServices for NoServices {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_allow_everything() {
        let mut s = NoServices;
        assert_eq!(
            s.security_check(1, 2),
            SecurityDecision::Allow { cost_cycles: 0 }
        );
        s.audit_event(0, AuditKind::Enter);
        s.profile_count(0);
        s.first_use(0);
    }
}
