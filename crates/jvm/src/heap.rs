//! Object heap with a mark-sweep garbage collector.
//!
//! The paper's DVM client includes "an interpreter, runtime, and garbage
//! collector" (§4); this module is that collector. Objects live in a slab
//! indexed by [`HeapRef`]; collection marks from the root set supplied by
//! the interpreter (frame locals, operand stacks, class statics, interned
//! strings) and sweeps unmarked slots for reuse.

use crate::error::{Result, VmError};
use crate::value::Value;

/// Index of a live object in the heap slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapRef(pub u32);

/// Identifier of a loaded runtime class (index into the class registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u32);

/// Typed backing store for arrays.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// `byte[]` / `boolean[]`.
    Byte(Vec<i8>),
    /// `char[]`.
    Char(Vec<u16>),
    /// `short[]`.
    Short(Vec<i16>),
    /// `int[]`.
    Int(Vec<i32>),
    /// `long[]`.
    Long(Vec<i64>),
    /// `float[]`.
    Float(Vec<f32>),
    /// `double[]`.
    Double(Vec<f64>),
    /// Reference arrays, with the element class's internal name.
    Ref(String, Vec<Option<HeapRef>>),
}

impl ArrayData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Byte(v) => v.len(),
            ArrayData::Char(v) => v.len(),
            ArrayData::Short(v) => v.len(),
            ArrayData::Int(v) => v.len(),
            ArrayData::Long(v) => v.len(),
            ArrayData::Float(v) => v.len(),
            ArrayData::Double(v) => v.len(),
            ArrayData::Ref(_, v) => v.len(),
        }
    }

    /// Returns `true` for zero-length arrays.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate size in bytes (element storage only).
    pub fn byte_size(&self) -> usize {
        match self {
            ArrayData::Byte(v) => v.len(),
            ArrayData::Char(v) => v.len() * 2,
            ArrayData::Short(v) => v.len() * 2,
            ArrayData::Int(v) => v.len() * 4,
            ArrayData::Long(v) => v.len() * 8,
            ArrayData::Float(v) => v.len() * 4,
            ArrayData::Double(v) => v.len() * 8,
            ArrayData::Ref(_, v) => v.len() * 4,
        }
    }
}

/// One heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapObject {
    /// A class instance with its field slots (layout order).
    Instance {
        /// The instance's runtime class.
        class: ClassId,
        /// Field values in layout order (superclass fields first).
        fields: Vec<Value>,
    },
    /// An array.
    Array(ArrayData),
    /// A string (represented natively; `java/lang/String` instances map
    /// here).
    Str(String),
}

impl HeapObject {
    /// Approximate size in bytes, used for the collection trigger.
    pub fn byte_size(&self) -> usize {
        match self {
            HeapObject::Instance { fields, .. } => 16 + fields.len() * 8,
            HeapObject::Array(a) => 16 + a.byte_size(),
            HeapObject::Str(s) => 24 + s.len(),
        }
    }
}

/// Statistics reported by the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects currently live (since the last sweep).
    pub live_objects: usize,
    /// Approximate live bytes.
    pub live_bytes: usize,
    /// Total allocations performed.
    pub total_allocations: u64,
    /// Collections run.
    pub collections: u64,
    /// Objects reclaimed across all collections.
    pub reclaimed_objects: u64,
}

/// The object heap.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Option<HeapObject>>,
    free: Vec<u32>,
    allocated_bytes: usize,
    limit_bytes: usize,
    gc_threshold: usize,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap with the given byte limit.
    pub fn new(limit_bytes: usize) -> Heap {
        Heap {
            slots: Vec::new(),
            free: Vec::new(),
            allocated_bytes: 0,
            limit_bytes,
            gc_threshold: limit_bytes / 2,
            stats: HeapStats::default(),
        }
    }

    /// Returns heap statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            live_objects: self.slots.iter().filter(|s| s.is_some()).count(),
            live_bytes: self.allocated_bytes,
            ..self.stats
        }
    }

    /// Approximate bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated_bytes
    }

    /// Returns `true` when an allocation should trigger a collection first.
    pub fn wants_gc(&self) -> bool {
        self.allocated_bytes >= self.gc_threshold
    }

    /// Allocates an object, returning its reference.
    pub fn alloc(&mut self, obj: HeapObject) -> Result<HeapRef> {
        let size = obj.byte_size();
        if self.allocated_bytes + size > self.limit_bytes {
            return Err(VmError::OutOfMemory);
        }
        self.allocated_bytes += size;
        self.stats.total_allocations += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(obj);
                i
            }
            None => {
                self.slots.push(Some(obj));
                (self.slots.len() - 1) as u32
            }
        };
        Ok(HeapRef(idx))
    }

    /// Immutable access to an object.
    pub fn get(&self, r: HeapRef) -> Result<&HeapObject> {
        self.slots
            .get(r.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or_else(|| VmError::BadCode(format!("dangling heap reference {}", r.0)))
    }

    /// Mutable access to an object.
    pub fn get_mut(&mut self, r: HeapRef) -> Result<&mut HeapObject> {
        self.slots
            .get_mut(r.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or_else(|| VmError::BadCode(format!("dangling heap reference {}", r.0)))
    }

    /// Runs a mark-sweep collection from the given roots.
    ///
    /// Returns the number of objects reclaimed.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = HeapRef>) -> usize {
        let n = self.slots.len();
        let mut marked = vec![false; n];
        let mut work: Vec<u32> = roots
            .into_iter()
            .map(|r| r.0)
            .filter(|&i| (i as usize) < n)
            .collect();
        while let Some(i) = work.pop() {
            let idx = i as usize;
            if marked[idx] {
                continue;
            }
            marked[idx] = true;
            if let Some(obj) = &self.slots[idx] {
                match obj {
                    HeapObject::Instance { fields, .. } => {
                        for v in fields {
                            if let Value::Ref(Some(r)) = v {
                                work.push(r.0);
                            }
                        }
                    }
                    HeapObject::Array(ArrayData::Ref(_, elems)) => {
                        for e in elems.iter().flatten() {
                            work.push(e.0);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut reclaimed = 0usize;
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_some() && !marked[idx] {
                let size = slot.as_ref().map(|o| o.byte_size()).unwrap_or(0);
                self.allocated_bytes = self.allocated_bytes.saturating_sub(size);
                *slot = None;
                self.free.push(idx as u32);
                reclaimed += 1;
            }
        }
        self.stats.collections += 1;
        self.stats.reclaimed_objects += reclaimed as u64;
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(class: u32, field_refs: Vec<Option<HeapRef>>) -> HeapObject {
        HeapObject::Instance {
            class: ClassId(class),
            fields: field_refs.into_iter().map(Value::Ref).collect(),
        }
    }

    #[test]
    fn alloc_and_get() {
        let mut h = Heap::new(1 << 20);
        let r = h.alloc(HeapObject::Str("hi".into())).unwrap();
        assert!(matches!(h.get(r).unwrap(), HeapObject::Str(s) if s == "hi"));
    }

    #[test]
    fn collect_reclaims_unreachable() {
        let mut h = Heap::new(1 << 20);
        let a = h.alloc(instance(0, vec![])).unwrap();
        let _b = h.alloc(instance(0, vec![])).unwrap();
        let reclaimed = h.collect([a]);
        assert_eq!(reclaimed, 1);
        assert!(h.get(a).is_ok());
    }

    #[test]
    fn collect_traces_through_fields_and_arrays() {
        let mut h = Heap::new(1 << 20);
        let leaf = h.alloc(HeapObject::Str("leaf".into())).unwrap();
        let arr = h
            .alloc(HeapObject::Array(ArrayData::Ref(
                "java/lang/Object".into(),
                vec![Some(leaf)],
            )))
            .unwrap();
        let root = h.alloc(instance(0, vec![Some(arr)])).unwrap();
        let dead = h.alloc(HeapObject::Str("dead".into())).unwrap();
        let reclaimed = h.collect([root]);
        assert_eq!(reclaimed, 1);
        assert!(h.get(leaf).is_ok());
        assert!(h.get(arr).is_ok());
        assert!(h.get(dead).is_err());
    }

    #[test]
    fn slots_are_reused_after_collection() {
        let mut h = Heap::new(1 << 20);
        let a = h.alloc(HeapObject::Str("x".into())).unwrap();
        h.collect([]);
        let b = h.alloc(HeapObject::Str("y".into())).unwrap();
        assert_eq!(a.0, b.0, "freed slot should be reused");
    }

    #[test]
    fn oom_when_limit_exceeded() {
        let mut h = Heap::new(64);
        let big = HeapObject::Array(ArrayData::Int(vec![0; 1000]));
        assert!(matches!(h.alloc(big), Err(VmError::OutOfMemory)));
    }

    #[test]
    fn cycles_are_collected() {
        let mut h = Heap::new(1 << 20);
        let a = h.alloc(instance(0, vec![None])).unwrap();
        let b = h.alloc(instance(0, vec![Some(a)])).unwrap();
        if let HeapObject::Instance { fields, .. } = h.get_mut(a).unwrap() {
            fields[0] = Value::Ref(Some(b));
        }
        let reclaimed = h.collect([]);
        assert_eq!(reclaimed, 2, "unreachable cycle must be reclaimed");
    }
}
