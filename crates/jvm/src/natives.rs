//! Native method implementations for the bootstrap library and the
//! `dvm/rt/*` dynamic service components.

use std::collections::HashMap;

use crate::error::{Result, VmError};
use crate::heap::{HeapObject, HeapRef};
use crate::hooks::{AuditKind, SecurityDecision};
use crate::value::Value;
use crate::vm::Vm;

/// Result of a native call.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeResult {
    /// Normal completion with an optional return value.
    Return(Option<Value>),
    /// A Java exception to raise in the caller.
    Throw {
        /// Internal name of the exception class.
        class: String,
        /// Exception message.
        message: String,
    },
}

impl NativeResult {
    fn ret(v: Value) -> Result<NativeResult> {
        Ok(NativeResult::Return(Some(v)))
    }

    fn void() -> Result<NativeResult> {
        Ok(NativeResult::Return(None))
    }

    fn throw(class: &str, message: impl Into<String>) -> Result<NativeResult> {
        Ok(NativeResult::Throw {
            class: class.to_owned(),
            message: message.into(),
        })
    }
}

/// A native method: receives the VM and the argument values (receiver first
/// for instance methods).
pub type NativeFn = fn(&mut Vm, &[Value]) -> Result<NativeResult>;

/// Registry of native implementations keyed by
/// `(declaring class, name, descriptor)`.
pub struct NativeRegistry {
    table: HashMap<(String, String, String), NativeFn>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NativeRegistry({} entries)", self.table.len())
    }
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry {
            table: HashMap::new(),
        }
    }

    /// Creates a registry pre-populated with the bootstrap natives.
    pub fn with_builtins() -> NativeRegistry {
        let mut r = NativeRegistry::new();
        register_builtins(&mut r);
        r
    }

    /// Registers an implementation.
    pub fn register(&mut self, class: &str, name: &str, descriptor: &str, f: NativeFn) {
        self.table.insert(
            (class.to_owned(), name.to_owned(), descriptor.to_owned()),
            f,
        );
    }

    /// Looks up an implementation.
    pub fn lookup(&self, class: &str, name: &str, descriptor: &str) -> Option<NativeFn> {
        self.table
            .get(&(class.to_owned(), name.to_owned(), descriptor.to_owned()))
            .copied()
    }

    /// Number of registered natives.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Default for NativeRegistry {
    fn default() -> Self {
        NativeRegistry::with_builtins()
    }
}

// ---- Argument helpers -------------------------------------------------------

fn arg_int(args: &[Value], i: usize) -> Result<i32> {
    args.get(i)
        .and_then(Value::as_int)
        .ok_or_else(|| VmError::BadCode(format!("native expected int arg {i}")))
}

fn arg_double(args: &[Value], i: usize) -> Result<f64> {
    args.get(i)
        .and_then(Value::as_double)
        .ok_or_else(|| VmError::BadCode(format!("native expected double arg {i}")))
}

fn arg_ref(args: &[Value], i: usize) -> Result<Option<HeapRef>> {
    args.get(i)
        .and_then(Value::as_ref_val)
        .ok_or_else(|| VmError::BadCode(format!("native expected reference arg {i}")))
}

fn arg_nonnull(args: &[Value], i: usize) -> std::result::Result<HeapRef, NativeResult> {
    match args.get(i).and_then(Value::as_ref_val) {
        Some(Some(r)) => Ok(r),
        _ => Err(NativeResult::Throw {
            class: "java/lang/NullPointerException".into(),
            message: format!("null argument {i}"),
        }),
    }
}

macro_rules! nonnull {
    ($args:expr, $i:expr) => {
        match arg_nonnull($args, $i) {
            Ok(r) => r,
            Err(t) => return Ok(t),
        }
    };
}

fn string_arg(vm: &Vm, args: &[Value], i: usize) -> std::result::Result<String, NativeResult> {
    match args.get(i).and_then(Value::as_ref_val) {
        Some(Some(r)) => match vm.get_string(r) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(NativeResult::Throw {
                class: "java/lang/IllegalArgumentException".into(),
                message: "not a string".into(),
            }),
        },
        _ => Err(NativeResult::Throw {
            class: "java/lang/NullPointerException".into(),
            message: format!("null string argument {i}"),
        }),
    }
}

macro_rules! string_arg {
    ($vm:expr, $args:expr, $i:expr) => {
        match string_arg($vm, $args, $i) {
            Ok(s) => s,
            Err(t) => return Ok(t),
        }
    };
}

fn instance_field(vm: &Vm, obj: HeapRef, offset: usize) -> Result<Value> {
    match vm.heap.get(obj)? {
        HeapObject::Instance { fields, .. } => fields
            .get(offset)
            .copied()
            .ok_or_else(|| VmError::BadCode("field offset out of range".into())),
        _ => Err(VmError::BadCode("expected instance".into())),
    }
}

fn set_instance_field(vm: &mut Vm, obj: HeapRef, offset: usize, v: Value) -> Result<()> {
    match vm.heap.get_mut(obj)? {
        HeapObject::Instance { fields, .. } => {
            *fields
                .get_mut(offset)
                .ok_or_else(|| VmError::BadCode("field offset out of range".into()))? = v;
            Ok(())
        }
        _ => Err(VmError::BadCode("expected instance".into())),
    }
}

// ---- Implementations --------------------------------------------------------

fn register_builtins(r: &mut NativeRegistry) {
    // java/lang/Object
    r.register("java/lang/Object", "<init>", "()V", |_vm, _args| {
        NativeResult::void()
    });
    r.register("java/lang/Object", "hashCode", "()I", |_vm, args| {
        let this = nonnull!(args, 0);
        NativeResult::ret(Value::Int(this.0 as i32))
    });
    r.register(
        "java/lang/Object",
        "equals",
        "(Ljava/lang/Object;)Z",
        |vm, args| {
            let this = nonnull!(args, 0);
            let other = arg_ref(args, 1)?;
            let eq = match other {
                Some(o) => {
                    if o == this {
                        true
                    } else {
                        // Strings compare by value even through Object.equals.
                        matches!(
                            (vm.heap.get(this)?, vm.heap.get(o)?),
                            (HeapObject::Str(a), HeapObject::Str(b)) if a == b
                        )
                    }
                }
                None => false,
            };
            NativeResult::ret(Value::Int(eq as i32))
        },
    );
    r.register(
        "java/lang/Object",
        "toString",
        "()Ljava/lang/String;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let class = vm.class_of(this)?;
            let name = vm.registry.get(class).name.clone();
            let s = vm.new_string(format!("{name}@{}", this.0))?;
            NativeResult::ret(Value::Ref(Some(s)))
        },
    );

    // java/lang/String
    r.register("java/lang/String", "length", "()I", |vm, args| {
        let this = nonnull!(args, 0);
        let s = vm.get_string(this)?;
        NativeResult::ret(Value::Int(s.chars().count() as i32))
    });
    r.register("java/lang/String", "charAt", "(I)C", |vm, args| {
        let this = nonnull!(args, 0);
        let idx = arg_int(args, 1)?;
        let s = vm.get_string(this)?;
        match s.chars().nth(idx.max(0) as usize) {
            Some(c) if idx >= 0 => NativeResult::ret(Value::Int(c as i32)),
            _ => NativeResult::throw(
                "java/lang/ArrayIndexOutOfBoundsException",
                format!("string index {idx}"),
            ),
        }
    });
    r.register("java/lang/String", "hashCode", "()I", |vm, args| {
        let this = nonnull!(args, 0);
        let s = vm.get_string(this)?;
        let mut h: i32 = 0;
        for c in s.encode_utf16() {
            h = h.wrapping_mul(31).wrapping_add(c as i32);
        }
        NativeResult::ret(Value::Int(h))
    });
    r.register(
        "java/lang/String",
        "equals",
        "(Ljava/lang/Object;)Z",
        |vm, args| {
            let this = nonnull!(args, 0);
            let other = arg_ref(args, 1)?;
            let eq = match other {
                Some(o) => matches!(
                    (vm.heap.get(this)?, vm.heap.get(o)?),
                    (HeapObject::Str(a), HeapObject::Str(b)) if a == b
                ),
                None => false,
            };
            NativeResult::ret(Value::Int(eq as i32))
        },
    );
    r.register(
        "java/lang/String",
        "concat",
        "(Ljava/lang/String;)Ljava/lang/String;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let other = string_arg!(vm, args, 1);
            let joined = format!("{}{}", vm.get_string(this)?, other);
            let s = vm.new_string(joined)?;
            NativeResult::ret(Value::Ref(Some(s)))
        },
    );
    r.register(
        "java/lang/String",
        "substring",
        "(II)Ljava/lang/String;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let (from, to) = (arg_int(args, 1)?, arg_int(args, 2)?);
            let s = vm.get_string(this)?.to_owned();
            let chars: Vec<char> = s.chars().collect();
            if from < 0 || to < from || to as usize > chars.len() {
                return NativeResult::throw(
                    "java/lang/ArrayIndexOutOfBoundsException",
                    format!("substring({from}, {to}) of length {}", chars.len()),
                );
            }
            let sub: String = chars[from as usize..to as usize].iter().collect();
            let r = vm.new_string(sub)?;
            NativeResult::ret(Value::Ref(Some(r)))
        },
    );
    r.register(
        "java/lang/String",
        "valueOf",
        "(I)Ljava/lang/String;",
        |vm, args| {
            let v = arg_int(args, 0)?;
            let s = vm.new_string(v.to_string())?;
            NativeResult::ret(Value::Ref(Some(s)))
        },
    );

    // java/lang/StringBuilder — `buf` is instance field 0.
    r.register("java/lang/StringBuilder", "<init>", "()V", |vm, args| {
        let this = nonnull!(args, 0);
        let empty = vm.intern_string("")?;
        set_instance_field(vm, this, 0, Value::Ref(Some(empty)))?;
        NativeResult::void()
    });
    r.register(
        "java/lang/StringBuilder",
        "append",
        "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let addition = string_arg!(vm, args, 1);
            sb_append(vm, this, &addition)?;
            NativeResult::ret(Value::Ref(Some(this)))
        },
    );
    r.register(
        "java/lang/StringBuilder",
        "append",
        "(I)Ljava/lang/StringBuilder;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let v = arg_int(args, 1)?;
            sb_append(vm, this, &v.to_string())?;
            NativeResult::ret(Value::Ref(Some(this)))
        },
    );
    r.register(
        "java/lang/StringBuilder",
        "toString",
        "()Ljava/lang/String;",
        |vm, args| {
            let this = nonnull!(args, 0);
            let buf = instance_field(vm, this, 0)?;
            NativeResult::ret(buf)
        },
    );

    // java/io/OutputStream
    r.register("java/io/OutputStream", "<init>", "()V", |_vm, _args| {
        NativeResult::void()
    });
    r.register("java/io/OutputStream", "write", "(I)V", |_vm, _args| {
        NativeResult::void()
    });

    // java/io/PrintStream
    r.register(
        "java/io/PrintStream",
        "println",
        "(Ljava/lang/String;)V",
        |vm, args| {
            let s = string_arg!(vm, args, 1);
            vm.stdout.push(s);
            NativeResult::void()
        },
    );
    r.register("java/io/PrintStream", "println", "(I)V", |vm, args| {
        let v = arg_int(args, 1)?;
        vm.stdout.push(v.to_string());
        NativeResult::void()
    });
    r.register("java/io/PrintStream", "println", "()V", |vm, _args| {
        vm.stdout.push(String::new());
        NativeResult::void()
    });
    r.register(
        "java/io/PrintStream",
        "print",
        "(Ljava/lang/String;)V",
        |vm, args| {
            let s = string_arg!(vm, args, 1);
            match vm.stdout.last_mut() {
                Some(last) => last.push_str(&s),
                None => vm.stdout.push(s),
            }
            NativeResult::void()
        },
    );

    // java/lang/System
    r.register(
        "java/lang/System",
        "getProperty",
        "(Ljava/lang/String;)Ljava/lang/String;",
        |vm, args| {
            if let Some(c) = vm.builtin_checks.get_property {
                vm.stats.cycles += c;
                vm.stats.security_checks += 1;
            }
            let key = string_arg!(vm, args, 0);
            match vm.properties.get(&key).cloned() {
                Some(v) => {
                    let s = vm.new_string(v)?;
                    NativeResult::ret(Value::Ref(Some(s)))
                }
                None => NativeResult::ret(Value::NULL),
            }
        },
    );
    r.register(
        "java/lang/System",
        "currentTimeMillis",
        "()J",
        |vm, _args| {
            // Simulated wall clock derived from the cycle counter (200 MHz).
            NativeResult::ret(Value::Long((vm.stats.cycles / 200_000) as i64))
        },
    );

    // java/lang/Throwable — `message` is instance field 0.
    r.register("java/lang/Throwable", "<init>", "()V", |_vm, _args| {
        NativeResult::void()
    });
    r.register(
        "java/lang/Throwable",
        "<init>",
        "(Ljava/lang/String;)V",
        |vm, args| {
            let this = nonnull!(args, 0);
            let msg = arg_ref(args, 1)?;
            set_instance_field(vm, this, 0, Value::Ref(msg))?;
            NativeResult::void()
        },
    );
    r.register(
        "java/lang/Throwable",
        "getMessage",
        "()Ljava/lang/String;",
        |vm, args| {
            let this = nonnull!(args, 0);
            NativeResult::ret(instance_field(vm, this, 0)?)
        },
    );

    // java/lang/Thread — instance field 0 = priority, static `current`.
    r.register(
        "java/lang/Thread",
        "currentThread",
        "()Ljava/lang/Thread;",
        |vm, _args| match vm.get_static("java/lang/Thread", "current")? {
            Value::Ref(Some(t)) => NativeResult::ret(Value::Ref(Some(t))),
            _ => {
                let class = vm
                    .registry
                    .id_of("java/lang/Thread")
                    .ok_or_else(|| VmError::ClassNotFound("java/lang/Thread".into()))?;
                let t = vm.alloc_instance(class)?;
                set_instance_field(vm, t, 0, Value::Int(5))?;
                vm.set_static("java/lang/Thread", "current", Value::Ref(Some(t)))?;
                NativeResult::ret(Value::Ref(Some(t)))
            }
        },
    );
    r.register("java/lang/Thread", "setPriority", "(I)V", |vm, args| {
        if let Some(c) = vm.builtin_checks.set_priority {
            vm.stats.cycles += c;
            vm.stats.security_checks += 1;
        }
        let this = nonnull!(args, 0);
        let p = arg_int(args, 1)?;
        if !(1..=10).contains(&p) {
            return NativeResult::throw(
                "java/lang/IllegalArgumentException",
                format!("priority {p}"),
            );
        }
        set_instance_field(vm, this, 0, Value::Int(p))?;
        NativeResult::void()
    });
    r.register("java/lang/Thread", "getPriority", "()I", |vm, args| {
        let this = nonnull!(args, 0);
        NativeResult::ret(instance_field(vm, this, 0)?)
    });

    // java/lang/Math
    r.register("java/lang/Math", "min", "(II)I", |_vm, args| {
        NativeResult::ret(Value::Int(arg_int(args, 0)?.min(arg_int(args, 1)?)))
    });
    r.register("java/lang/Math", "max", "(II)I", |_vm, args| {
        NativeResult::ret(Value::Int(arg_int(args, 0)?.max(arg_int(args, 1)?)))
    });
    r.register("java/lang/Math", "abs", "(I)I", |_vm, args| {
        NativeResult::ret(Value::Int(arg_int(args, 0)?.wrapping_abs()))
    });
    r.register("java/lang/Math", "sqrt", "(D)D", |_vm, args| {
        NativeResult::ret(Value::Double(arg_double(args, 0)?.sqrt()))
    });

    // java/lang/Integer
    r.register(
        "java/lang/Integer",
        "toString",
        "(I)Ljava/lang/String;",
        |vm, args| {
            let s = vm.new_string(arg_int(args, 0)?.to_string())?;
            NativeResult::ret(Value::Ref(Some(s)))
        },
    );
    r.register(
        "java/lang/Integer",
        "parseInt",
        "(Ljava/lang/String;)I",
        |vm, args| {
            let s = string_arg!(vm, args, 0);
            match s.trim().parse::<i32>() {
                Ok(v) => NativeResult::ret(Value::Int(v)),
                Err(_) => NativeResult::throw("java/lang/IllegalArgumentException", s),
            }
        },
    );

    // java/io/FileInputStream — instance field 0 = fd.
    r.register(
        "java/io/FileInputStream",
        "<init>",
        "(Ljava/lang/String;)V",
        |vm, args| {
            if let Some(c) = vm.builtin_checks.open_file {
                vm.stats.cycles += c;
                vm.stats.security_checks += 1;
            }
            let this = nonnull!(args, 0);
            let path = string_arg!(vm, args, 1);
            if !vm.vfs.contains_key(&path) {
                return NativeResult::throw(
                    "java/lang/RuntimeException",
                    format!("file not found: {path}"),
                );
            }
            vm.open_files.push(Some((path, 0)));
            let fd = vm.open_files.len() as i32 - 1;
            set_instance_field(vm, this, 0, Value::Int(fd))?;
            NativeResult::void()
        },
    );
    r.register("java/io/FileInputStream", "read", "()I", |vm, args| {
        if let Some(c) = vm.builtin_checks.read_file {
            vm.stats.cycles += c;
            vm.stats.security_checks += 1;
        }
        let this = nonnull!(args, 0);
        let fd = instance_field(vm, this, 0)?.as_int().unwrap_or(-1);
        let slot = vm
            .open_files
            .get_mut(fd.max(0) as usize)
            .and_then(|s| s.as_mut());
        match slot {
            Some((path, pos)) => {
                let data = &vm.vfs[path.as_str()].data;
                if *pos < data.len() {
                    let b = data[*pos];
                    *pos += 1;
                    NativeResult::ret(Value::Int(b as i32))
                } else {
                    NativeResult::ret(Value::Int(-1))
                }
            }
            None => NativeResult::throw("java/lang/RuntimeException", "stream closed"),
        }
    });
    r.register("java/io/FileInputStream", "available", "()I", |vm, args| {
        let this = nonnull!(args, 0);
        let fd = instance_field(vm, this, 0)?.as_int().unwrap_or(-1);
        let avail = vm
            .open_files
            .get(fd.max(0) as usize)
            .and_then(|s| s.as_ref())
            .map(|(path, pos)| vm.vfs[path.as_str()].data.len().saturating_sub(*pos))
            .unwrap_or(0);
        NativeResult::ret(Value::Int(avail as i32))
    });
    r.register("java/io/FileInputStream", "close", "()V", |vm, args| {
        let this = nonnull!(args, 0);
        let fd = instance_field(vm, this, 0)?.as_int().unwrap_or(-1);
        if let Some(slot) = vm.open_files.get_mut(fd.max(0) as usize) {
            *slot = None;
        }
        NativeResult::void()
    });

    // dvm/rt/RTVerifier — the dynamic component of the verification
    // service: a descriptor lookup plus string comparison (Figure 3).
    r.register(
        "dvm/rt/RTVerifier",
        "checkField",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
        |vm, args| {
            let class = string_arg!(vm, args, 0);
            let field = string_arg!(vm, args, 1);
            let desc = string_arg!(vm, args, 2);
            vm.stats.dynamic_verify_checks += 1;
            vm.stats.cycles += 40;
            let id = match vm.load_class(&class) {
                Ok(id) => id,
                Err(_) => {
                    return NativeResult::throw(
                        "java/lang/VerifyError",
                        format!("missing class {class}"),
                    )
                }
            };
            let rc = vm.registry.get(id);
            let found = rc
                .instance_layout
                .iter()
                .chain(rc.static_layout.iter())
                .any(|s| s.name == field && s.descriptor == desc)
                || rc
                    .super_class
                    .map(|sup| {
                        let mut cur = Some(sup);
                        while let Some(c) = cur {
                            let rc = vm.registry.get(c);
                            if rc
                                .static_layout
                                .iter()
                                .any(|s| s.name == field && s.descriptor == desc)
                            {
                                return true;
                            }
                            cur = rc.super_class;
                        }
                        false
                    })
                    .unwrap_or(false);
            if found {
                NativeResult::void()
            } else {
                NativeResult::throw(
                    "java/lang/NoSuchFieldError",
                    format!("{class}.{field}:{desc}"),
                )
            }
        },
    );
    r.register(
        "dvm/rt/RTVerifier",
        "checkMethod",
        "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
        |vm, args| {
            let class = string_arg!(vm, args, 0);
            let method = string_arg!(vm, args, 1);
            let desc = string_arg!(vm, args, 2);
            vm.stats.dynamic_verify_checks += 1;
            vm.stats.cycles += 40;
            let id = match vm.load_class(&class) {
                Ok(id) => id,
                Err(_) => {
                    return NativeResult::throw(
                        "java/lang/VerifyError",
                        format!("missing class {class}"),
                    )
                }
            };
            if vm.registry.resolve_method(id, &method, &desc).is_some() {
                NativeResult::void()
            } else {
                NativeResult::throw(
                    "java/lang/NoSuchMethodError",
                    format!("{class}.{method}:{desc}"),
                )
            }
        },
    );
    r.register(
        "dvm/rt/RTVerifier",
        "checkClass",
        "(Ljava/lang/String;Ljava/lang/String;)V",
        |vm, args| {
            let class = string_arg!(vm, args, 0);
            let expected_super = string_arg!(vm, args, 1);
            vm.stats.dynamic_verify_checks += 1;
            vm.stats.cycles += 40;
            let (id, sup) = match (vm.load_class(&class), vm.load_class(&expected_super)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => {
                    return NativeResult::throw(
                        "java/lang/VerifyError",
                        format!("missing class {class} or {expected_super}"),
                    )
                }
            };
            if vm.registry.is_subtype(id, sup) {
                NativeResult::void()
            } else {
                NativeResult::throw(
                    "java/lang/VerifyError",
                    format!("{class} does not extend {expected_super}"),
                )
            }
        },
    );

    // dvm/rt/Enforcer — the enforcement manager hook.
    r.register("dvm/rt/Enforcer", "check", "(II)V", |vm, args| {
        let sid = arg_int(args, 0)?;
        let perm = arg_int(args, 1)?;
        vm.stats.security_checks += 1;
        match vm.services.security_check(sid, perm) {
            SecurityDecision::Allow { cost_cycles } => {
                vm.stats.cycles += cost_cycles;
                NativeResult::void()
            }
            SecurityDecision::Deny { cost_cycles } => {
                vm.stats.cycles += cost_cycles;
                NativeResult::throw(
                    "java/lang/SecurityException",
                    format!("sid {sid} denied permission {perm}"),
                )
            }
        }
    });

    // dvm/rt/Audit
    r.register("dvm/rt/Audit", "enter", "(I)V", |vm, args| {
        vm.services.audit_event(arg_int(args, 0)?, AuditKind::Enter);
        vm.stats.cycles += 15;
        NativeResult::void()
    });
    r.register("dvm/rt/Audit", "exit", "(I)V", |vm, args| {
        vm.services.audit_event(arg_int(args, 0)?, AuditKind::Exit);
        vm.stats.cycles += 15;
        NativeResult::void()
    });
    r.register("dvm/rt/Audit", "event", "(I)V", |vm, args| {
        vm.services.audit_event(arg_int(args, 0)?, AuditKind::Event);
        vm.stats.cycles += 15;
        NativeResult::void()
    });

    // dvm/rt/Profiler
    r.register("dvm/rt/Profiler", "count", "(I)V", |vm, args| {
        vm.services.profile_count(arg_int(args, 0)?);
        vm.stats.cycles += 5;
        NativeResult::void()
    });
    r.register("dvm/rt/Profiler", "firstUse", "(I)V", |vm, args| {
        vm.services.first_use(arg_int(args, 0)?);
        vm.stats.cycles += 5;
        NativeResult::void()
    });
}

fn sb_append(vm: &mut Vm, sb: HeapRef, addition: &str) -> Result<()> {
    let cur = match instance_field(vm, sb, 0)? {
        Value::Ref(Some(r)) => vm.get_string(r)?.to_owned(),
        _ => String::new(),
    };
    let joined = vm.new_string(format!("{cur}{addition}"))?;
    set_instance_field(vm, sb, 0, Value::Ref(Some(joined)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::MapProvider;

    fn vm() -> Vm {
        Vm::new(Box::new(MapProvider::new())).unwrap()
    }

    #[test]
    fn builtins_are_registered() {
        let r = NativeRegistry::with_builtins();
        assert!(r.lookup("java/lang/Object", "hashCode", "()I").is_some());
        assert!(r
            .lookup(
                "dvm/rt/RTVerifier",
                "checkMethod",
                "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V"
            )
            .is_some());
        assert!(r.lookup("java/lang/Object", "nope", "()V").is_none());
    }

    #[test]
    fn string_natives_work() {
        let mut vm = vm();
        let s = vm.intern_string("hello").unwrap();
        let f = vm
            .natives
            .lookup("java/lang/String", "length", "()I")
            .unwrap();
        let out = f(&mut vm, &[Value::Ref(Some(s))]).unwrap();
        assert_eq!(out, NativeResult::Return(Some(Value::Int(5))));
    }

    #[test]
    fn println_captures_output() {
        let mut vm = vm();
        let s = vm.intern_string("hi").unwrap();
        let f = vm
            .natives
            .lookup("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        f(&mut vm, &[Value::NULL, Value::Ref(Some(s))]).unwrap();
        assert_eq!(vm.stdout, vec!["hi"]);
    }

    #[test]
    fn rtverifier_checkmethod_detects_missing_member() {
        let mut vm = vm();
        let c = vm.intern_string("java/lang/Object").unwrap();
        let m = vm.intern_string("missing").unwrap();
        let d = vm.intern_string("()V").unwrap();
        let f = vm
            .natives
            .lookup(
                "dvm/rt/RTVerifier",
                "checkMethod",
                "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V",
            )
            .unwrap();
        let out = f(
            &mut vm,
            &[
                Value::Ref(Some(c)),
                Value::Ref(Some(m)),
                Value::Ref(Some(d)),
            ],
        )
        .unwrap();
        assert!(
            matches!(out, NativeResult::Throw { class, .. } if class == "java/lang/NoSuchMethodError")
        );
        assert_eq!(vm.stats.dynamic_verify_checks, 1);
    }

    #[test]
    fn file_natives_roundtrip_through_vfs() {
        let mut vm = vm();
        vm.add_file("/data/test.txt", vec![7, 8]);
        let fis_class = vm.registry.id_of("java/io/FileInputStream").unwrap();
        let fis = vm.alloc_instance(fis_class).unwrap();
        let path = vm.intern_string("/data/test.txt").unwrap();
        let init = vm
            .natives
            .lookup("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
            .unwrap();
        init(&mut vm, &[Value::Ref(Some(fis)), Value::Ref(Some(path))]).unwrap();
        let read = vm
            .natives
            .lookup("java/io/FileInputStream", "read", "()I")
            .unwrap();
        assert_eq!(
            read(&mut vm, &[Value::Ref(Some(fis))]).unwrap(),
            NativeResult::Return(Some(Value::Int(7)))
        );
        assert_eq!(
            read(&mut vm, &[Value::Ref(Some(fis))]).unwrap(),
            NativeResult::Return(Some(Value::Int(8)))
        );
        assert_eq!(
            read(&mut vm, &[Value::Ref(Some(fis))]).unwrap(),
            NativeResult::Return(Some(Value::Int(-1)))
        );
    }

    #[test]
    fn missing_file_throws() {
        let mut vm = vm();
        let fis_class = vm.registry.id_of("java/io/FileInputStream").unwrap();
        let fis = vm.alloc_instance(fis_class).unwrap();
        let path = vm.intern_string("/nope").unwrap();
        let init = vm
            .natives
            .lookup("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
            .unwrap();
        let out = init(&mut vm, &[Value::Ref(Some(fis)), Value::Ref(Some(path))]).unwrap();
        assert!(matches!(out, NativeResult::Throw { .. }));
    }
}
