//! Runtime values.

use crate::heap::HeapRef;

/// A value on the operand stack or in a local-variable slot.
///
/// Wide values (`long`, `double`) are held in a single `Value`; the
/// interpreter models their two-slot nature where the instruction set
/// requires it (`pop2`, `dup2`, locals layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `int` (also carries boolean/byte/char/short).
    Int(i32),
    /// `long`.
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double`.
    Double(f64),
    /// A reference; `None` is `null`.
    Ref(Option<HeapRef>),
    /// A `jsr` return address (instruction index).
    RetAddr(u32),
    /// The unusable second slot of a wide local.
    Invalid,
}

impl Value {
    /// The canonical `null` reference.
    pub const NULL: Value = Value::Ref(None);

    /// Default value for a field of the given descriptor.
    pub fn default_for(descriptor: &str) -> Value {
        match descriptor.as_bytes().first() {
            Some(b'J') => Value::Long(0),
            Some(b'F') => Value::Float(0.0),
            Some(b'D') => Value::Double(0.0),
            Some(b'L') | Some(b'[') => Value::NULL,
            _ => Value::Int(0),
        }
    }

    /// Returns `true` for `long`/`double` values.
    pub fn is_wide(&self) -> bool {
        matches!(self, Value::Long(_) | Value::Double(_))
    }

    /// Extracts an `int`, or `None` for other kinds.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `long`.
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `float`.
    pub fn as_float(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a reference (possibly null).
    pub fn as_ref_val(&self) -> Option<Option<HeapRef>> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_descriptors() {
        assert_eq!(Value::default_for("I"), Value::Int(0));
        assert_eq!(Value::default_for("Z"), Value::Int(0));
        assert_eq!(Value::default_for("J"), Value::Long(0));
        assert_eq!(Value::default_for("D"), Value::Double(0.0));
        assert_eq!(Value::default_for("Ljava/lang/String;"), Value::NULL);
        assert_eq!(Value::default_for("[I"), Value::NULL);
    }

    #[test]
    fn wideness() {
        assert!(Value::Long(1).is_wide());
        assert!(Value::Double(1.0).is_wide());
        assert!(!Value::Int(1).is_wide());
        assert!(!Value::NULL.is_wide());
    }
}
