//! Runtime class representation and the class registry.
//!
//! Loaded classes are linked into [`RuntimeClass`] records: field layouts
//! are flattened (superclass fields first), method tables are indexed by
//! `(name, descriptor)`, and each class keeps its constant pool for runtime
//! resolution of `ldc` and member references.

use std::collections::HashMap;

use std::sync::Arc;

use dvm_bytecode::Code;
use dvm_classfile::descriptor::MethodDescriptor;
use dvm_classfile::{AccessFlags, ClassFile, ConstPool};

use crate::error::{Result, VmError};
use crate::heap::ClassId;
use crate::value::Value;

/// Class-initialization state (`<clinit>` tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitState {
    /// `<clinit>` has not run.
    NotInitialized,
    /// `<clinit>` is on the stack (re-entrant uses see this).
    InProgress,
    /// Initialization completed.
    Initialized,
}

/// One field slot in a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSlot {
    /// Simple field name.
    pub name: String,
    /// Field descriptor.
    pub descriptor: String,
    /// Class that declared the field.
    pub declared_in: String,
    /// Raw access flags.
    pub access: AccessFlags,
}

/// A linked method.
#[derive(Debug, Clone)]
pub struct RuntimeMethod {
    /// Simple name.
    pub name: String,
    /// Descriptor string.
    pub descriptor: String,
    /// Parsed descriptor.
    pub desc: MethodDescriptor,
    /// Access flags.
    pub access: AccessFlags,
    /// Decoded body (absent for `native`/`abstract`), shared with frames.
    pub code: Option<Arc<Code>>,
    /// Resolved native implementation, cached on first call.
    pub native_impl: Option<crate::natives::NativeFn>,
}

/// Cached resolution of an invoke-site constant-pool entry.
#[derive(Debug, Clone)]
pub struct InvokeInfo {
    /// Callee simple name.
    pub name: Arc<str>,
    /// Callee descriptor.
    pub descriptor: Arc<str>,
    /// The class named by the reference.
    pub decl_class: ClassId,
    /// Number of declared parameters (values, not slots).
    pub param_count: usize,
    /// Statically resolved target (for `invokestatic`/`invokespecial`).
    pub static_target: Option<(ClassId, usize)>,
}

impl RuntimeMethod {
    /// Returns `true` for native methods.
    pub fn is_native(&self) -> bool {
        self.access.is_native()
    }

    /// Number of local slots the arguments occupy, including `this` for
    /// instance methods.
    pub fn arg_slots(&self) -> u16 {
        self.desc.param_slots() + if self.access.is_static() { 0 } else { 1 }
    }
}

/// A linked class.
#[derive(Debug)]
pub struct RuntimeClass {
    /// Internal name.
    pub name: String,
    /// Superclass id, `None` for `java/lang/Object`.
    pub super_class: Option<ClassId>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// Class access flags.
    pub access: AccessFlags,
    /// Instance field layout, superclass fields first.
    pub instance_layout: Vec<FieldSlot>,
    /// Static field layout (this class only).
    pub static_layout: Vec<FieldSlot>,
    /// Static field values, parallel to `static_layout`.
    pub statics: Vec<Value>,
    /// Methods declared by this class.
    pub methods: Vec<RuntimeMethod>,
    /// `(name, descriptor)` to method index.
    pub method_index: HashMap<(String, String), usize>,
    /// Instance field name to layout offset.
    pub field_offset: HashMap<String, usize>,
    /// Static field name to offset.
    pub static_offset: HashMap<String, usize>,
    /// The class's constant pool (for runtime resolution).
    pub pool: ConstPool,
    /// Initialization state.
    pub init_state: InitState,
    /// Size of the class file this class was loaded from.
    pub loaded_bytes: usize,
    /// Lazily-filled invoke-site resolution cache, keyed by pool index.
    pub invoke_cache: HashMap<u16, InvokeInfo>,
    /// Lazily-filled virtual-dispatch cache: `(pool index, receiver class)`
    /// to the resolved `(declaring class, method index)`.
    pub vcall_cache: HashMap<(u16, ClassId), (ClassId, usize)>,
    /// Lazily-filled instance-field offset cache, keyed by pool index.
    pub ifield_cache: HashMap<u16, usize>,
    /// Lazily-filled static-field cache: pool index to
    /// `(declaring class, offset)`.
    pub sfield_cache: HashMap<u16, (ClassId, usize)>,
}

impl RuntimeClass {
    /// Finds a method declared by this class.
    pub fn find_method(&self, name: &str, descriptor: &str) -> Option<usize> {
        self.method_index
            .get(&(name.to_owned(), descriptor.to_owned()))
            .copied()
    }
}

/// The set of loaded classes.
#[derive(Debug, Default)]
pub struct Registry {
    classes: Vec<RuntimeClass>,
    by_name: HashMap<String, ClassId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of loaded classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` when no classes are loaded.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Looks up a loaded class by name.
    pub fn id_of(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Immutable access to a class.
    pub fn get(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id.0 as usize]
    }

    /// Mutable access to a class.
    pub fn get_mut(&mut self, id: ClassId) -> &mut RuntimeClass {
        &mut self.classes[id.0 as usize]
    }

    /// Iterates all loaded classes with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &RuntimeClass)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Links a parsed class file into the registry.
    ///
    /// The superclass and interfaces must already be linked; the caller
    /// (the VM's loader) guarantees this by loading bottom-up.
    pub fn link(&mut self, cf: &ClassFile, loaded_bytes: usize) -> Result<ClassId> {
        let name = cf.name()?.to_owned();
        if self.by_name.contains_key(&name) {
            return Err(VmError::LinkError {
                class: name,
                reason: "class already linked".into(),
            });
        }
        let super_class = match cf.super_name()? {
            None => None,
            Some(s) => Some(self.id_of(s).ok_or_else(|| VmError::LinkError {
                class: name.clone(),
                reason: format!("superclass {s} not linked"),
            })?),
        };
        let mut interfaces = Vec::with_capacity(cf.interfaces.len());
        for iface in cf.interface_names()? {
            interfaces.push(self.id_of(iface).ok_or_else(|| VmError::LinkError {
                class: name.clone(),
                reason: format!("interface {iface} not linked"),
            })?);
        }

        // Instance layout: superclass fields first, then this class's.
        let mut instance_layout = super_class
            .map(|s| self.get(s).instance_layout.clone())
            .unwrap_or_default();
        let mut static_layout = Vec::new();
        for f in &cf.fields {
            let slot = FieldSlot {
                name: f.name(&cf.pool)?.to_owned(),
                descriptor: f.descriptor(&cf.pool)?.to_owned(),
                declared_in: name.clone(),
                access: f.access,
            };
            if f.access.is_static() {
                static_layout.push(slot);
            } else {
                instance_layout.push(slot);
            }
        }
        let field_offset = instance_layout
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let static_offset: HashMap<String, usize> = static_layout
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let statics = static_layout
            .iter()
            .map(|s| Value::default_for(&s.descriptor))
            .collect();

        let mut methods = Vec::with_capacity(cf.methods.len());
        let mut method_index = HashMap::new();
        for m in &cf.methods {
            let mname = m.name(&cf.pool)?.to_owned();
            let mdesc = m.descriptor(&cf.pool)?.to_owned();
            let desc = MethodDescriptor::parse(&mdesc)?;
            let code = match m.code() {
                Some(attr) => Some(Arc::new(Code::decode(attr)?)),
                None => None,
            };
            method_index.insert((mname.clone(), mdesc.clone()), methods.len());
            methods.push(RuntimeMethod {
                name: mname,
                descriptor: mdesc,
                desc,
                access: m.access,
                code,
                native_impl: None,
            });
        }

        let id = ClassId(self.classes.len() as u32);
        self.classes.push(RuntimeClass {
            name: name.clone(),
            super_class,
            interfaces,
            access: cf.access,
            instance_layout,
            static_layout,
            statics,
            methods,
            method_index,
            field_offset,
            static_offset,
            pool: cf.pool.clone(),
            init_state: InitState::NotInitialized,
            loaded_bytes,
            invoke_cache: HashMap::new(),
            vcall_cache: HashMap::new(),
            ifield_cache: HashMap::new(),
            sfield_cache: HashMap::new(),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Resolves a method by walking up the class hierarchy from `class`.
    pub fn resolve_method(
        &self,
        class: ClassId,
        name: &str,
        descriptor: &str,
    ) -> Option<(ClassId, usize)> {
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.get(id);
            if let Some(idx) = rc.find_method(name, descriptor) {
                return Some((id, idx));
            }
            cur = rc.super_class;
        }
        // Search interfaces (for default-less interface methods resolved on
        // classes, this only matters for invokeinterface lookups).
        let mut stack = vec![class];
        while let Some(id) = stack.pop() {
            let rc = self.get(id);
            for &iface in &rc.interfaces {
                if let Some(idx) = self.get(iface).find_method(name, descriptor) {
                    return Some((iface, idx));
                }
                stack.push(iface);
            }
            if let Some(s) = rc.super_class {
                stack.push(s);
            }
        }
        None
    }

    /// Resolves an instance field offset by walking up from `class`.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<usize> {
        // The flattened layout already contains inherited fields, so a
        // single lookup on the concrete class suffices.
        self.get(class).field_offset.get(name).copied()
    }

    /// Resolves a static field to `(declaring class, offset)` walking up
    /// from `class`.
    pub fn resolve_static(&self, class: ClassId, name: &str) -> Option<(ClassId, usize)> {
        let mut cur = Some(class);
        while let Some(id) = cur {
            let rc = self.get(id);
            if let Some(&off) = rc.static_offset.get(name) {
                return Some((id, off));
            }
            cur = rc.super_class;
        }
        None
    }

    /// Returns `true` when `sub` is `sup` or a subclass/implementor of it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        while let Some(id) = stack.pop() {
            if id == sup {
                return true;
            }
            let rc = self.get(id);
            if let Some(s) = rc.super_class {
                stack.push(s);
            }
            stack.extend(rc.interfaces.iter().copied());
        }
        false
    }
}

/// Supplies class bytes by name. Implementations range from an in-memory
/// map (tests) to the DVM client's network fetch path (in `dvm-core`).
pub trait ClassProvider: Send {
    /// Returns the class-file bytes for `name`, or `None` if unknown.
    fn load(&mut self, name: &str) -> Option<Vec<u8>>;
}

/// A provider backed by an in-memory map.
#[derive(Debug, Default)]
pub struct MapProvider {
    classes: HashMap<String, Vec<u8>>,
}

impl MapProvider {
    /// Creates an empty provider.
    pub fn new() -> MapProvider {
        MapProvider::default()
    }

    /// Adds a class's bytes.
    pub fn insert(&mut self, name: &str, bytes: Vec<u8>) {
        self.classes.insert(name.to_owned(), bytes);
    }

    /// Adds a class file, serializing it.
    pub fn insert_class(&mut self, cf: &mut ClassFile) -> Result<()> {
        let name = cf.name()?.to_owned();
        let bytes = cf.to_bytes()?;
        self.classes.insert(name, bytes);
        Ok(())
    }

    /// Number of classes available.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` when the provider is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

impl ClassProvider for MapProvider {
    fn load(&mut self, name: &str) -> Option<Vec<u8>> {
        self.classes.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::ClassBuilder;

    fn object() -> ClassFile {
        ClassBuilder::new("java/lang/Object")
            .no_super_class()
            .build()
    }

    #[test]
    fn linking_builds_layouts() {
        let mut reg = Registry::new();
        let obj = reg.link(&object(), 100).unwrap();
        let base = ClassBuilder::new("A")
            .field(AccessFlags::empty(), "x", "I")
            .field(AccessFlags::STATIC, "s", "J")
            .build();
        let a = reg.link(&base, 200).unwrap();
        let derived = ClassBuilder::new("B")
            .super_class("A")
            .field(AccessFlags::empty(), "y", "D")
            .build();
        let b = reg.link(&derived, 300).unwrap();

        assert_eq!(reg.get(a).instance_layout.len(), 1);
        assert_eq!(reg.get(b).instance_layout.len(), 2);
        assert_eq!(reg.resolve_field(b, "x"), Some(0));
        assert_eq!(reg.resolve_field(b, "y"), Some(1));
        assert_eq!(reg.resolve_static(b, "s"), Some((a, 0)));
        assert!(reg.is_subtype(b, a));
        assert!(reg.is_subtype(b, obj));
        assert!(!reg.is_subtype(a, b));
    }

    #[test]
    fn linking_requires_super_first() {
        let mut reg = Registry::new();
        let derived = ClassBuilder::new("B").super_class("A").build();
        assert!(matches!(
            reg.link(&derived, 0),
            Err(VmError::LinkError { .. })
        ));
    }

    #[test]
    fn duplicate_link_is_rejected() {
        let mut reg = Registry::new();
        reg.link(&object(), 0).unwrap();
        assert!(reg.link(&object(), 0).is_err());
    }

    #[test]
    fn method_resolution_walks_hierarchy() {
        let mut reg = Registry::new();
        reg.link(&object(), 0).unwrap();
        let base = ClassBuilder::new("A")
            .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "f", "()V")
            .build();
        let a = reg.link(&base, 0).unwrap();
        let derived = ClassBuilder::new("B").super_class("A").build();
        let b = reg.link(&derived, 0).unwrap();
        let (cls, idx) = reg.resolve_method(b, "f", "()V").unwrap();
        assert_eq!(cls, a);
        assert_eq!(reg.get(cls).methods[idx].name, "f");
    }

    #[test]
    fn interface_subtyping() {
        let mut reg = Registry::new();
        reg.link(&object(), 0).unwrap();
        let iface = ClassBuilder::new("IFace")
            .access(AccessFlags::PUBLIC | AccessFlags::INTERFACE)
            .build();
        let i = reg.link(&iface, 0).unwrap();
        let impl_ = ClassBuilder::new("Impl").interface("IFace").build();
        let c = reg.link(&impl_, 0).unwrap();
        assert!(reg.is_subtype(c, i));
    }
}
