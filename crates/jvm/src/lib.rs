//! A JVM-subset execution engine: class loading, linking, interpretation,
//! heap management, and mark-sweep garbage collection.
//!
//! This crate is the DVM *client* substrate: the paper's own client VM
//! ("an interpreter, runtime, and garbage collector", §4) rebuilt in Rust.
//! It executes the class files produced by `dvm-classfile`/`dvm-bytecode`,
//! hosts the bootstrap runtime library ([`bootstrap`]), and exposes the
//! hook points ([`hooks::DynamicServices`]) where the DVM's dynamic service
//! components — the enforcement manager, audit forwarder, and profiler —
//! plug in.
//!
//! Execution cost is accounted in simulated cycles (see
//! [`interp::insn_cost`]) so that every experiment in the benchmark harness
//! is deterministic and machine-independent.

pub mod bootstrap;
pub mod classes;
pub mod error;
pub mod exec;
pub mod heap;
pub mod hooks;
pub mod interp;
pub mod natives;
pub mod value;
pub mod vm;

pub use classes::{ClassProvider, MapProvider, Registry, RuntimeClass, RuntimeMethod};
pub use error::{Result, VmError};
pub use exec::{ExecStats, ExecTier};
pub use heap::{ArrayData, ClassId, Heap, HeapObject, HeapRef};
pub use hooks::{AuditKind, BuiltinChecks, DynamicServices, NoServices, SecurityDecision};
pub use interp::Completion;
pub use natives::{NativeFn, NativeRegistry, NativeResult};
pub use value::Value;
pub use vm::{Vm, VmStats};
