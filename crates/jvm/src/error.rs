//! Engine-level error type.
//!
//! Java-visible exceptions (`NullPointerException`, `VerifyError`, ...) are
//! *not* errors of this type: they are heap objects propagated through the
//! interpreter's completion values. `VmError` covers conditions that mean
//! the engine itself cannot continue — corrupt bytecode, missing classes
//! the bootstrap needs, or exhausted resource budgets.

use std::fmt;

use dvm_bytecode::BytecodeError;
use dvm_classfile::ClassFileError;

/// Fatal engine errors.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A class could not be found by any loader.
    ClassNotFound(String),
    /// A class failed to parse or link.
    LinkError {
        /// Class being linked.
        class: String,
        /// Explanation.
        reason: String,
    },
    /// A member reference did not resolve.
    NoSuchMember {
        /// Declaring class searched.
        class: String,
        /// Member name.
        name: String,
        /// Member descriptor.
        descriptor: String,
    },
    /// The interpreter hit malformed state (bad local index, wrong value
    /// kind on the stack) — this indicates unverified or corrupt code.
    BadCode(String),
    /// A native method was invoked that has no registered implementation.
    MissingNative(String),
    /// The configured instruction budget was exhausted.
    OutOfFuel,
    /// The heap limit was exceeded even after collection.
    OutOfMemory,
    /// The frame stack exceeded its limit.
    StackOverflow,
    /// Underlying class-file problem.
    ClassFile(ClassFileError),
    /// Underlying bytecode problem.
    Bytecode(BytecodeError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::ClassNotFound(c) => write!(f, "class not found: {c}"),
            VmError::LinkError { class, reason } => write!(f, "link error in {class}: {reason}"),
            VmError::NoSuchMember {
                class,
                name,
                descriptor,
            } => {
                write!(f, "no such member: {class}.{name}:{descriptor}")
            }
            VmError::BadCode(msg) => write!(f, "bad code: {msg}"),
            VmError::MissingNative(m) => write!(f, "missing native implementation: {m}"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::OutOfMemory => write!(f, "heap limit exceeded"),
            VmError::StackOverflow => write!(f, "frame stack overflow"),
            VmError::ClassFile(e) => write!(f, "{e}"),
            VmError::Bytecode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<ClassFileError> for VmError {
    fn from(e: ClassFileError) -> Self {
        VmError::ClassFile(e)
    }
}

impl From<BytecodeError> for VmError {
    fn from(e: BytecodeError) -> Self {
        VmError::Bytecode(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, VmError>;
