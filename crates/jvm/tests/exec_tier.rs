//! Cross-tier execution tests: compile classes to register IR with
//! `dvm-exec`, install the IR into a live VM, and prove the optimizing
//! tier (a) produces the same observable results as the interpreter,
//! (b) dispatches across tier boundaries in both directions, and
//! (c) routes service intrinsics to the same hooks.

use std::sync::{Arc, Mutex};

use dvm_bytecode::asm::Asm;
use dvm_bytecode::insn::{ICond, Kind};
use dvm_bytecode::{ArithOp, NumKind};
use dvm_classfile::{AccessFlags, ClassBuilder, ClassFile, CodeAttribute};
use dvm_exec::{compile_class, RInsn};
use dvm_jvm::{AuditKind, Completion, DynamicServices, MapProvider, SecurityDecision, Value, Vm};

fn ps() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::STATIC
}

fn code(cf: &ClassFile, a: Asm) -> CodeAttribute {
    a.finish().unwrap().encode(&cf.pool).unwrap()
}

fn push_method(cf: &mut ClassFile, method: &str, descriptor: &str, a: Asm) {
    let attr = code(cf, a);
    let name_index = cf.pool.utf8(method).unwrap();
    let desc_index = cf.pool.utf8(descriptor).unwrap();
    cf.methods.push(dvm_classfile::MemberInfo {
        access: ps(),
        name_index,
        descriptor_index: desc_index,
        attributes: vec![dvm_classfile::Attribute::Code(attr)],
    });
}

fn single_method_class(
    name: &str,
    method: &str,
    descriptor: &str,
    build: impl FnOnce(&mut dvm_classfile::ConstPool, &mut Asm),
) -> ClassFile {
    let mut cf = ClassBuilder::new(name).build();
    let mut a = Asm::new(8);
    build(&mut cf.pool, &mut a);
    push_method(&mut cf, method, descriptor, a);
    cf
}

fn vm_for(cf: &ClassFile) -> Vm {
    let mut cf = cf.clone();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    Vm::new(Box::new(provider)).unwrap()
}

/// A VM with the class's optimized IR pre-installed (before first load,
/// exercising the pending-bind path).
fn vm_with_ir(cf: &ClassFile) -> Vm {
    let mut vm = vm_for(cf);
    let (ir, _) = compile_class(cf).unwrap();
    vm.install_ir(ir);
    vm
}

fn int_of(c: Completion) -> i32 {
    match c {
        Completion::Normal(Some(Value::Int(v))) => v,
        other => panic!("expected int result, got {other:?}"),
    }
}

fn loop_class() -> ClassFile {
    // sum = 0; for i in 0..n { sum += i }; return sum
    single_method_class("t/Loop", "sum", "(I)I", |_pool, a| {
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.iconst(0).istore(2);
        a.place(top);
        a.iload(2).iload(0).if_icmp(ICond::Ge, done);
        a.iload(1).iload(2).iadd().istore(1);
        a.iinc(2, 1).goto(top);
        a.place(done);
        a.iload(1).ret_val(Kind::Int);
    })
}

#[test]
fn compiled_loop_runs_on_the_ir_tier() {
    let cf = loop_class();
    let mut vm = vm_with_ir(&cf);
    let out = vm
        .run_static("t/Loop", "sum", "(I)I", vec![Value::Int(10)])
        .unwrap();
    assert_eq!(int_of(out), 45);
    assert_eq!(vm.exec.stats.ir_invocations, 1);
    assert_eq!(vm.exec.stats.interp_invocations, 0);
    assert_eq!(vm.exec.stats.installed_classes, 1);
    assert!(vm.exec.stats.installed_methods >= 1);
}

#[test]
fn optimized_ir_consumes_fewer_cycles_than_the_interpreter() {
    // (2 + 3) * 4 - 5: entirely constant-foldable, so the optimized IR
    // collapses the arithmetic that the interpreter performs at runtime.
    let cf = single_method_class("t/Fold", "k", "()I", |_pool, a| {
        a.iconst(2)
            .iconst(3)
            .iadd()
            .iconst(4)
            .imul()
            .iconst(5)
            .isub()
            .ret_val(Kind::Int);
    });

    let mut interp = vm_for(&cf);
    let a = int_of(interp.run_static("t/Fold", "k", "()I", vec![]).unwrap());

    let mut tiered = vm_with_ir(&cf);
    let b = int_of(tiered.run_static("t/Fold", "k", "()I", vec![]).unwrap());

    assert_eq!(a, 15);
    assert_eq!(a, b);
    assert!(
        tiered.stats.cycles < interp.stats.cycles,
        "optimized IR should be cheaper: {} vs {}",
        tiered.stats.cycles,
        interp.stats.cycles
    );
}

#[test]
fn compiled_recursion_stays_on_the_ir_tier() {
    let mut cf = ClassBuilder::new("t/Fib").build();
    let m = cf.pool.methodref("t/Fib", "fib", "(I)I").unwrap();
    let mut a = Asm::new(1);
    let base = a.new_label();
    a.iload(0).iconst(2).if_icmp(ICond::Lt, base);
    a.iload(0).iconst(1).isub().invokestatic(m);
    a.iload(0).iconst(2).isub().invokestatic(m);
    a.iadd().ret_val(Kind::Int);
    a.place(base);
    a.iload(0).ret_val(Kind::Int);
    push_method(&mut cf, "fib", "(I)I", a);

    let mut vm = vm_with_ir(&cf);
    let out = vm
        .run_static("t/Fib", "fib", "(I)I", vec![Value::Int(15)])
        .unwrap();
    assert_eq!(int_of(out), 610);
    assert!(
        vm.exec.stats.ir_invocations > 10,
        "recursive calls stay on tier"
    );
    assert_eq!(vm.exec.stats.interp_invocations, 0);
}

/// t/Mix: `main(n) = helper(n) + 1`, `helper(n) = n * 2`.
fn mix_class() -> ClassFile {
    let mut cf = ClassBuilder::new("t/Mix").build();
    let helper = cf.pool.methodref("t/Mix", "helper", "(I)I").unwrap();
    let mut a = Asm::new(1);
    a.iload(0)
        .invokestatic(helper)
        .iconst(1)
        .iadd()
        .ret_val(Kind::Int);
    push_method(&mut cf, "main", "(I)I", a);
    let mut a = Asm::new(1);
    a.iload(0).iconst(2).imul().ret_val(Kind::Int);
    push_method(&mut cf, "helper", "(I)I", a);
    cf
}

fn vm_with_partial_ir(cf: &ClassFile, keep: &str) -> Vm {
    let mut vm = vm_for(cf);
    let (mut ir, _) = compile_class(cf).unwrap();
    ir.methods.retain(|f| f.name == keep);
    assert_eq!(ir.methods.len(), 1);
    vm.install_ir(ir);
    vm
}

#[test]
fn compiled_caller_falls_back_to_interpreter_for_uncompiled_callee() {
    let cf = mix_class();
    let mut vm = vm_with_partial_ir(&cf, "main");
    let out = vm
        .run_static("t/Mix", "main", "(I)I", vec![Value::Int(21)])
        .unwrap();
    assert_eq!(int_of(out), 43);
    assert_eq!(vm.exec.stats.ir_invocations, 1, "main ran on IR");
    assert_eq!(vm.exec.stats.interp_invocations, 1, "helper fell back");
}

#[test]
fn interpreted_caller_dispatches_into_compiled_callee() {
    let cf = mix_class();
    let mut vm = vm_with_partial_ir(&cf, "helper");
    let out = vm
        .run_static("t/Mix", "main", "(I)I", vec![Value::Int(21)])
        .unwrap();
    assert_eq!(int_of(out), 43);
    assert_eq!(vm.exec.stats.ir_invocations, 1, "helper ran on IR");
    // `main` itself executed interpreted (the entry frame).
    assert_eq!(vm.exec.stats.interp_invocations, 1);
}

#[test]
fn compiled_handler_catches_division_by_zero() {
    let mut cf = ClassBuilder::new("t/Div").build();
    let exc = cf.pool.class("java/lang/ArithmeticException").unwrap();
    let mut a = Asm::new(1);
    let start = a.new_label();
    let end = a.new_label();
    let handler = a.new_label();
    a.place(start);
    a.iconst(1).iload(0).arith(NumKind::Int, ArithOp::Div);
    a.place(end);
    a.ret_val(Kind::Int);
    a.place(handler);
    a.pop();
    a.iconst(-1).ret_val(Kind::Int);
    a.handler(start, end, handler, exc);
    push_method(&mut cf, "div", "(I)I", a);

    let mut vm = vm_with_ir(&cf);
    let caught = vm
        .run_static("t/Div", "div", "(I)I", vec![Value::Int(0)])
        .unwrap();
    assert_eq!(int_of(caught), -1);
    let fine = vm
        .run_static("t/Div", "div", "(I)I", vec![Value::Int(3)])
        .unwrap();
    assert_eq!(int_of(fine), 0);
    assert_eq!(vm.exec.stats.ir_invocations, 2);
}

#[test]
fn uncaught_exception_escapes_compiled_code_with_interpreter_message() {
    let cf = single_method_class("t/Boom", "div", "(I)I", |_pool, a| {
        a.iconst(1)
            .iload(0)
            .arith(NumKind::Int, ArithOp::Div)
            .ret_val(Kind::Int);
    });
    let mut vm = vm_with_ir(&cf);
    match vm
        .run_static("t/Boom", "div", "(I)I", vec![Value::Int(0)])
        .unwrap()
    {
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            assert_eq!(class, "java/lang/ArithmeticException");
            assert_eq!(msg, "/ by zero");
        }
        other => panic!("expected exception, got {other:?}"),
    }
    assert_eq!(vm.exec.stats.ir_invocations, 1);
}

// ---- Service intrinsics ------------------------------------------------

#[derive(Default)]
struct Recorder {
    events: Arc<Mutex<Vec<String>>>,
    deny: bool,
}

impl DynamicServices for Recorder {
    fn security_check(&mut self, sid: i32, perm: i32) -> SecurityDecision {
        self.events
            .lock()
            .unwrap()
            .push(format!("check {sid} {perm}"));
        if self.deny {
            SecurityDecision::Deny { cost_cycles: 11 }
        } else {
            SecurityDecision::Allow { cost_cycles: 7 }
        }
    }

    fn audit_event(&mut self, site: i32, kind: AuditKind) {
        self.events
            .lock()
            .unwrap()
            .push(format!("audit {site} {kind:?}"));
    }

    fn profile_count(&mut self, site: i32) {
        self.events.lock().unwrap().push(format!("count {site}"));
    }

    fn first_use(&mut self, site: i32) {
        self.events.lock().unwrap().push(format!("first {site}"));
    }
}

/// t/Svc.poke()I: Enforcer.check(3, 4); Audit.enter(5); Profiler.count(6);
/// return 7 — the shape the rewriter injects into served classes.
fn service_class() -> ClassFile {
    let mut cf = ClassBuilder::new("t/Svc").build();
    let check = cf
        .pool
        .methodref("dvm/rt/Enforcer", "check", "(II)V")
        .unwrap();
    let enter = cf.pool.methodref("dvm/rt/Audit", "enter", "(I)V").unwrap();
    let count = cf
        .pool
        .methodref("dvm/rt/Profiler", "count", "(I)V")
        .unwrap();
    let mut a = Asm::new(1);
    a.iconst(3).iconst(4).invokestatic(check);
    a.iconst(5).invokestatic(enter);
    a.iconst(6).invokestatic(count);
    a.iconst(7).ret_val(Kind::Int);
    push_method(&mut cf, "poke", "()I", a);
    cf
}

fn vm_with_services(cf: &ClassFile, services: Recorder) -> Vm {
    let mut cf2 = cf.clone();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf2).unwrap();
    let mut vm = Vm::with_services(Box::new(provider), Box::new(services)).unwrap();
    let (ir, _) = compile_class(cf).unwrap();
    // The pass pipeline must have inlined every injected service call.
    let poke = ir.methods.iter().find(|f| f.name == "poke").unwrap();
    assert!(
        poke.insns
            .iter()
            .any(|i| matches!(i, RInsn::Service { .. })),
        "service calls should be inlined as intrinsics"
    );
    assert!(
        !poke.insns.iter().any(|i| matches!(i, RInsn::Invoke { .. })),
        "no residual invokes expected"
    );
    vm.install_ir(ir);
    vm
}

#[test]
fn service_intrinsics_reach_hooks_from_compiled_code() {
    let cf = service_class();
    let events = Arc::new(Mutex::new(Vec::new()));
    let rec = Recorder {
        events: events.clone(),
        deny: false,
    };
    let mut vm = vm_with_services(&cf, rec);
    let out = vm.run_static("t/Svc", "poke", "()I", vec![]).unwrap();
    assert_eq!(int_of(out), 7);
    assert_eq!(
        *events.lock().unwrap(),
        vec!["check 3 4", "audit 5 Enter", "count 6"]
    );
    assert_eq!(vm.stats.security_checks, 1);
    assert_eq!(vm.exec.stats.ir_invocations, 1);
}

#[test]
fn denied_check_throws_security_exception_from_compiled_code() {
    let cf = service_class();
    let events = Arc::new(Mutex::new(Vec::new()));
    let rec = Recorder {
        events: events.clone(),
        deny: true,
    };
    let mut vm = vm_with_services(&cf, rec);
    match vm.run_static("t/Svc", "poke", "()I", vec![]).unwrap() {
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            assert_eq!(class, "java/lang/SecurityException");
            assert_eq!(msg, "sid 3 denied permission 4");
        }
        other => panic!("expected exception, got {other:?}"),
    }
    // The deny happened at the first intrinsic; nothing after it ran.
    assert_eq!(*events.lock().unwrap(), vec!["check 3 4"]);
}

#[test]
fn late_install_rebinds_a_loaded_class() {
    let cf = loop_class();
    let mut vm = vm_for(&cf);
    let first = vm
        .run_static("t/Loop", "sum", "(I)I", vec![Value::Int(10)])
        .unwrap();
    assert_eq!(int_of(first), 45);
    assert_eq!(vm.exec.stats.ir_invocations, 0);

    // Install after the class is linked: binds immediately, and the next
    // dispatch prefers the compiled tier.
    let (ir, _) = compile_class(&cf).unwrap();
    vm.install_ir(ir);
    assert!(vm.exec.stats.installed_methods >= 1);
    let second = vm
        .run_static("t/Loop", "sum", "(I)I", vec![Value::Int(10)])
        .unwrap();
    assert_eq!(int_of(second), 45);
    assert_eq!(vm.exec.stats.ir_invocations, 1);
}
