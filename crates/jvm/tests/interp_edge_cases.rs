//! Interpreter edge cases: stack-manipulation forms, numeric semantics
//! (NaN, shift masking, overflow wrapping), subroutines, and
//! multi-dimensional arrays.

use dvm_bytecode::insn::{AKind, ArithOp, Insn, Kind, LogicOp, NumKind, NumType, ShiftOp};
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_jvm::{Completion, MapProvider, Value, Vm};

fn class_with(
    name: &str,
    method: &str,
    desc: &str,
    insns: Vec<Insn>,
    max_locals: u16,
) -> ClassFile {
    let mut cf = ClassBuilder::new(name).build();
    let code = dvm_bytecode::Code {
        insns,
        handlers: vec![],
        max_locals,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8(method).unwrap();
    let d = cf.pool.utf8(desc).unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    cf
}

fn run(cf: ClassFile, method: &str, desc: &str, args: Vec<Value>) -> Completion {
    let mut cf = cf;
    let name = cf.name().unwrap().to_owned();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    vm.run_static(&name, method, desc, args).unwrap()
}

fn run_int(cf: ClassFile, method: &str, desc: &str, args: Vec<Value>) -> i32 {
    match run(cf, method, desc, args) {
        Completion::Normal(Some(Value::Int(v))) => v,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn dup_x1_rearranges_stack() {
    // push 1, 2; dup_x1 -> [2, 1, 2]; sub -> [2, -1]; sub -> 3
    let v = run_int(
        class_with(
            "t/DupX1",
            "f",
            "()I",
            vec![
                Insn::IConst(1),
                Insn::IConst(2),
                Insn::DupX1,
                Insn::Arith(NumKind::Int, ArithOp::Sub),
                Insn::Arith(NumKind::Int, ArithOp::Sub),
                Insn::Return(Some(Kind::Int)),
            ],
            0,
        ),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 3); // 2 - (1 - 2)
}

#[test]
fn dup2_duplicates_long() {
    // lconst_1; dup2; ladd -> 2; l2i
    let v = run_int(
        class_with(
            "t/Dup2",
            "f",
            "()I",
            vec![
                Insn::LConst(1),
                Insn::Dup2,
                Insn::Arith(NumKind::Long, ArithOp::Add),
                Insn::Convert(NumType::Long, NumType::Int),
                Insn::Return(Some(Kind::Int)),
            ],
            0,
        ),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 2);
}

#[test]
fn dup2_x2_handles_mixed_categories() {
    // Stack [long 5, int 1, int 2] -> dup2_x2 -> [1, 2, long 5, 1, 2].
    // Then: iadd (1+2=3), i2l, ladd (5+3=8), l2i, iadd (wait...) — keep it
    // simple: pop the duplicated pair and verify the underlying long moved.
    let v = run_int(
        class_with(
            "t/Dup2X2",
            "f",
            "()I",
            vec![
                Insn::LConst(1),                            // [1L]
                Insn::IConst(2),                            // [1L, 2]
                Insn::IConst(3),                            // [1L, 2, 3]
                Insn::Dup2X2,                               // [2, 3, 1L, 2, 3]
                Insn::Pop,                                  // [2, 3, 1L, 2]
                Insn::Pop,                                  // [2, 3, 1L]
                Insn::Convert(NumType::Long, NumType::Int), // [2, 3, 1]
                Insn::Arith(NumKind::Int, ArithOp::Add),    // [2, 4]
                Insn::Arith(NumKind::Int, ArithOp::Mul),    // [8]
                Insn::Return(Some(Kind::Int)),
            ],
            0,
        ),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 8);
}

#[test]
fn shift_amounts_are_masked() {
    // 1 << 33 == 1 << 1 == 2 for int.
    let v = run_int(
        class_with(
            "t/Shift",
            "f",
            "()I",
            vec![
                Insn::IConst(1),
                Insn::IConst(33),
                Insn::Shift(NumKind::Int, ShiftOp::Shl),
                Insn::Return(Some(Kind::Int)),
            ],
            0,
        ),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 2);
}

#[test]
fn ushr_is_logical() {
    let v = run_int(
        class_with(
            "t/Ushr",
            "f",
            "()I",
            vec![
                Insn::IConst(-1),
                Insn::IConst(28),
                Insn::Shift(NumKind::Int, ShiftOp::Ushr),
                Insn::Return(Some(Kind::Int)),
            ],
            0,
        ),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 15);
}

#[test]
fn int_overflow_wraps() {
    let v = run_int(
        class_with(
            "t/Wrap",
            "f",
            "(I)I",
            vec![
                Insn::Load(Kind::Int, 0),
                Insn::Load(Kind::Int, 0),
                Insn::Arith(NumKind::Int, ArithOp::Add),
                Insn::Return(Some(Kind::Int)),
            ],
            1,
        ),
        "f",
        "(I)I",
        vec![Value::Int(i32::MAX)],
    );
    assert_eq!(v, -2);
}

#[test]
fn fcmpg_and_fcmpl_differ_on_nan() {
    for (g, expected) in [(true, 1), (false, -1)] {
        let v = run_int(
            class_with(
                "t/NaN",
                "f",
                "(F)I",
                vec![
                    Insn::Load(Kind::Float, 0),
                    Insn::Load(Kind::Float, 0),
                    Insn::Arith(NumKind::Float, ArithOp::Sub), // NaN - stays NaN? No: x - x
                    Insn::Load(Kind::Float, 0),
                    Insn::FCmp(g),
                    Insn::Return(Some(Kind::Int)),
                ],
                1,
            ),
            "f",
            "(F)I",
            vec![Value::Float(f32::NAN)],
        );
        assert_eq!(v, expected, "fcmp{}", if g { "g" } else { "l" });
    }
}

#[test]
fn long_division_by_zero_raises() {
    let out = run(
        class_with(
            "t/LDiv",
            "f",
            "()V",
            vec![
                Insn::LConst(1),
                Insn::LConst(0),
                Insn::Arith(NumKind::Long, ArithOp::Div),
                Insn::Pop2,
                Insn::Return(None),
            ],
            0,
        ),
        "f",
        "()V",
        vec![],
    );
    assert!(matches!(out, Completion::Exception(_)));
}

#[test]
fn i2b_sign_extends_and_i2c_zero_extends() {
    let cases = [
        (NumType::Byte, 0x1FF, -1),
        (NumType::Char, -1, 0xFFFF),
        (NumType::Short, 0x1_8000, -32768),
    ];
    for (to, input, expected) in cases {
        let v = run_int(
            class_with(
                "t/Conv",
                "f",
                "(I)I",
                vec![
                    Insn::Load(Kind::Int, 0),
                    Insn::Convert(NumType::Int, to),
                    Insn::Return(Some(Kind::Int)),
                ],
                1,
            ),
            "f",
            "(I)I",
            vec![Value::Int(input)],
        );
        assert_eq!(v, expected, "{to:?}");
    }
}

#[test]
fn d2i_saturates() {
    let cases = [
        (f64::INFINITY, i32::MAX),
        (f64::NEG_INFINITY, i32::MIN),
        (f64::NAN, 0),
    ];
    for (input, expected) in cases {
        let v = run_int(
            class_with(
                "t/D2I",
                "f",
                "(D)I",
                vec![
                    Insn::Load(Kind::Double, 0),
                    Insn::Convert(NumType::Double, NumType::Int),
                    Insn::Return(Some(Kind::Int)),
                ],
                2,
            ),
            "f",
            "(D)I",
            vec![Value::Double(input)],
        );
        assert_eq!(v, expected, "d2i({input})");
    }
}

#[test]
fn ret_returns_to_jsr_successor() {
    // Proper subroutine: main pushes 5, calls sub twice, sub adds 3.
    let insns = vec![
        Insn::IConst(5),                         // 0  [5]
        Insn::Jsr(6),                            // 1  -> sub with [5, ra]
        Insn::Jsr(6),                            // 2  -> sub again
        Insn::IConst(1),                         // 3  [11, 1]
        Insn::Arith(NumKind::Int, ArithOp::Add), // 4 [12]
        Insn::Return(Some(Kind::Int)),           // 5
        // subroutine:
        Insn::Store(Kind::Ref, 0),               // 6: store return address
        Insn::IConst(3),                         // 7
        Insn::Arith(NumKind::Int, ArithOp::Add), // 8
        Insn::Ret(0),                            // 9
    ];
    let v = run_int(
        class_with("t/Ret", "f", "()I", insns, 1),
        "f",
        "()I",
        vec![],
    );
    assert_eq!(v, 12); // 5 + 3 + 3 + 1
}

#[test]
fn multianewarray_allocates_nested() {
    // int[3][4]: arr[2][3] = 7; return arr[2][3] + arr.length + arr[0].length
    let mut cf = ClassBuilder::new("t/Multi").build();
    let arr_cls = cf.pool.class("[[I").unwrap();
    let insns = vec![
        Insn::IConst(3),
        Insn::IConst(4),
        Insn::MultiANewArray(arr_cls, 2),
        Insn::Store(Kind::Ref, 0),
        // arr[2][3] = 7
        Insn::Load(Kind::Ref, 0),
        Insn::IConst(2),
        Insn::ArrayLoad(AKind::Ref),
        Insn::IConst(3),
        Insn::IConst(7),
        Insn::ArrayStore(AKind::Int),
        // sum
        Insn::Load(Kind::Ref, 0),
        Insn::IConst(2),
        Insn::ArrayLoad(AKind::Ref),
        Insn::IConst(3),
        Insn::ArrayLoad(AKind::Int),
        Insn::Load(Kind::Ref, 0),
        Insn::ArrayLength,
        Insn::Arith(NumKind::Int, ArithOp::Add),
        Insn::Load(Kind::Ref, 0),
        Insn::IConst(0),
        Insn::ArrayLoad(AKind::Ref),
        Insn::ArrayLength,
        Insn::Arith(NumKind::Int, ArithOp::Add),
        Insn::Return(Some(Kind::Int)),
    ];
    let code = dvm_bytecode::Code {
        insns,
        handlers: vec![],
        max_locals: 1,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("()I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    assert_eq!(run_int(cf, "f", "()I", vec![]), 7 + 3 + 4);
}

#[test]
fn lookupswitch_finds_sparse_keys() {
    let insns = vec![
        Insn::Load(Kind::Int, 0),
        Insn::LookupSwitch {
            default: 6,
            pairs: vec![(-1000, 2), (0, 4), (99999, 8)],
        },
        Insn::IConst(1), // 2
        Insn::Return(Some(Kind::Int)),
        Insn::IConst(2), // 4
        Insn::Return(Some(Kind::Int)),
        Insn::IConst(3), // 6 (default)
        Insn::Return(Some(Kind::Int)),
        Insn::IConst(4), // 8
        Insn::Return(Some(Kind::Int)),
    ];
    let cf = class_with("t/Lookup", "f", "(I)I", insns, 1);
    assert_eq!(run_int(cf.clone(), "f", "(I)I", vec![Value::Int(-1000)]), 1);
    assert_eq!(run_int(cf.clone(), "f", "(I)I", vec![Value::Int(0)]), 2);
    assert_eq!(run_int(cf.clone(), "f", "(I)I", vec![Value::Int(5)]), 3);
    assert_eq!(run_int(cf, "f", "(I)I", vec![Value::Int(99999)]), 4);
}

#[test]
fn logic_ops_on_long() {
    let mut cf = ClassBuilder::new("t/LongLogic").build();
    let big = cf.pool.long(0x0F0F_0F0F_0F0F_0F0F).unwrap();
    let mask = cf.pool.long(0x00FF_00FF_00FF_00FF).unwrap();
    let insns = vec![
        Insn::Ldc2(big),
        Insn::Ldc2(mask),
        Insn::Logic(NumKind::Long, LogicOp::And),
        Insn::Convert(NumType::Long, NumType::Int),
        Insn::Return(Some(Kind::Int)),
    ];
    let code = dvm_bytecode::Code {
        insns,
        handlers: vec![],
        max_locals: 0,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("()I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    assert_eq!(run_int(cf, "f", "()I", vec![]), 0x000F_000F);
}

#[test]
fn null_monitor_raises_npe() {
    let out = run(
        class_with(
            "t/Mon",
            "f",
            "()V",
            vec![Insn::AConstNull, Insn::MonitorEnter, Insn::Return(None)],
            0,
        ),
        "f",
        "()V",
        vec![],
    );
    assert!(matches!(out, Completion::Exception(_)));
}

#[test]
fn deep_recursion_overflows_cleanly() {
    let mut cf = ClassBuilder::new("t/Deep").build();
    let me = cf.pool.methodref("t/Deep", "f", "(I)I").unwrap();
    let insns = vec![
        Insn::Load(Kind::Int, 0),
        Insn::IConst(1),
        Insn::Arith(NumKind::Int, ArithOp::Add),
        Insn::InvokeStatic(me),
        Insn::Return(Some(Kind::Int)),
    ];
    let code = dvm_bytecode::Code {
        insns,
        handlers: vec![],
        max_locals: 1,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("(I)I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    let out = vm.run_static("t/Deep", "f", "(I)I", vec![Value::Int(0)]);
    assert!(matches!(out, Err(dvm_jvm::VmError::StackOverflow)));
}
