//! End-to-end interpreter tests: assemble real class files, load them
//! through the provider, and execute them.

use dvm_bytecode::asm::Asm;
use dvm_bytecode::insn::{AKind, ICond, Kind};
use dvm_classfile::{AccessFlags, ClassBuilder, ClassFile, CodeAttribute};
use dvm_jvm::{Completion, MapProvider, Value, Vm};

fn ps() -> AccessFlags {
    AccessFlags::PUBLIC | AccessFlags::STATIC
}

fn code(cf: &ClassFile, a: Asm) -> CodeAttribute {
    a.finish().unwrap().encode(&cf.pool).unwrap()
}

/// Builds a class around a single static method by letting the caller
/// populate the pool first, then assemble.
fn single_method_class(
    name: &str,
    method: &str,
    descriptor: &str,
    build: impl FnOnce(&mut dvm_classfile::ConstPool, &mut Asm),
) -> ClassFile {
    let mut cf = ClassBuilder::new(name).build();
    let mut a = Asm::new(8);
    build(&mut cf.pool, &mut a);
    let attr = code(&cf, a);
    let name_index = cf.pool.utf8(method).unwrap();
    let desc_index = cf.pool.utf8(descriptor).unwrap();
    cf.methods.push(dvm_classfile::MemberInfo {
        access: ps(),
        name_index,
        descriptor_index: desc_index,
        attributes: vec![dvm_classfile::Attribute::Code(attr)],
    });
    cf
}

fn run_int(cf: ClassFile, method: &str, desc: &str, args: Vec<Value>) -> i32 {
    let mut cf = cf;
    let name = cf.name().unwrap().to_owned();
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_static(&name, method, desc, args).unwrap() {
        Completion::Normal(Some(Value::Int(v))) => v,
        other => panic!("expected int result, got {other:?}"),
    }
}

#[test]
fn loop_sums_integers() {
    // sum = 0; for i in 0..n { sum += i }; return sum
    let cf = single_method_class("t/Loop", "sum", "(I)I", |_pool, a| {
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1); // sum
        a.iconst(0).istore(2); // i
        a.place(top);
        a.iload(2).iload(0).if_icmp(ICond::Ge, done);
        a.iload(1).iload(2).iadd().istore(1);
        a.iinc(2, 1).goto(top);
        a.place(done);
        a.iload(1).ret_val(Kind::Int);
    });
    assert_eq!(run_int(cf, "sum", "(I)I", vec![Value::Int(10)]), 45);
}

#[test]
fn recursion_computes_fibonacci() {
    let mut cf = ClassBuilder::new("t/Fib").build();
    let m = cf.pool.methodref("t/Fib", "fib", "(I)I").unwrap();
    let mut a = Asm::new(1);
    let base = a.new_label();
    a.iload(0).iconst(2).if_icmp(ICond::Lt, base);
    a.iload(0).iconst(1).isub().invokestatic(m);
    a.iload(0).iconst(2).isub().invokestatic(m);
    a.iadd().ret_val(Kind::Int);
    a.place(base);
    a.iload(0).ret_val(Kind::Int);
    let attr = code(&cf, a);
    let name_index = cf.pool.utf8("fib").unwrap();
    let desc_index = cf.pool.utf8("(I)I").unwrap();
    cf.methods.push(dvm_classfile::MemberInfo {
        access: ps(),
        name_index,
        descriptor_index: desc_index,
        attributes: vec![dvm_classfile::Attribute::Code(attr)],
    });
    assert_eq!(run_int(cf, "fib", "(I)I", vec![Value::Int(15)]), 610);
}

#[test]
fn division_by_zero_throws_and_is_caught() {
    // try { return 1/arg } catch (ArithmeticException e) { return -1 }
    let mut cf = ClassBuilder::new("t/Div").build();
    let exc = cf.pool.class("java/lang/ArithmeticException").unwrap();
    let mut a = Asm::new(1);
    let start = a.new_label();
    let end = a.new_label();
    let handler = a.new_label();
    a.place(start);
    a.iconst(1)
        .iload(0)
        .arith(dvm_bytecode::NumKind::Int, dvm_bytecode::ArithOp::Div);
    a.place(end);
    a.ret_val(Kind::Int);
    a.place(handler);
    a.pop(); // discard exception
    a.iconst(-1).ret_val(Kind::Int);
    a.handler(start, end, handler, exc);
    let attr = code(&cf, a);
    let name_index = cf.pool.utf8("div").unwrap();
    let desc_index = cf.pool.utf8("(I)I").unwrap();
    cf.methods.push(dvm_classfile::MemberInfo {
        access: ps(),
        name_index,
        descriptor_index: desc_index,
        attributes: vec![dvm_classfile::Attribute::Code(attr)],
    });
    assert_eq!(run_int(cf.clone(), "div", "(I)I", vec![Value::Int(4)]), 0);
    assert_eq!(run_int(cf, "div", "(I)I", vec![Value::Int(0)]), -1);
}

#[test]
fn uncaught_exception_escapes_with_class_and_message() {
    let cf = single_method_class("t/Boom", "boom", "()V", |pool, a| {
        let npe = pool.class("java/lang/NullPointerException").unwrap();
        let ctor = pool
            .methodref(
                "java/lang/NullPointerException",
                "<init>",
                "(Ljava/lang/String;)V",
            )
            .unwrap();
        let msg = pool.string("kaboom").unwrap();
        a.new_object(npe)
            .dup()
            .ldc(msg)
            .invokespecial(ctor)
            .athrow();
    });
    let mut cf = cf;
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_static("t/Boom", "boom", "()V", vec![]).unwrap() {
        Completion::Exception(e) => {
            let (class, msg) = vm.exception_message(e).unwrap();
            assert_eq!(class, "java/lang/NullPointerException");
            assert_eq!(msg, "kaboom");
        }
        other => panic!("expected exception, got {other:?}"),
    }
}

#[test]
fn objects_fields_and_virtual_dispatch() {
    // class Animal { int legs() { return 4; } }
    // class Bird extends Animal { int legs() { return 2; } }
    // static test: new Bird() upcast to Animal, call legs() -> 2
    let mut animal = ClassBuilder::new("t/Animal").build();
    {
        let init = animal
            .pool
            .methodref("java/lang/Object", "<init>", "()V")
            .unwrap();
        let mut a = Asm::new(1);
        a.aload(0).invokespecial(init).ret();
        let attr = code(&animal, a);
        let n = animal.pool.utf8("<init>").unwrap();
        let d = animal.pool.utf8("()V").unwrap();
        animal.methods.push(dvm_classfile::MemberInfo {
            access: AccessFlags::PUBLIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
        let mut a = Asm::new(1);
        a.iconst(4).ret_val(Kind::Int);
        let attr = code(&animal, a);
        let n = animal.pool.utf8("legs").unwrap();
        let d = animal.pool.utf8("()I").unwrap();
        animal.methods.push(dvm_classfile::MemberInfo {
            access: AccessFlags::PUBLIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
    }
    let mut bird = ClassBuilder::new("t/Bird").super_class("t/Animal").build();
    {
        let init = bird.pool.methodref("t/Animal", "<init>", "()V").unwrap();
        let mut a = Asm::new(1);
        a.aload(0).invokespecial(init).ret();
        let attr = code(&bird, a);
        let n = bird.pool.utf8("<init>").unwrap();
        let d = bird.pool.utf8("()V").unwrap();
        bird.methods.push(dvm_classfile::MemberInfo {
            access: AccessFlags::PUBLIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
        let mut a = Asm::new(1);
        a.iconst(2).ret_val(Kind::Int);
        let attr = code(&bird, a);
        let n = bird.pool.utf8("legs").unwrap();
        let d = bird.pool.utf8("()I").unwrap();
        bird.methods.push(dvm_classfile::MemberInfo {
            access: AccessFlags::PUBLIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
    }
    let mut main = ClassBuilder::new("t/Main").build();
    {
        let bird_cls = main.pool.class("t/Bird").unwrap();
        let bird_init = main.pool.methodref("t/Bird", "<init>", "()V").unwrap();
        let legs = main.pool.methodref("t/Animal", "legs", "()I").unwrap();
        let mut a = Asm::new(1);
        a.new_object(bird_cls).dup().invokespecial(bird_init);
        a.invokevirtual(legs).ret_val(Kind::Int);
        let attr = code(&main, a);
        let n = main.pool.utf8("test").unwrap();
        let d = main.pool.utf8("()I").unwrap();
        main.methods.push(dvm_classfile::MemberInfo {
            access: ps(),
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
    }
    let mut provider = MapProvider::new();
    provider.insert_class(&mut animal).unwrap();
    provider.insert_class(&mut bird).unwrap();
    provider.insert_class(&mut main).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_static("t/Main", "test", "()I", vec![]).unwrap() {
        Completion::Normal(Some(Value::Int(v))) => assert_eq!(v, 2),
        other => panic!("expected 2, got {other:?}"),
    }
    // Lazy loading: Animal and Bird were fetched on demand.
    let names: Vec<&str> = vm
        .stats
        .classes_loaded
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(names.contains(&"t/Bird"));
    assert!(names.contains(&"t/Animal"));
}

#[test]
fn arrays_store_and_load() {
    let cf = single_method_class("t/Arr", "test", "()I", |_pool, a| {
        // int[] v = new int[5]; v[3] = 42; return v[3] + v.length
        a.iconst(5).newarray(AKind::Int).astore(1);
        a.aload(1).iconst(3).iconst(42).array_store(AKind::Int);
        a.aload(1).iconst(3).array_load(AKind::Int);
        a.aload(1).arraylength();
        a.iadd().ret_val(Kind::Int);
    });
    assert_eq!(run_int(cf, "test", "()I", vec![]), 47);
}

#[test]
fn array_bounds_violation_throws() {
    let cf = single_method_class("t/Oob", "test", "()I", |pool, a| {
        let exc = pool
            .class("java/lang/ArrayIndexOutOfBoundsException")
            .unwrap();
        let start = a.new_label();
        let end = a.new_label();
        let handler = a.new_label();
        a.place(start);
        a.iconst(2).newarray(AKind::Int).astore(1);
        a.aload(1).iconst(9).array_load(AKind::Int);
        a.place(end);
        a.ret_val(Kind::Int);
        a.place(handler);
        a.pop().iconst(-7).ret_val(Kind::Int);
        a.handler(start, end, handler, exc);
    });
    assert_eq!(run_int(cf, "test", "()I", vec![]), -7);
}

#[test]
fn static_initializer_runs_once_before_use() {
    // class S { static int x; static { x = 11; } static int get() { return x; } }
    let mut cf = ClassBuilder::new("t/S")
        .field(AccessFlags::STATIC, "x", "I")
        .build();
    {
        let xref = cf.pool.fieldref("t/S", "x", "I").unwrap();
        let mut a = Asm::new(0);
        a.iconst(11).putstatic(xref).ret();
        let attr = code(&cf, a);
        let n = cf.pool.utf8("<clinit>").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(dvm_classfile::MemberInfo {
            access: AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
        let xref2 = cf.pool.fieldref("t/S", "x", "I").unwrap();
        let mut a = Asm::new(0);
        a.getstatic(xref2).ret_val(Kind::Int);
        let attr = code(&cf, a);
        let n = cf.pool.utf8("get").unwrap();
        let d = cf.pool.utf8("()I").unwrap();
        cf.methods.push(dvm_classfile::MemberInfo {
            access: ps(),
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
    }
    assert_eq!(run_int(cf, "get", "()I", vec![]), 11);
}

#[test]
fn strings_and_println_via_system_out() {
    let cf = single_method_class("t/Hello", "main", "()V", |pool, a| {
        let out = pool
            .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
            .unwrap();
        let println = pool
            .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        let msg = pool.string("hello world").unwrap();
        a.getstatic(out).ldc(msg).invokevirtual(println).ret();
    });
    let mut cf = cf;
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    let out = vm.run_main("t/Hello").unwrap();
    assert_eq!(out, Completion::Normal(None));
    assert_eq!(vm.stdout, vec!["hello world"]);
}

#[test]
fn long_arithmetic_and_comparison() {
    let cf = single_method_class("t/Longs", "test", "()I", |pool, a| {
        let big = pool.long(1 << 40).unwrap();
        let yes = a.new_label();
        a.ldc2(big).ldc2(big).raw(dvm_bytecode::Insn::Arith(
            dvm_bytecode::NumKind::Long,
            dvm_bytecode::ArithOp::Add,
        ));
        a.lconst(0).raw(dvm_bytecode::Insn::LCmp);
        a.if_(ICond::Gt, yes);
        a.iconst(0).ret_val(Kind::Int);
        a.place(yes);
        a.iconst(1).ret_val(Kind::Int);
    });
    assert_eq!(run_int(cf, "test", "()I", vec![]), 1);
}

#[test]
fn gc_reclaims_garbage_during_execution() {
    // Allocate many dead arrays in a loop; heap must not overflow.
    let cf = single_method_class("t/Gc", "churn", "(I)I", |_pool, a| {
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.place(top);
        a.iload(1).iload(0).if_icmp(ICond::Ge, done);
        // new int[65536], immediately dropped
        a.iconst(16384).iconst(4).imul().newarray(AKind::Int).pop();
        a.iinc(1, 1).goto(top);
        a.place(done);
        a.iload(1).ret_val(Kind::Int);
    });
    let mut cf = cf;
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    // 3000 iterations * 256 KiB = ~750 MB allocated; heap limit is 64 MB,
    // so this passes only if the collector reclaims garbage.
    match vm
        .run_static("t/Gc", "churn", "(I)I", vec![Value::Int(3000)])
        .unwrap()
    {
        Completion::Normal(Some(Value::Int(v))) => assert_eq!(v, 3000),
        other => panic!("unexpected {other:?}"),
    }
    assert!(vm.heap.stats().collections > 0, "collector should have run");
}

#[test]
fn fuel_limit_stops_runaway_execution() {
    let cf = single_method_class("t/Spin", "spin", "()V", |_pool, a| {
        let top = a.new_label();
        a.place(top);
        a.goto(top);
    });
    let mut cf = cf;
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    vm.fuel = Some(10_000);
    assert!(matches!(
        vm.run_static("t/Spin", "spin", "()V", vec![]),
        Err(dvm_jvm::VmError::OutOfFuel)
    ));
}

#[test]
fn instruction_and_cycle_counters_advance() {
    let cf = single_method_class("t/Count", "f", "()I", |_pool, a| {
        a.iconst(1).iconst(2).iadd().ret_val(Kind::Int);
    });
    let mut cf = cf;
    let mut provider = MapProvider::new();
    provider.insert_class(&mut cf).unwrap();
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    vm.run_static("t/Count", "f", "()I", vec![]).unwrap();
    assert_eq!(vm.stats.instructions, 4);
    assert!(vm.stats.cycles >= 4);
}

#[test]
fn checkcast_and_instanceof() {
    let cf = single_method_class("t/Cast", "test", "()I", |pool, a| {
        let string_cls = pool.class("java/lang/String").unwrap();
        let obj_cls = pool.class("java/lang/Object").unwrap();
        let s = pool.string("x").unwrap();
        // ("x" instanceof String) + ("x" instanceof Object, via checkcast ok = +0)
        a.ldc(s).instanceof(string_cls);
        a.ldc(s).checkcast(obj_cls).pop();
        a.ret_val(Kind::Int);
    });
    assert_eq!(run_int(cf, "test", "()I", vec![]), 1);
}

#[test]
fn tableswitch_dispatches() {
    let cf = single_method_class("t/Sw", "pick", "(I)I", |_pool, a| {
        let c0 = a.new_label();
        let c1 = a.new_label();
        let c2 = a.new_label();
        let def = a.new_label();
        a.iload(0);
        a.tableswitch(0, &[c0, c1, c2], def);
        a.place(c0);
        a.iconst(100).ret_val(Kind::Int);
        a.place(c1);
        a.iconst(101).ret_val(Kind::Int);
        a.place(c2);
        a.iconst(102).ret_val(Kind::Int);
        a.place(def);
        a.iconst(-1).ret_val(Kind::Int);
    });
    assert_eq!(
        run_int(cf.clone(), "pick", "(I)I", vec![Value::Int(0)]),
        100
    );
    assert_eq!(
        run_int(cf.clone(), "pick", "(I)I", vec![Value::Int(2)]),
        102
    );
    assert_eq!(run_int(cf, "pick", "(I)I", vec![Value::Int(9)]), -1);
}
