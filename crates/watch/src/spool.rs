//! Durable journal spooling through `dvm-store`.
//!
//! The in-memory [`EventJournal`] ring forgets: eviction and restarts
//! both lose history. [`StoreSpool`] implements the journal's
//! [`JournalSpool`] trait over a crash-safe log-structured [`Store`]:
//! every event is appended under a zero-padded sequence key
//! (`evt/00000000000000000042`), so lexicographic key order *is*
//! sequence order, `events_after` is a sorted-key scan, and a restarted
//! node recovers its largest persisted sequence to keep numbering — and
//! tailing cursors — gap-free across the restart.

use std::path::Path;

use parking_lot::Mutex;

use dvm_store::{Store, StoreConfig};
use dvm_telemetry::events::{decode_events, encode_events};
use dvm_telemetry::{JournalEvent, JournalSpool};

/// Key prefix for journal events inside the spool store.
const KEY_PREFIX: &str = "evt/";

fn event_key(seq: u64) -> String {
    format!("{KEY_PREFIX}{seq:020}")
}

fn key_seq(key: &str) -> Option<u64> {
    key.strip_prefix(KEY_PREFIX)?.parse().ok()
}

/// A [`JournalSpool`] backed by a dedicated [`Store`] directory.
pub struct StoreSpool {
    store: Mutex<Store>,
}

impl std::fmt::Debug for StoreSpool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSpool").finish()
    }
}

impl StoreSpool {
    /// Opens (or creates) the spool at `dir`, replaying any existing
    /// log. Batched durability: the store groups fsyncs, and a crash
    /// loses at most the unsynced tail — the journal ring still holds
    /// recent events, so the overlap covers the gap in practice.
    pub fn open(dir: impl AsRef<Path>) -> Result<StoreSpool, dvm_store::StoreError> {
        let store = Store::open(dir, StoreConfig::default())?;
        Ok(StoreSpool {
            store: Mutex::new(store),
        })
    }

    /// Events persisted so far.
    pub fn len(&self) -> usize {
        self.store.lock().len()
    }

    /// True when no events have been persisted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl JournalSpool for StoreSpool {
    fn append(&self, event: &JournalEvent) {
        let bytes = encode_events(std::slice::from_ref(event));
        // Spooling is best-effort: a full disk must not take the
        // serving path down with it.
        let _ = self.store.lock().put(&event_key(event.seq), &bytes);
    }

    fn events_after(&self, after: u64, max: usize) -> Vec<JournalEvent> {
        let mut store = self.store.lock();
        let mut keys: Vec<String> = store
            .keys()
            .into_iter()
            .filter(|k| key_seq(k).is_some_and(|seq| seq > after))
            .collect();
        keys.sort();
        keys.truncate(max);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Ok(Some(bytes)) = store.get(&key) {
                if let Ok(batch) = decode_events(&bytes) {
                    out.extend(batch);
                }
            }
        }
        out
    }

    fn last_seq(&self) -> u64 {
        self.store
            .lock()
            .keys()
            .into_iter()
            .filter_map(|k| key_seq(&k))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_telemetry::{EventJournal, JournalKind};
    use std::sync::Arc;

    #[test]
    fn spooled_journal_survives_a_restart_without_seq_gaps() {
        let dir = std::env::temp_dir().join(format!("dvm-spool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        {
            let journal = EventJournal::new(4);
            journal.set_node("shard0");
            journal.set_spool(Arc::new(StoreSpool::open(&dir).unwrap()));
            for epoch in 0..6u64 {
                journal.record(epoch, JournalKind::RingEpoch { epoch });
            }
        }
        // "Restart": a new journal over the same directory continues
        // numbering, and a cursor from before the restart reads the
        // persisted prefix, then the live tail — no gap, no duplicate.
        let journal = EventJournal::new(4);
        journal.set_node("shard0");
        journal.set_spool(Arc::new(StoreSpool::open(&dir).unwrap()));
        journal.record(100, JournalKind::Note { text: "up".into() });
        let seqs: Vec<u64> = journal.events_after(2, 100).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (3..=7).collect::<Vec<_>>());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
