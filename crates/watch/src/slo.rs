//! SLO objectives and multi-window burn-rate alerting.
//!
//! An [`Objective`] declares a target over the sampled series — "p99
//! fetch latency under N ns", "error ratio under 0.1%". Each evaluation
//! computes a **burn rate** (observed / budget; 1.0 = exactly at
//! target) over two windows: a *fast* window that reacts in seconds and
//! a *slow* window that filters blips. The classic multi-window rule:
//!
//! - fast burning, slow not → **warning** (could be a spike);
//! - fast *and* slow burning → **firing** (sustained, page);
//! - both recovered from firing → **resolved**, then back to **ok** —
//!   so a consumer polling the state machine can observe that an
//!   incident ended, not just that it is currently absent.
//!
//! Every transition is returned to the caller (`dvm-watch` records it
//! into the event journal as an [`AlertTransition`] event).
//!
//! [`AlertTransition`]: dvm_telemetry::JournalKind::AlertTransition

use dvm_telemetry::events::{ALERT_FIRING, ALERT_OK, ALERT_RESOLVED, ALERT_WARNING};

use crate::series::Sampler;

/// What an objective measures.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveKind {
    /// Windowed p99 of `histogram` must stay under `threshold_ns`.
    LatencyP99 {
        /// Histogram metric name (e.g. `"cluster.fetch_ns"`).
        histogram: String,
        /// Burn 1.0 point: the SLO latency bound, nanoseconds.
        threshold_ns: u64,
    },
    /// Windowed `errors / total` must stay under `budget`.
    ErrorRatio {
        /// Error counter name.
        errors: String,
        /// Total counter name.
        total: String,
        /// Burn 1.0 point: the allowed error fraction (e.g. `0.001`).
        budget: f64,
    },
}

/// One declared service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Stable name, used in journal events and the exposition.
    pub name: String,
    /// What to measure.
    pub kind: ObjectiveKind,
    /// Fast (reactive) evaluation window, nanoseconds.
    pub fast_window_ns: u64,
    /// Slow (confirming) evaluation window, nanoseconds.
    pub slow_window_ns: u64,
    /// Burn rate at or above which a window counts as burning
    /// (1.0 = at the objective's budget exactly).
    pub burn_threshold: f64,
}

impl Objective {
    /// An error-ratio objective with a 1.0 burn threshold.
    pub fn error_ratio(
        name: &str,
        errors: &str,
        total: &str,
        budget: f64,
        fast_window_ns: u64,
        slow_window_ns: u64,
    ) -> Objective {
        Objective {
            name: name.to_owned(),
            kind: ObjectiveKind::ErrorRatio {
                errors: errors.to_owned(),
                total: total.to_owned(),
                budget,
            },
            fast_window_ns,
            slow_window_ns,
            burn_threshold: 1.0,
        }
    }

    /// A windowed-p99 latency objective with a 1.0 burn threshold.
    pub fn latency_p99(
        name: &str,
        histogram: &str,
        threshold_ns: u64,
        fast_window_ns: u64,
        slow_window_ns: u64,
    ) -> Objective {
        Objective {
            name: name.to_owned(),
            kind: ObjectiveKind::LatencyP99 {
                histogram: histogram.to_owned(),
                threshold_ns,
            },
            fast_window_ns,
            slow_window_ns,
            burn_threshold: 1.0,
        }
    }

    /// Burn rate over a window: observed / budget.
    fn burn(&self, sampler: &Sampler, window_ns: u64, now_ns: u64) -> f64 {
        match &self.kind {
            ObjectiveKind::LatencyP99 {
                histogram,
                threshold_ns,
            } => {
                let p99 = sampler.window_quantile(histogram, 0.99, window_ns, now_ns);
                p99 as f64 / (*threshold_ns).max(1) as f64
            }
            ObjectiveKind::ErrorRatio {
                errors,
                total,
                budget,
            } => {
                sampler.window_ratio(errors, total, window_ns, now_ns)
                    / budget.max(f64::MIN_POSITIVE)
            }
        }
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlertState {
    /// Within budget.
    #[default]
    Ok,
    /// Fast window burning; not yet confirmed by the slow window.
    Warning,
    /// Both windows burning: the objective is being violated.
    Firing,
    /// Was firing; burn has subsided. One clean evaluation later the
    /// alert returns to [`AlertState::Ok`].
    Resolved,
}

impl AlertState {
    /// The stable journal/exposition byte (`ALERT_*` constants).
    pub fn as_u8(self) -> u8 {
        match self {
            AlertState::Ok => ALERT_OK,
            AlertState::Warning => ALERT_WARNING,
            AlertState::Firing => ALERT_FIRING,
            AlertState::Resolved => ALERT_RESOLVED,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// Live alert status for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The objective being tracked.
    pub objective: Objective,
    /// Current lifecycle state.
    pub state: AlertState,
    /// When the current state was entered, nanoseconds.
    pub since_ns: u64,
    /// Burn rate over the fast window at the last evaluation.
    pub fast_burn: f64,
    /// Burn rate over the slow window at the last evaluation.
    pub slow_burn: f64,
}

impl Alert {
    /// Creates an alert in the `Ok` state.
    pub fn new(objective: Objective) -> Alert {
        Alert {
            objective,
            state: AlertState::Ok,
            since_ns: 0,
            fast_burn: 0.0,
            slow_burn: 0.0,
        }
    }

    /// Evaluates both windows at `now_ns` and steps the state machine.
    /// Returns `Some((from, to))` when the state changed.
    pub fn evaluate(&mut self, sampler: &Sampler, now_ns: u64) -> Option<(AlertState, AlertState)> {
        let o = &self.objective;
        self.fast_burn = o.burn(sampler, o.fast_window_ns, now_ns);
        self.slow_burn = o.burn(sampler, o.slow_window_ns, now_ns);
        let fast = self.fast_burn >= o.burn_threshold;
        let slow = self.slow_burn >= o.burn_threshold;
        let next = match self.state {
            AlertState::Ok | AlertState::Warning => {
                if fast && slow {
                    AlertState::Firing
                } else if fast {
                    AlertState::Warning
                } else {
                    AlertState::Ok
                }
            }
            AlertState::Firing => {
                if fast || slow {
                    AlertState::Firing
                } else {
                    AlertState::Resolved
                }
            }
            AlertState::Resolved => {
                if fast && slow {
                    AlertState::Firing
                } else {
                    AlertState::Ok
                }
            }
        };
        if next != self.state {
            let from = self.state;
            self.state = next;
            self.since_ns = now_ns;
            Some((from, next))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_telemetry::Registry;

    const SEC: u64 = 1_000_000_000;

    /// Drives an error-ratio alert through the full lifecycle with a
    /// deterministic fault schedule.
    #[test]
    fn error_ratio_alert_walks_ok_warning_firing_resolved_ok() {
        let reg = Registry::new();
        let errors = reg.counter("errs");
        let total = reg.counter("total");
        let mut sampler = Sampler::new(256);
        let mut alert = Alert::new(Objective::error_ratio(
            "error-ratio",
            "errs",
            "total",
            0.001,
            2 * SEC,
            10 * SEC,
        ));

        let mut now = 0;
        let step = |sampler: &mut Sampler, now: &mut u64, errs: u64, tot: u64| {
            *now += SEC;
            errors.add(errs);
            total.add(tot);
            sampler.tick(*now, reg.snapshot());
        };

        // Healthy traffic: stays ok.
        sampler.tick(now, reg.snapshot());
        for _ in 0..3 {
            step(&mut sampler, &mut now, 0, 100);
            assert!(alert.evaluate(&sampler, now).is_none());
            assert_eq!(alert.state, AlertState::Ok);
        }
        // Fault begins: fast window burns first (warning), then the
        // slow window confirms (firing).
        step(&mut sampler, &mut now, 50, 100);
        // Both windows immediately exceed a 0.1% budget here, so the
        // alert may jump straight to firing; accept either path but
        // require firing within the sustained fault.
        alert.evaluate(&sampler, now);
        for _ in 0..4 {
            step(&mut sampler, &mut now, 50, 100);
            alert.evaluate(&sampler, now);
        }
        assert_eq!(alert.state, AlertState::Firing);
        assert!(alert.fast_burn >= 1.0 && alert.slow_burn >= 1.0);
        // Fault clears: firing holds until *both* windows drain, then
        // resolved, then ok.
        let mut saw_resolved = false;
        for _ in 0..20 {
            step(&mut sampler, &mut now, 0, 100);
            if let Some((from, to)) = alert.evaluate(&sampler, now) {
                if to == AlertState::Resolved {
                    assert_eq!(from, AlertState::Firing);
                    saw_resolved = true;
                }
            }
        }
        assert!(saw_resolved);
        assert_eq!(alert.state, AlertState::Ok);
    }

    #[test]
    fn latency_objective_burns_on_slow_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        let mut sampler = Sampler::new(64);
        let mut alert = Alert::new(Objective::latency_p99(
            "p99",
            "lat",
            1_000_000,
            SEC,
            3 * SEC,
        ));
        sampler.tick(0, reg.snapshot());
        for _ in 0..100 {
            h.record(5_000_000);
        }
        sampler.tick(SEC, reg.snapshot());
        let change = alert.evaluate(&sampler, SEC);
        assert_eq!(change, Some((AlertState::Ok, AlertState::Firing)));
        assert!(alert.fast_burn > 1.0);
    }

    #[test]
    fn a_spike_only_warns() {
        let reg = Registry::new();
        let errors = reg.counter("errs");
        let total = reg.counter("total");
        let mut sampler = Sampler::new(256);
        let mut alert = Alert::new(Objective::error_ratio(
            "error-ratio",
            "errs",
            "total",
            0.1,
            SEC,
            30 * SEC,
        ));
        sampler.tick(0, reg.snapshot());
        // Long healthy history dilutes the slow window.
        let mut now = 0;
        for _ in 0..20 {
            now += SEC;
            total.add(1000);
            sampler.tick(now, reg.snapshot());
            alert.evaluate(&sampler, now);
        }
        // One bad second: 50% errors in the fast window, negligible in
        // the slow one.
        now += SEC;
        errors.add(500);
        total.add(1000);
        sampler.tick(now, reg.snapshot());
        alert.evaluate(&sampler, now);
        assert_eq!(alert.state, AlertState::Warning);
    }
}
