//! `dvm-watch`: continuous observability for a DVM fleet.
//!
//! `dvm-telemetry` answers "what are the totals right now?";
//! this crate answers the operator's actual questions — *how fast is it
//! moving, is it meeting its objectives, and what happened?* — with
//! four pieces layered on the registry:
//!
//! - [`series`] — a deterministic [`Sampler`] that diffs registry
//!   snapshots into bounded per-interval rings (rates, gauge history,
//!   windowed histogram deltas);
//! - [`slo`] — declared [`Objective`]s evaluated with multi-window
//!   burn rates through an ok → warning → firing → resolved state
//!   machine;
//! - [`expo`] — a from-scratch Prometheus-text exposition of all of
//!   it, served over the wire protocol's `METRICS_SCRAPE` frame and a
//!   no-deps HTTP/1.0 `GET /metrics` listener ([`http`]);
//! - [`spool`] — durable continuation of the telemetry event journal
//!   through `dvm-store`, so cursor tails survive restarts.
//!
//! The heart is [`Watch`]: attach one to a `Telemetry` plane, declare
//! objectives, and call [`Watch::tick_at`] on a clock — explicitly in
//! tests (deterministic replay), or via the background [`WatchDriver`]
//! in production.

pub mod expo;
pub mod http;
pub mod series;
pub mod slo;
pub mod spool;

pub use http::{http_get, MetricsHttp, ScrapeRender};
pub use series::Sampler;
pub use slo::{Alert, AlertState, Objective, ObjectiveKind};
pub use spool::StoreSpool;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dvm_telemetry::{JournalKind, Telemetry};

/// Tuning for a [`Watch`].
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Sampling interval for the background driver, nanoseconds.
    pub interval_ns: u64,
    /// Points retained per metric series.
    pub series_capacity: usize,
    /// Declared SLO objectives.
    pub objectives: Vec<Objective>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            interval_ns: 1_000_000_000,
            series_capacity: 512,
            objectives: Vec::new(),
        }
    }
}

struct WatchInner {
    sampler: Sampler,
    alerts: Vec<Alert>,
}

/// One node's continuous-observability plane: a sampler, its alert
/// state machines, and the exposition over both.
pub struct Watch {
    telemetry: Arc<Telemetry>,
    inner: Mutex<WatchInner>,
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watch")
            .field("node", &self.telemetry.node())
            .finish()
    }
}

impl Watch {
    /// Creates a watch over `telemetry` with `config`'s objectives.
    pub fn new(telemetry: Arc<Telemetry>, config: WatchConfig) -> Arc<Watch> {
        Arc::new(Watch {
            telemetry,
            inner: Mutex::new(WatchInner {
                sampler: Sampler::new(config.series_capacity),
                alerts: config.objectives.into_iter().map(Alert::new).collect(),
            }),
        })
    }

    /// The telemetry plane this watch samples.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One deterministic tick at `now_ns`: snapshot the registry, feed
    /// the sampler, evaluate every objective, and journal any alert
    /// transitions. This is the *entire* periodic work — the driver
    /// just calls it on a wall clock.
    pub fn tick_at(&self, now_ns: u64) {
        let snapshot = self.telemetry.registry().snapshot();
        let mut transitions = Vec::new();
        {
            let mut inner = self.inner.lock();
            inner.sampler.tick(now_ns, snapshot);
            let WatchInner { sampler, alerts } = &mut *inner;
            for alert in alerts.iter_mut() {
                if let Some((from, to)) = alert.evaluate(sampler, now_ns) {
                    transitions.push(JournalKind::AlertTransition {
                        objective: alert.objective.name.clone(),
                        from: from.as_u8(),
                        to: to.as_u8(),
                    });
                }
            }
        }
        // Journal outside the sampler lock: spools may hit disk.
        for kind in transitions {
            self.telemetry.journal().record(now_ns, kind);
        }
    }

    /// Current alert states (objective name, state, fast burn, slow
    /// burn).
    pub fn alerts(&self) -> Vec<Alert> {
        self.inner.lock().alerts.clone()
    }

    /// Events per second for a counter over `window_ns`, ending at the
    /// last tick.
    pub fn rate(&self, counter: &str, window_ns: u64) -> f64 {
        let inner = self.inner.lock();
        let now = inner.sampler.last_tick_ns();
        inner.sampler.window_rate(counter, window_ns, now)
    }

    /// Windowed quantile for a histogram, ending at the last tick.
    pub fn quantile(&self, histogram: &str, q: f64, window_ns: u64) -> u64 {
        let inner = self.inner.lock();
        let now = inner.sampler.last_tick_ns();
        inner.sampler.window_quantile(histogram, q, window_ns, now)
    }

    /// Renders the Prometheus-text exposition: raw cumulative metrics,
    /// recent per-counter rates (over the last ~minute of samples), and
    /// alert states.
    pub fn render(&self) -> String {
        let snapshot = self.telemetry.registry().snapshot();
        let inner = self.inner.lock();
        let now = inner.sampler.last_tick_ns();
        let window = 60_000_000_000;
        let rates: Vec<(String, f64)> = inner
            .sampler
            .counter_names()
            .into_iter()
            .map(|name| {
                let r = inner.sampler.window_rate(&name, window, now);
                (name, r)
            })
            .collect();
        expo::render(self.telemetry.node(), &snapshot, &rates, &inner.alerts)
    }
}

impl ScrapeRender for Watch {
    fn render_metrics(&self) -> String {
        self.render()
    }
}

/// Background ticker: samples a [`Watch`] every `interval_ns` on the
/// flight recorder's monotonic clock until shutdown.
pub struct WatchDriver {
    running: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WatchDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchDriver").finish()
    }
}

impl WatchDriver {
    /// Starts ticking `watch` every `interval_ns`.
    pub fn start(watch: Arc<Watch>, interval_ns: u64) -> WatchDriver {
        let running = Arc::new(AtomicBool::new(true));
        let flag = running.clone();
        let handle = std::thread::Builder::new()
            .name("dvm-watch".into())
            .spawn(move || {
                let interval = Duration::from_nanos(interval_ns.max(1_000_000));
                while flag.load(Ordering::SeqCst) {
                    watch.tick_at(watch.telemetry().recorder().now_ns());
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn watch driver");
        WatchDriver {
            running,
            handle: Some(handle),
        }
    }

    /// Stops the ticker and joins the thread.
    pub fn shutdown(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WatchDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn ticks_drive_alerts_into_the_journal() {
        let telemetry = Arc::new(Telemetry::new("shard0"));
        let errors = telemetry.registry().counter("proxy.errors");
        let total = telemetry.registry().counter("proxy.requests");
        let mut config = WatchConfig::default();
        config.objectives.push(Objective::error_ratio(
            "error-ratio",
            "proxy.errors",
            "proxy.requests",
            0.001,
            2 * SEC,
            6 * SEC,
        ));
        let watch = Watch::new(telemetry.clone(), config);

        watch.tick_at(0);
        let mut now = 0;
        for _ in 0..3 {
            now += SEC;
            total.add(100);
            watch.tick_at(now);
        }
        assert_eq!(watch.alerts()[0].state, AlertState::Ok);
        for _ in 0..6 {
            now += SEC;
            errors.add(40);
            total.add(100);
            watch.tick_at(now);
        }
        assert_eq!(watch.alerts()[0].state, AlertState::Firing);
        for _ in 0..12 {
            now += SEC;
            total.add(100);
            watch.tick_at(now);
        }
        assert_eq!(watch.alerts()[0].state, AlertState::Ok);

        // The journal saw the full lifecycle, in order.
        let events = telemetry.journal().events_after(0, 100);
        let states: Vec<(u8, u8)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                JournalKind::AlertTransition { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        use dvm_telemetry::events::{ALERT_FIRING, ALERT_OK, ALERT_RESOLVED};
        assert!(
            states.contains(&(ALERT_OK, ALERT_FIRING))
                || states.iter().any(|&(_, to)| to == ALERT_FIRING)
        );
        assert!(states.contains(&(ALERT_FIRING, ALERT_RESOLVED)));
        assert!(states.contains(&(ALERT_RESOLVED, ALERT_OK)));

        // And the exposition reflects the final state.
        let text = watch.render();
        assert!(text.contains("dvm_alert_state"));
        assert!(text.contains("objective=\"error-ratio\"} 0"));
    }

    #[test]
    fn rates_and_quantiles_are_queryable() {
        let telemetry = Arc::new(Telemetry::new("n"));
        let c = telemetry.registry().counter("reqs");
        let h = telemetry.registry().histogram("lat");
        let watch = Watch::new(telemetry, WatchConfig::default());
        watch.tick_at(0);
        c.add(50);
        for _ in 0..50 {
            h.record(10_000);
        }
        watch.tick_at(SEC);
        assert!((watch.rate("reqs", SEC) - 50.0).abs() < 1e-9);
        let p99 = watch.quantile("lat", 0.99, SEC);
        assert!(p99 >= 9_000 && p99 <= 11_000, "p99 {p99}");
    }
}
