//! Prometheus-text-format exposition, from scratch.
//!
//! Renders one node's observable state as the plain-text format every
//! scraper understands: `# TYPE` headers, `name{labels} value` samples,
//! histograms as summaries (`{quantile="..."}` series plus `_sum` and
//! `_count`), alerts as a numeric state gauge, and per-counter windowed
//! rates from the sampler. Metric names are sanitized into the
//! `[a-zA-Z_][a-zA-Z0-9_]*` charset and prefixed `dvm_`.

use dvm_telemetry::MetricsSnapshot;

use crate::slo::Alert;

/// Maps a registry metric name to a legal Prometheus name.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("dvm_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || (c == ':' && i > 0) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Renders the exposition for one node.
///
/// `rates` supplies `(metric name, events/sec)` pairs from the sampler
/// (empty when no sampler is running); `alerts` supplies the live SLO
/// state machines.
pub fn render(
    node: &str,
    snapshot: &MetricsSnapshot,
    rates: &[(String, f64)],
    alerts: &[Alert],
) -> String {
    let mut out = String::with_capacity(4096);
    let node_label = format!("node=\"{}\"", escape_label(node));

    for (name, value) in &snapshot.counters {
        let pname = sanitize(name);
        out.push_str(&format!("# TYPE {pname} counter\n"));
        out.push_str(&format!("{pname}{{{node_label}}} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let pname = sanitize(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        out.push_str(&format!("{pname}{{{node_label}}} {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let pname = sanitize(name);
        out.push_str(&format!("# TYPE {pname} summary\n"));
        for q in [0.5, 0.9, 0.99] {
            out.push_str(&format!(
                "{pname}{{{node_label},quantile=\"{q}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{pname}_sum{{{node_label}}} {}\n", h.sum));
        out.push_str(&format!("{pname}_count{{{node_label}}} {}\n", h.count));
    }
    if !rates.is_empty() {
        out.push_str("# TYPE dvm_rate_per_sec gauge\n");
        for (name, rate) in rates {
            out.push_str(&format!(
                "dvm_rate_per_sec{{{node_label},name=\"{}\"}} {}\n",
                escape_label(name),
                fmt_f64(*rate)
            ));
        }
    }
    if !alerts.is_empty() {
        out.push_str("# TYPE dvm_alert_state gauge\n");
        out.push_str("# TYPE dvm_alert_burn_fast gauge\n");
        out.push_str("# TYPE dvm_alert_burn_slow gauge\n");
        for a in alerts {
            let obj = escape_label(&a.objective.name);
            out.push_str(&format!(
                "dvm_alert_state{{{node_label},objective=\"{obj}\"}} {}\n",
                a.state.as_u8()
            ));
            out.push_str(&format!(
                "dvm_alert_burn_fast{{{node_label},objective=\"{obj}\"}} {}\n",
                fmt_f64(a.fast_burn)
            ));
            out.push_str(&format!(
                "dvm_alert_burn_slow{{{node_label},objective=\"{obj}\"}} {}\n",
                fmt_f64(a.slow_burn)
            ));
        }
    }
    out
}

/// A minimal exposition parser — enough for tests and the console to
/// read back `name{labels} value` samples. Returns `(name, labels,
/// value)` triples, skipping comments and blank lines; fails on lines
/// that fit neither shape.
pub fn parse(text: &str) -> Result<Vec<(String, String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad sample value: {line:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unclosed label set: {line:?}"))?;
                (name, labels)
            }
            None => (series, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name: {line:?}"));
        }
        out.push((name.to_owned(), labels.to_owned(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_telemetry::Registry;

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("proxy.requests").add(128);
        reg.gauge("net.server.live_connections").set(3);
        for v in [1_000u64, 2_000, 50_000] {
            reg.histogram("shard.serve_ns").record(v);
        }
        let text = render(
            "shard0",
            &reg.snapshot(),
            &[("proxy.requests".into(), 12.5)],
            &[],
        );
        let samples = parse(&text).unwrap();
        let get = |name: &str| {
            samples
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, v)| *v)
                .unwrap()
        };
        assert_eq!(get("dvm_proxy_requests"), 128.0);
        assert_eq!(get("dvm_net_server_live_connections"), 3.0);
        assert_eq!(get("dvm_shard_serve_ns_count"), 3.0);
        assert_eq!(get("dvm_shard_serve_ns_sum"), 53_000.0);
        assert!(samples
            .iter()
            .any(|(n, l, _)| n == "dvm_shard_serve_ns" && l.contains("quantile=\"0.99\"")));
        assert!(text.contains("node=\"shard0\""));
    }

    #[test]
    fn hostile_names_are_sanitized() {
        assert_eq!(sanitize("a.b-c d"), "dvm_a_b_c_d");
        assert_eq!(sanitize("9lives"), "dvm_9lives");
    }

    #[test]
    fn parser_rejects_junk() {
        assert!(parse("dvm_ok 1\nnot a line at all {").is_err());
        assert!(parse("dvm_x{a=\"b\" 1").is_err());
        assert!(parse("dvm_x nan-ish").is_err());
    }
}
