//! A tiny no-dependency HTTP/1.0 listener for `GET /metrics`.
//!
//! Just enough HTTP for a scraper: one thread accepts, reads the
//! request head, and answers `GET /metrics` with the rendered
//! exposition (anything else gets 404/405). Connections close after
//! one response (`Connection: close`), there is no keep-alive, no
//! chunking, no TLS — external tooling points at the port and polls.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Renders the scrape body on demand.
pub trait ScrapeRender: Send + Sync {
    /// The current exposition text.
    fn render_metrics(&self) -> String;
}

/// The listener handle: dropping it (or calling [`MetricsHttp::shutdown`])
/// stops the accept loop.
pub struct MetricsHttp {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsHttp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHttp")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsHttp {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `GET /metrics` from `source` until shutdown.
    pub fn bind(addr: &str, source: Arc<dyn ScrapeRender>) -> std::io::Result<MetricsHttp> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let flag = running.clone();
        let handle = std::thread::Builder::new()
            .name("dvm-metrics-http".into())
            .spawn(move || accept_loop(listener, source, flag))
            .expect("spawn metrics http thread");
        Ok(MetricsHttp {
            addr,
            running,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            // The accept is blocking; a throwaway connection wakes it so
            // it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, source: Arc<dyn ScrapeRender>, running: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // The shutdown wake-up connection lands here too; the
                // flag check drops it without serving.
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                // Scrapes are cheap; serve inline on the accept thread.
                let _ = serve_one(stream, &*source);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads the request head (bounded) and writes one response.
fn serve_one(mut stream: TcpStream, source: &dyn ScrapeRender) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the head, bounding total size so
    // a hostile peer cannot balloon memory.
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > 8192 {
            return respond(&mut stream, "400 Bad Request", "request head too large\n");
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = source.render_metrics();
            respond(&mut stream, "200 OK", &body)
        }
        _ => respond(&mut stream, "404 Not Found", "try /metrics\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal scrape client for tests and the console: one blocking
/// `GET path`, returning the body on a 200.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: dvm\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("non-200 response: {status}")));
    }
    Ok(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(&'static str);

    impl ScrapeRender for Fixed {
        fn render_metrics(&self) -> String {
            self.0.to_owned()
        }
    }

    #[test]
    fn get_metrics_serves_the_rendered_body() {
        let http = MetricsHttp::bind("127.0.0.1:0", Arc::new(Fixed("dvm_up 1\n"))).unwrap();
        let body = http_get(http.addr(), "/metrics").unwrap();
        assert_eq!(body, "dvm_up 1\n");
    }

    #[test]
    fn other_paths_and_methods_are_refused() {
        let http = MetricsHttp::bind("127.0.0.1:0", Arc::new(Fixed("x 1\n"))).unwrap();
        assert!(http_get(http.addr(), "/").is_err());
        // A POST gets a 405, read manually since http_get only does GET.
        let mut s = TcpStream::connect(http.addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"));
    }
}
