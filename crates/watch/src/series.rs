//! Time-series rings sampled from a live metrics [`Registry`] snapshot.
//!
//! The registry's counters and histograms are cumulative since process
//! start; a console wants *rates over the last minute*. The [`Sampler`]
//! turns one into the other: each `tick` diffs the current snapshot
//! against the previous one and appends per-interval points to
//! fixed-capacity rings —
//!
//! - counters → `(delta, dt)` points, so any window's rate is the sum
//!   of its deltas over its span;
//! - gauges → last-value points;
//! - histograms → *delta* snapshots (bucket-wise subtraction), so a
//!   window's p50/p99 is the quantile of the merged deltas inside it,
//!   not of all history.
//!
//! A process restart makes cumulative values regress; the sampler
//! detects `current < previous` and treats the current value as the
//! whole delta, so rates never go negative and restarts never poison a
//! window (property-tested in `tests/prop_watch.rs`).

use std::collections::BTreeMap;
use std::collections::VecDeque;

use dvm_telemetry::metrics::{bucket_lower, bucket_upper};
use dvm_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// One per-interval counter observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterPoint {
    /// Tick timestamp (end of the interval), nanoseconds.
    pub at_ns: u64,
    /// Events observed during the interval.
    pub delta: u64,
    /// Interval length, nanoseconds (≥ 1).
    pub dt_ns: u64,
}

impl CounterPoint {
    /// Events per second over this interval.
    pub fn rate(&self) -> f64 {
        self.delta as f64 * 1e9 / self.dt_ns as f64
    }
}

/// One gauge observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugePoint {
    /// Tick timestamp, nanoseconds.
    pub at_ns: u64,
    /// Gauge value at the tick.
    pub value: i64,
}

fn push_bounded<T>(ring: &mut VecDeque<T>, capacity: usize, v: T) {
    ring.push_back(v);
    while ring.len() > capacity {
        ring.pop_front();
    }
}

/// Bucket-wise difference `cur - prev`, with restart detection: a
/// cumulative count that went *down* means the process restarted, so
/// the current snapshot *is* the delta.
fn histogram_delta(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    if cur.count < prev.count {
        return cur.clone();
    }
    let prev_map: BTreeMap<u32, u64> = prev.buckets.iter().copied().collect();
    let mut buckets: Vec<(u32, u64)> = Vec::new();
    for &(i, n) in &cur.buckets {
        let d = n.saturating_sub(prev_map.get(&i).copied().unwrap_or(0));
        if d > 0 {
            buckets.push((i, d));
        }
    }
    let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
    // The registry tracks exact min/max only cumulatively; for a delta
    // the tightest honest bounds are the outermost non-empty buckets.
    let min = buckets
        .first()
        .map(|&(i, _)| bucket_lower(i as usize))
        .unwrap_or(u64::MAX);
    let max = buckets
        .last()
        .map(|&(i, _)| bucket_upper(i as usize).saturating_sub(1))
        .unwrap_or(0);
    HistogramSnapshot {
        count,
        sum: cur.sum.saturating_sub(prev.sum),
        min,
        max,
        buckets,
    }
}

/// Diffs successive registry snapshots into bounded per-metric rings.
/// Purely deterministic: callers supply both the snapshot and the
/// clock, so tests replay exactly.
#[derive(Debug, Default)]
pub struct Sampler {
    capacity: usize,
    prev: Option<MetricsSnapshot>,
    prev_at_ns: u64,
    counters: BTreeMap<String, VecDeque<CounterPoint>>,
    gauges: BTreeMap<String, VecDeque<GaugePoint>>,
    histograms: BTreeMap<String, VecDeque<(u64, HistogramSnapshot)>>,
}

impl Sampler {
    /// Creates a sampler retaining up to `capacity` points per metric.
    pub fn new(capacity: usize) -> Sampler {
        Sampler {
            capacity: capacity.max(1),
            ..Sampler::default()
        }
    }

    /// Ingests one snapshot taken at `now_ns`. The first tick only
    /// establishes the baseline; every later tick appends one point per
    /// metric. Ticks that do not advance the clock are ignored.
    pub fn tick(&mut self, now_ns: u64, snapshot: MetricsSnapshot) {
        let Some(prev) = self.prev.take() else {
            self.prev = Some(snapshot);
            self.prev_at_ns = now_ns;
            return;
        };
        if now_ns <= self.prev_at_ns {
            self.prev = Some(prev);
            return;
        }
        let dt_ns = now_ns - self.prev_at_ns;
        for (k, &cur) in &snapshot.counters {
            let before = prev.counters.get(k).copied().unwrap_or(0);
            // Restart: the cumulative value regressed, so everything
            // seen now happened since the restart.
            let delta = if cur >= before { cur - before } else { cur };
            push_bounded(
                self.counters.entry(k.clone()).or_default(),
                self.capacity,
                CounterPoint {
                    at_ns: now_ns,
                    delta,
                    dt_ns,
                },
            );
        }
        for (k, &value) in &snapshot.gauges {
            push_bounded(
                self.gauges.entry(k.clone()).or_default(),
                self.capacity,
                GaugePoint {
                    at_ns: now_ns,
                    value,
                },
            );
        }
        for (k, cur) in &snapshot.histograms {
            let delta = match prev.histograms.get(k) {
                Some(before) => histogram_delta(before, cur),
                None => cur.clone(),
            };
            if delta.count > 0 {
                push_bounded(
                    self.histograms.entry(k.clone()).or_default(),
                    self.capacity,
                    (now_ns, delta),
                );
            }
        }
        self.prev = Some(snapshot);
        self.prev_at_ns = now_ns;
    }

    /// Timestamp of the last accepted tick.
    pub fn last_tick_ns(&self) -> u64 {
        self.prev_at_ns
    }

    /// Counter metric names with at least one point.
    pub fn counter_names(&self) -> Vec<String> {
        self.counters.keys().cloned().collect()
    }

    /// The retained points for counter `name`, oldest first.
    pub fn counter_points(&self, name: &str) -> Vec<CounterPoint> {
        self.counters
            .get(name)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The retained points for gauge `name`, oldest first.
    pub fn gauge_points(&self, name: &str) -> Vec<GaugePoint> {
        self.gauges
            .get(name)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Total counter events inside `(now - window, now]`.
    pub fn window_delta(&self, name: &str, window_ns: u64, now_ns: u64) -> u64 {
        let from = now_ns.saturating_sub(window_ns);
        self.counters
            .get(name)
            .map(|r| {
                r.iter()
                    .filter(|p| p.at_ns > from && p.at_ns <= now_ns)
                    .map(|p| p.delta)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Events per second for counter `name` over the window.
    pub fn window_rate(&self, name: &str, window_ns: u64, now_ns: u64) -> f64 {
        let delta = self.window_delta(name, window_ns, now_ns);
        delta as f64 * 1e9 / window_ns.max(1) as f64
    }

    /// `errors / total` inside the window (0.0 when `total` saw no
    /// events — no traffic is not an outage).
    pub fn window_ratio(&self, errors: &str, total: &str, window_ns: u64, now_ns: u64) -> f64 {
        let t = self.window_delta(total, window_ns, now_ns);
        if t == 0 {
            return 0.0;
        }
        let e = self.window_delta(errors, window_ns, now_ns);
        e as f64 / t as f64
    }

    /// Merged delta histogram for `name` inside the window (empty
    /// snapshot when no interval recorded anything).
    pub fn window_histogram(&self, name: &str, window_ns: u64, now_ns: u64) -> HistogramSnapshot {
        let from = now_ns.saturating_sub(window_ns);
        let mut merged = HistogramSnapshot {
            min: u64::MAX,
            ..HistogramSnapshot::default()
        };
        if let Some(ring) = self.histograms.get(name) {
            for (at, delta) in ring {
                if *at > from && *at <= now_ns {
                    merged.merge(delta);
                }
            }
        }
        merged
    }

    /// Windowed quantile for histogram `name` (0 when the window is
    /// empty).
    pub fn window_quantile(&self, name: &str, q: f64, window_ns: u64, now_ns: u64) -> u64 {
        self.window_histogram(name, window_ns, now_ns).quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_telemetry::Registry;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn counter_deltas_become_rates() {
        let reg = Registry::new();
        let c = reg.counter("reqs");
        let mut s = Sampler::new(64);
        s.tick(0, reg.snapshot());
        c.add(10);
        s.tick(SEC, reg.snapshot());
        c.add(30);
        s.tick(2 * SEC, reg.snapshot());
        let pts = s.counter_points("reqs");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].delta, 10);
        assert_eq!(pts[1].delta, 30);
        assert!((pts[1].rate() - 30.0).abs() < 1e-9);
        assert_eq!(s.window_delta("reqs", 2 * SEC, 2 * SEC), 40);
        assert!((s.window_rate("reqs", 2 * SEC, 2 * SEC) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn restart_regression_never_yields_negative_deltas() {
        let reg = Registry::new();
        reg.counter("reqs").add(1000);
        let mut s = Sampler::new(64);
        s.tick(0, reg.snapshot());
        // "Restart": a fresh registry restarts the cumulative count.
        let fresh = Registry::new();
        fresh.counter("reqs").add(5);
        s.tick(SEC, fresh.snapshot());
        let pts = s.counter_points("reqs");
        assert_eq!(pts[0].delta, 5);
    }

    #[test]
    fn windowed_histogram_sees_only_the_window() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        let mut s = Sampler::new(64);
        s.tick(0, reg.snapshot());
        // Old interval: slow.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        s.tick(SEC, reg.snapshot());
        // Recent interval: fast.
        for _ in 0..100 {
            h.record(1_000);
        }
        s.tick(2 * SEC, reg.snapshot());
        let recent = s.window_quantile("lat", 0.99, SEC, 2 * SEC);
        assert!(recent < 2_000, "recent p99 {recent}");
        let both = s.window_histogram("lat", 2 * SEC, 2 * SEC);
        assert_eq!(both.count, 200);
        assert!(s.window_quantile("lat", 0.99, 2 * SEC, 2 * SEC) >= 500_000);
    }

    #[test]
    fn ratio_is_zero_without_traffic() {
        let s = Sampler::new(8);
        assert_eq!(s.window_ratio("err", "total", SEC, SEC), 0.0);
    }
}
