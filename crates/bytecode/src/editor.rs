//! Splicing instrumentation into existing method bodies.
//!
//! [`CodeEditor`] is the mechanism behind every binary-rewriting service in
//! the DVM: the verifier's injected link checks, the security service's
//! access checks, and the monitor's audit events are all inserted through
//! it. Insertion keeps all original branch targets pointing at the original
//! instructions (so a back-edge does not re-execute injected code) and
//! shifts exception-handler ranges accordingly.

use crate::code::Code;
use crate::error::Result;
use crate::insn::Insn;

/// An editor over a [`Code`] body that supports multi-point insertion with
/// automatic target fix-up.
#[derive(Debug)]
pub struct CodeEditor {
    code: Code,
}

impl CodeEditor {
    /// Wraps a decoded body for editing.
    pub fn new(code: Code) -> CodeEditor {
        CodeEditor { code }
    }

    /// Read access to the body being edited.
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// Consumes the editor, returning the edited body.
    pub fn into_code(self) -> Code {
        self.code
    }

    /// Raises `max_locals` to at least `n` (instrumentation that needs
    /// scratch locals calls this).
    pub fn reserve_locals(&mut self, n: u16) {
        self.code.max_locals = self.code.max_locals.max(n);
    }

    /// Inserts `insns` before the instruction at `at`.
    ///
    /// Branch targets and handler boundaries pointing at or beyond `at` are
    /// shifted so that they still reference the *original* instruction; the
    /// inserted block executes only when control falls into it from `at - 1`
    /// or enters the method at `at == 0`.
    ///
    /// Targets inside `insns` must already be expressed in the coordinates
    /// of the *final* body (callers that need internal branches should
    /// compute them relative to `at` before calling).
    pub fn insert(&mut self, at: usize, insns: Vec<Insn>) {
        let n = insns.len();
        if n == 0 {
            return;
        }
        assert!(at <= self.code.insns.len(), "insertion point out of range");
        // Shift existing branch targets.
        for insn in &mut self.code.insns {
            insn.map_targets(|t| if t >= at { t + n } else { t });
        }
        // Shift handler ranges. A handler whose range starts at `at` keeps
        // covering the original instruction, not the injected block: the
        // injected code belongs to the service, and a fault inside it must
        // not be swallowed by the application's handler.
        for h in &mut self.code.handlers {
            if h.start >= at {
                h.start += n;
            }
            if h.end >= at {
                h.end += n;
            }
            if h.handler >= at {
                h.handler += n;
            }
        }
        self.code.insns.splice(at..at, insns);
    }

    /// Inserts the same prologue at the start of the method.
    pub fn insert_prologue(&mut self, insns: Vec<Insn>) {
        self.insert(0, insns);
    }

    /// Inserts `make` blocks before every instruction matching `pred`,
    /// processing positions from the end so indices stay valid.
    ///
    /// `make` receives the index of the matched instruction in the original
    /// body and the instruction itself.
    pub fn insert_before_matching(
        &mut self,
        pred: impl Fn(&Insn) -> bool,
        mut make: impl FnMut(usize, &Insn) -> Vec<Insn>,
    ) {
        let positions: Vec<usize> = self
            .code
            .insns
            .iter()
            .enumerate()
            .filter(|(_, i)| pred(i))
            .map(|(idx, _)| idx)
            .collect();
        for &pos in positions.iter().rev() {
            let block = make(pos, &self.code.insns[pos]);
            self.insert(pos, block);
        }
    }

    /// Inserts `make` blocks before every return instruction (all forms),
    /// used for method-exit instrumentation.
    pub fn insert_before_returns(&mut self, mut make: impl FnMut() -> Vec<Insn>) {
        self.insert_before_matching(|i| matches!(i, Insn::Return(_)), |_, _| make());
    }

    /// Validates the edited body's targets.
    pub fn validate(&self) -> Result<()> {
        self.code.validate_targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Handler;
    use crate::insn::{ICond, Kind};

    fn sample() -> Code {
        Code {
            insns: vec![
                Insn::IConst(0),            // 0
                Insn::Store(Kind::Int, 1),  // 1
                Insn::Load(Kind::Int, 1),   // 2  <- loop top
                Insn::IConst(5),            // 3
                Insn::IfICmp(ICond::Ge, 7), // 4
                Insn::IInc(1, 1),           // 5
                Insn::Goto(2),              // 6
                Insn::Return(None),         // 7
            ],
            handlers: vec![Handler {
                start: 2,
                end: 7,
                handler: 7,
                catch_type: 0,
            }],
            max_locals: 2,
        }
    }

    #[test]
    fn prologue_insertion_shifts_targets() {
        let mut ed = CodeEditor::new(sample());
        ed.insert_prologue(vec![Insn::Nop, Insn::Nop]);
        let code = ed.into_code();
        assert_eq!(code.insns.len(), 10);
        // The loop back-edge now points at the shifted loop top.
        assert_eq!(code.insns[8], Insn::Goto(4));
        // The conditional points at the shifted return.
        assert_eq!(code.insns[6], Insn::IfICmp(ICond::Ge, 9));
        // Handler range shifted wholesale.
        assert_eq!(
            code.handlers[0],
            Handler {
                start: 4,
                end: 9,
                handler: 9,
                catch_type: 0
            }
        );
    }

    #[test]
    fn mid_insertion_keeps_back_edges_on_original_instruction() {
        let mut ed = CodeEditor::new(sample());
        // Instrument the loop top (index 2): inserted block must NOT be
        // re-executed by the back edge.
        ed.insert(2, vec![Insn::Nop]);
        let code = ed.into_code();
        // Back edge was Goto(2); original instruction moved to 3.
        assert_eq!(code.insns[7], Insn::Goto(3));
        // The inserted Nop sits at 2 and is only reached by fall-through.
        assert_eq!(code.insns[2], Insn::Nop);
    }

    #[test]
    fn insert_before_returns_handles_multiple_returns() {
        let code = Code {
            insns: vec![
                Insn::Load(Kind::Int, 0),
                Insn::If(ICond::Eq, 4),
                Insn::IConst(1),
                Insn::Return(Some(Kind::Int)),
                Insn::IConst(0),
                Insn::Return(Some(Kind::Int)),
            ],
            handlers: vec![],
            max_locals: 1,
        };
        let mut ed = CodeEditor::new(code);
        ed.insert_before_returns(|| vec![Insn::Nop]);
        let code = ed.into_code();
        assert_eq!(code.insns.len(), 8);
        assert_eq!(code.insns[3], Insn::Nop);
        assert_eq!(code.insns[6], Insn::Nop);
        // Branch to the second arm (was 4) now lands on its Nop-shifted
        // original instruction (5).
        assert_eq!(code.insns[1], Insn::If(ICond::Eq, 5));
        code.validate_targets().unwrap();
    }

    #[test]
    fn empty_insert_is_a_no_op() {
        let mut ed = CodeEditor::new(sample());
        let before = ed.code().clone();
        ed.insert(3, vec![]);
        assert_eq!(*ed.code(), before);
    }
}
