//! The structured instruction model.
//!
//! Instructions are held in *label form*: every branch target is the index
//! of an instruction in the surrounding [`crate::code::Code`] body rather
//! than a byte offset. This makes splicing instrumentation into a method a
//! simple index adjustment; byte offsets are recomputed at encode time.

use dvm_classfile::descriptor::MethodDescriptor;
use dvm_classfile::pool::{ConstPool, Constant};

use crate::error::{BytecodeError, Result};

/// Value categories used by loads, stores, and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `int` (and the int-like small types).
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// Any reference.
    Ref,
}

impl Kind {
    /// Operand-stack slots a value of this kind occupies.
    pub fn width(self) -> u16 {
        match self {
            Kind::Long | Kind::Double => 2,
            _ => 1,
        }
    }

    /// Index of this kind in opcode families ordered `i,l,f,d,a`.
    pub fn family_index(self) -> u8 {
        match self {
            Kind::Int => 0,
            Kind::Long => 1,
            Kind::Float => 2,
            Kind::Double => 3,
            Kind::Ref => 4,
        }
    }
}

/// Element kinds for array load/store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AKind {
    /// `int[]`.
    Int,
    /// `long[]`.
    Long,
    /// `float[]`.
    Float,
    /// `double[]`.
    Double,
    /// Reference arrays.
    Ref,
    /// `byte[]` / `boolean[]`.
    Byte,
    /// `char[]`.
    Char,
    /// `short[]`.
    Short,
}

impl AKind {
    /// Stack width of one element of this kind.
    pub fn width(self) -> u16 {
        match self {
            AKind::Long | AKind::Double => 2,
            _ => 1,
        }
    }

    /// Index in the `iaload..saload` opcode family.
    pub fn family_index(self) -> u8 {
        match self {
            AKind::Int => 0,
            AKind::Long => 1,
            AKind::Float => 2,
            AKind::Double => 3,
            AKind::Ref => 4,
            AKind::Byte => 5,
            AKind::Char => 6,
            AKind::Short => 7,
        }
    }

    /// The `newarray` atype code for primitive kinds.
    pub fn newarray_code(self) -> Option<u8> {
        Some(match self {
            AKind::Byte => 8,
            AKind::Char => 5,
            AKind::Float => 6,
            AKind::Double => 7,
            AKind::Short => 9,
            AKind::Int => 10,
            AKind::Long => 11,
            AKind::Ref => return None,
        })
    }

    /// Inverse of [`AKind::newarray_code`] (4 = boolean maps to `Byte`).
    pub fn from_newarray_code(code: u8) -> Option<AKind> {
        Some(match code {
            4 | 8 => AKind::Byte,
            5 => AKind::Char,
            6 => AKind::Float,
            7 => AKind::Double,
            9 => AKind::Short,
            10 => AKind::Int,
            11 => AKind::Long,
            _ => return None,
        })
    }
}

/// Numeric kinds for arithmetic instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumKind {
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
}

impl NumKind {
    /// Stack width of this kind.
    pub fn width(self) -> u16 {
        match self {
            NumKind::Long | NumKind::Double => 2,
            _ => 1,
        }
    }

    /// Index in `i,l,f,d` opcode families.
    pub fn family_index(self) -> u8 {
        match self {
            NumKind::Int => 0,
            NumKind::Long => 1,
            NumKind::Float => 2,
            NumKind::Double => 3,
        }
    }
}

/// Binary/unary arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Unary negation.
    Neg,
}

/// Shift operations (`int` and `long` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Logical right shift.
    Ushr,
}

/// Bitwise logic operations (`int` and `long` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Integer comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less or equal.
    Le,
}

impl ICond {
    /// Index in the `ifeq..ifle` opcode family.
    pub fn family_index(self) -> u8 {
        match self {
            ICond::Eq => 0,
            ICond::Ne => 1,
            ICond::Lt => 2,
            ICond::Ge => 3,
            ICond::Gt => 4,
            ICond::Le => 5,
        }
    }

    /// The negated condition.
    pub fn negate(self) -> ICond {
        match self {
            ICond::Eq => ICond::Ne,
            ICond::Ne => ICond::Eq,
            ICond::Lt => ICond::Ge,
            ICond::Ge => ICond::Lt,
            ICond::Gt => ICond::Le,
            ICond::Le => ICond::Gt,
        }
    }
}

/// Numeric types involved in conversion instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumType {
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `byte` (target of `i2b` only).
    Byte,
    /// `char` (target of `i2c` only).
    Char,
    /// `short` (target of `i2s` only).
    Short,
}

impl NumType {
    /// Stack width of a value of this type.
    pub fn width(self) -> u16 {
        match self {
            NumType::Long | NumType::Double => 2,
            _ => 1,
        }
    }
}

/// One JVM instruction in label form (branch targets are instruction
/// indices, not byte offsets).
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// `nop`.
    Nop,
    /// `aconst_null`.
    AConstNull,
    /// An `int` constant (`iconst_n`, `bipush`, or `sipush`).
    IConst(i32),
    /// A `long` constant (`lconst_0`/`lconst_1` only).
    LConst(i64),
    /// A `float` constant (`fconst_0/1/2` only).
    FConst(f32),
    /// A `double` constant (`dconst_0/1` only).
    DConst(f64),
    /// `ldc`/`ldc_w`: push a single-slot constant from the pool.
    Ldc(u16),
    /// `ldc2_w`: push a two-slot constant (long/double) from the pool.
    Ldc2(u16),
    /// Load a local variable.
    Load(Kind, u16),
    /// Store into a local variable.
    Store(Kind, u16),
    /// Load an array element.
    ArrayLoad(AKind),
    /// Store an array element.
    ArrayStore(AKind),
    /// `pop`.
    Pop,
    /// `pop2`.
    Pop2,
    /// `dup`.
    Dup,
    /// `dup_x1`.
    DupX1,
    /// `dup_x2`.
    DupX2,
    /// `dup2`.
    Dup2,
    /// `dup2_x1`.
    Dup2X1,
    /// `dup2_x2`.
    Dup2X2,
    /// `swap`.
    Swap,
    /// Arithmetic on a numeric kind.
    Arith(NumKind, ArithOp),
    /// Shift on `int` or `long` (`kind` must not be float/double).
    Shift(NumKind, ShiftOp),
    /// Bitwise logic on `int` or `long`.
    Logic(NumKind, LogicOp),
    /// `iinc`: add an immediate to an `int` local.
    IInc(u16, i16),
    /// Numeric conversion (`i2l`, `f2d`, `i2b`, ...).
    Convert(NumType, NumType),
    /// `lcmp`.
    LCmp,
    /// `fcmpl` / `fcmpg` (`true` selects `fcmpg`).
    FCmp(bool),
    /// `dcmpl` / `dcmpg` (`true` selects `dcmpg`).
    DCmp(bool),
    /// `ifeq..ifle`: branch if int compared with zero satisfies the
    /// condition.
    If(ICond, usize),
    /// `if_icmpXX`: branch comparing two ints.
    IfICmp(ICond, usize),
    /// `if_acmpeq` / `if_acmpne` (`true` selects `eq`).
    IfACmp(bool, usize),
    /// `ifnull`.
    IfNull(usize),
    /// `ifnonnull`.
    IfNonNull(usize),
    /// `goto` / `goto_w`.
    Goto(usize),
    /// `jsr` / `jsr_w`.
    Jsr(usize),
    /// `ret`: return from subroutine via a local variable.
    Ret(u16),
    /// `tableswitch`.
    TableSwitch {
        /// Default target (instruction index).
        default: usize,
        /// Lowest matched key.
        low: i32,
        /// Targets for keys `low..=low+targets.len()-1`.
        targets: Vec<usize>,
    },
    /// `lookupswitch`.
    LookupSwitch {
        /// Default target (instruction index).
        default: usize,
        /// Sorted `(key, target)` pairs.
        pairs: Vec<(i32, usize)>,
    },
    /// Typed return, or `None` for `return` (void).
    Return(Option<Kind>),
    /// `getstatic` with a `Fieldref` pool index.
    GetStatic(u16),
    /// `putstatic`.
    PutStatic(u16),
    /// `getfield`.
    GetField(u16),
    /// `putfield`.
    PutField(u16),
    /// `invokevirtual` with a `Methodref` pool index.
    InvokeVirtual(u16),
    /// `invokespecial`.
    InvokeSpecial(u16),
    /// `invokestatic`.
    InvokeStatic(u16),
    /// `invokeinterface`.
    InvokeInterface(u16),
    /// `new` with a `Class` pool index.
    New(u16),
    /// `newarray` of a primitive element kind.
    NewArray(AKind),
    /// `anewarray` with a `Class` pool index for the element type.
    ANewArray(u16),
    /// `arraylength`.
    ArrayLength,
    /// `athrow`.
    AThrow,
    /// `checkcast`.
    CheckCast(u16),
    /// `instanceof`.
    InstanceOf(u16),
    /// `monitorenter`.
    MonitorEnter,
    /// `monitorexit`.
    MonitorExit,
    /// `multianewarray` with a `Class` pool index and dimension count.
    MultiANewArray(u16, u8),
}

impl Insn {
    /// Returns `true` when control can continue to the next instruction.
    pub fn can_fall_through(&self) -> bool {
        !matches!(
            self,
            Insn::Goto(_)
                | Insn::Ret(_)
                | Insn::TableSwitch { .. }
                | Insn::LookupSwitch { .. }
                | Insn::Return(_)
                | Insn::AThrow
        )
    }

    /// Returns all explicit branch targets (instruction indices).
    pub fn branch_targets(&self) -> Vec<usize> {
        match self {
            Insn::If(_, t)
            | Insn::IfICmp(_, t)
            | Insn::IfACmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t)
            | Insn::Goto(t)
            | Insn::Jsr(t) => vec![*t],
            Insn::TableSwitch {
                default, targets, ..
            } => {
                let mut v = vec![*default];
                v.extend_from_slice(targets);
                v
            }
            Insn::LookupSwitch { default, pairs } => {
                let mut v = vec![*default];
                v.extend(pairs.iter().map(|(_, t)| *t));
                v
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites every branch target through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(usize) -> usize) {
        match self {
            Insn::If(_, t)
            | Insn::IfICmp(_, t)
            | Insn::IfACmp(_, t)
            | Insn::IfNull(t)
            | Insn::IfNonNull(t)
            | Insn::Goto(t)
            | Insn::Jsr(t) => *t = f(*t),
            Insn::TableSwitch {
                default, targets, ..
            } => {
                *default = f(*default);
                for t in targets {
                    *t = f(*t);
                }
            }
            Insn::LookupSwitch { default, pairs } => {
                *default = f(*default);
                for (_, t) in pairs {
                    *t = f(*t);
                }
            }
            _ => {}
        }
    }

    /// Computes the `(pops, pushes)` operand-stack effect, consulting `pool`
    /// for member descriptors and constant kinds.
    pub fn stack_effect(&self, pool: &ConstPool) -> Result<(u16, u16)> {
        use Insn::*;
        Ok(match self {
            Nop | IInc(_, _) | Goto(_) | Ret(_) => (0, 0),
            AConstNull | IConst(_) | FConst(_) => (0, 1),
            LConst(_) | DConst(_) => (0, 2),
            Ldc(idx) => match pool.get(*idx)? {
                Constant::Integer(_)
                | Constant::Float(_)
                | Constant::String { .. }
                | Constant::Class { .. } => (0, 1),
                c => {
                    return Err(BytecodeError::BadConstantKind {
                        index: *idx,
                        found: c.kind(),
                        context: "ldc",
                    })
                }
            },
            Ldc2(idx) => match pool.get(*idx)? {
                Constant::Long(_) | Constant::Double(_) => (0, 2),
                c => {
                    return Err(BytecodeError::BadConstantKind {
                        index: *idx,
                        found: c.kind(),
                        context: "ldc2_w",
                    })
                }
            },
            Load(k, _) => (0, k.width()),
            Store(k, _) => (k.width(), 0),
            ArrayLoad(k) => (2, k.width()),
            ArrayStore(k) => (2 + k.width(), 0),
            Pop => (1, 0),
            Pop2 => (2, 0),
            Dup => (1, 2),
            DupX1 => (2, 3),
            DupX2 => (3, 4),
            Dup2 => (2, 4),
            Dup2X1 => (3, 5),
            Dup2X2 => (4, 6),
            Swap => (2, 2),
            Arith(k, ArithOp::Neg) => (k.width(), k.width()),
            Arith(k, _) => (2 * k.width(), k.width()),
            Shift(k, _) => (k.width() + 1, k.width()),
            Logic(k, _) => (2 * k.width(), k.width()),
            Convert(from, to) => (from.width(), to.width()),
            LCmp => (4, 1),
            FCmp(_) => (2, 1),
            DCmp(_) => (4, 1),
            If(_, _) | IfNull(_) | IfNonNull(_) => (1, 0),
            IfICmp(_, _) | IfACmp(_, _) => (2, 0),
            Jsr(_) => (0, 1),
            TableSwitch { .. } | LookupSwitch { .. } => (1, 0),
            Return(None) => (0, 0),
            Return(Some(k)) => (k.width(), 0),
            GetStatic(idx) => (0, field_width(pool, *idx)?),
            PutStatic(idx) => (field_width(pool, *idx)?, 0),
            GetField(idx) => (1, field_width(pool, *idx)?),
            PutField(idx) => (1 + field_width(pool, *idx)?, 0),
            InvokeVirtual(idx) | InvokeSpecial(idx) | InvokeInterface(idx) => {
                let (pops, pushes) = invoke_effect(pool, *idx)?;
                (pops + 1, pushes)
            }
            InvokeStatic(idx) => invoke_effect(pool, *idx)?,
            New(_) => (0, 1),
            NewArray(_) | ANewArray(_) | ArrayLength => (1, 1),
            AThrow => (1, 0),
            CheckCast(_) | InstanceOf(_) => (1, 1),
            MonitorEnter | MonitorExit => (1, 0),
            MultiANewArray(_, dims) => (*dims as u16, 1),
        })
    }
}

fn field_width(pool: &ConstPool, index: u16) -> Result<u16> {
    let (_, _, desc) = pool.get_member_ref(index)?;
    let ft = dvm_classfile::descriptor::FieldType::parse(desc)?;
    Ok(ft.slot_width())
}

fn invoke_effect(pool: &ConstPool, index: u16) -> Result<(u16, u16)> {
    let (_, _, desc) = pool.get_member_ref(index)?;
    let md = MethodDescriptor::parse(desc)?;
    Ok((md.param_slots(), md.return_slots()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fall_through_classification() {
        assert!(Insn::IConst(1).can_fall_through());
        assert!(Insn::If(ICond::Eq, 3).can_fall_through());
        assert!(!Insn::Goto(0).can_fall_through());
        assert!(!Insn::Return(None).can_fall_through());
        assert!(!Insn::AThrow.can_fall_through());
    }

    #[test]
    fn branch_target_collection_and_mapping() {
        let mut i = Insn::TableSwitch {
            default: 9,
            low: 0,
            targets: vec![1, 2],
        };
        assert_eq!(i.branch_targets(), vec![9, 1, 2]);
        i.map_targets(|t| t + 10);
        assert_eq!(i.branch_targets(), vec![19, 11, 12]);
    }

    #[test]
    fn stack_effect_for_invokes() {
        let mut pool = ConstPool::new();
        let m = pool.methodref("Foo", "f", "(IJ)D").unwrap();
        // invokestatic: pops 1 int + 2 long slots, pushes 2 double slots.
        assert_eq!(Insn::InvokeStatic(m).stack_effect(&pool).unwrap(), (3, 2));
        // invokevirtual adds the receiver.
        assert_eq!(Insn::InvokeVirtual(m).stack_effect(&pool).unwrap(), (4, 2));
    }

    #[test]
    fn stack_effect_for_fields() {
        let mut pool = ConstPool::new();
        let f = pool.fieldref("Foo", "x", "J").unwrap();
        assert_eq!(Insn::GetField(f).stack_effect(&pool).unwrap(), (1, 2));
        assert_eq!(Insn::PutField(f).stack_effect(&pool).unwrap(), (3, 0));
    }

    #[test]
    fn ldc_rejects_wide_constants() {
        let mut pool = ConstPool::new();
        let l = pool.long(5).unwrap();
        assert!(Insn::Ldc(l).stack_effect(&pool).is_err());
        assert_eq!(Insn::Ldc2(l).stack_effect(&pool).unwrap(), (0, 2));
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            ICond::Eq,
            ICond::Ne,
            ICond::Lt,
            ICond::Ge,
            ICond::Gt,
            ICond::Le,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }
}
