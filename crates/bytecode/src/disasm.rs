//! Human-readable disassembly, used in diagnostics and the admin console.

use dvm_classfile::pool::{ConstPool, Constant};

use crate::code::Code;
use crate::insn::Insn;

/// Renders one instruction, resolving pool references when possible.
pub fn render_insn(insn: &Insn, pool: &ConstPool) -> String {
    let member = |idx: u16| -> String {
        pool.get_member_ref(idx)
            .map(|(c, n, d)| format!("{c}.{n}:{d}"))
            .unwrap_or_else(|_| format!("#{idx}"))
    };
    let class = |idx: u16| -> String {
        pool.get_class_name(idx)
            .map(str::to_owned)
            .unwrap_or_else(|_| format!("#{idx}"))
    };
    match insn {
        Insn::Ldc(idx) | Insn::Ldc2(idx) => {
            let v = match pool.get(*idx) {
                Ok(Constant::Integer(v)) => v.to_string(),
                Ok(Constant::Long(v)) => format!("{v}L"),
                Ok(Constant::Float(v)) => format!("{v}f"),
                Ok(Constant::Double(v)) => format!("{v}d"),
                Ok(Constant::String { .. }) => {
                    format!("{:?}", pool.get_string(*idx).unwrap_or("?"))
                }
                _ => format!("#{idx}"),
            };
            format!("ldc {v}")
        }
        Insn::GetStatic(i) => format!("getstatic {}", member(*i)),
        Insn::PutStatic(i) => format!("putstatic {}", member(*i)),
        Insn::GetField(i) => format!("getfield {}", member(*i)),
        Insn::PutField(i) => format!("putfield {}", member(*i)),
        Insn::InvokeVirtual(i) => format!("invokevirtual {}", member(*i)),
        Insn::InvokeSpecial(i) => format!("invokespecial {}", member(*i)),
        Insn::InvokeStatic(i) => format!("invokestatic {}", member(*i)),
        Insn::InvokeInterface(i) => format!("invokeinterface {}", member(*i)),
        Insn::New(i) => format!("new {}", class(*i)),
        Insn::ANewArray(i) => format!("anewarray {}", class(*i)),
        Insn::CheckCast(i) => format!("checkcast {}", class(*i)),
        Insn::InstanceOf(i) => format!("instanceof {}", class(*i)),
        other => format!("{other:?}"),
    }
}

/// Renders a whole body, one instruction per line, with indices.
pub fn render_code(code: &Code, pool: &ConstPool) -> String {
    let mut out = String::new();
    for (i, insn) in code.insns.iter().enumerate() {
        out.push_str(&format!("{i:5}: {}\n", render_insn(insn, pool)));
    }
    for h in &code.handlers {
        out.push_str(&format!(
            "  handler [{}, {}) -> {} catch #{}\n",
            h.start, h.end, h.handler, h.catch_type
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_member_references() {
        let mut pool = ConstPool::new();
        let m = pool
            .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        let s = render_insn(&Insn::InvokeVirtual(m), &pool);
        assert!(s.contains("println"), "{s}");
    }

    #[test]
    fn renders_whole_body() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::IConst(3), Insn::Return(Some(crate::insn::Kind::Int))],
            handlers: vec![],
            max_locals: 0,
        };
        let text = render_code(&code, &pool);
        assert!(text.contains("IConst(3)"));
    }
}
