//! JVM instruction set: decoding, encoding, editing, and assembly.
//!
//! The paper's services are implemented by *binary rewriting* (§2): the
//! proxy parses incoming class files once, each service transforms the
//! instruction stream, and a single code-generation step emits the modified
//! binary. This crate supplies that machinery:
//!
//! - [`code::Code`] — a method body in label form (branch targets are
//!   instruction indices), with byte-exact decode/encode.
//! - [`editor::CodeEditor`] — splice instrumentation into a body with
//!   automatic branch/handler fix-up.
//! - [`asm::Asm`] — a label-based assembler for synthesizing bodies.
//! - [`disasm`] — human-readable rendering for the admin console.

pub mod asm;
pub mod code;
pub mod disasm;
pub mod editor;
pub mod error;
pub mod insn;
pub mod opcode;

pub use asm::{Asm, Label};
pub use code::{Code, Handler};
pub use editor::CodeEditor;
pub use error::{BytecodeError, Result};
pub use insn::{AKind, ArithOp, ICond, Insn, Kind, LogicOp, NumKind, NumType, ShiftOp};
