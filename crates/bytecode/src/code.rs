//! Decoded method bodies: byte-offset ⇄ label-form conversion.
//!
//! [`Code::decode`] lifts a `Code` attribute's byte array into a vector of
//! [`Insn`] whose branch targets are instruction indices, and maps the
//! exception table into index form. [`Code::encode`] lays the instructions
//! back out, choosing compact encodings and recomputing all offsets, and can
//! recompute `max_stack` with a dataflow pass. Binary-rewriting services
//! round-trip every method they touch through this type.

use dvm_classfile::attributes::{CodeAttribute, ExceptionTableEntry};
use dvm_classfile::pool::ConstPool;

use crate::error::{BytecodeError, Result};
use crate::insn::{AKind, ICond, Insn, Kind, NumType};
use crate::opcode as op;

/// An exception handler in instruction-index form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handler {
    /// First protected instruction (inclusive index).
    pub start: usize,
    /// End of the protected range (exclusive index; may equal `insns.len()`).
    pub end: usize,
    /// Index of the handler's first instruction.
    pub handler: usize,
    /// Constant-pool index of the caught class, or 0 for catch-all.
    pub catch_type: u16,
}

/// A method body in label form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Code {
    /// The instructions.
    pub insns: Vec<Insn>,
    /// Exception handlers in index form.
    pub handlers: Vec<Handler>,
    /// Number of local-variable slots.
    pub max_locals: u16,
}

impl Code {
    /// Creates an empty body with the given local-variable count.
    pub fn new(max_locals: u16) -> Code {
        Code {
            insns: Vec::new(),
            handlers: Vec::new(),
            max_locals,
        }
    }

    /// Decodes a `Code` attribute into label form.
    pub fn decode(attr: &CodeAttribute) -> Result<Code> {
        let bytes = &attr.code;
        let mut offsets = Vec::new();
        let mut raw = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            offsets.push(pos);
            let (insn, len) = decode_one(bytes, pos)?;
            raw.push(insn);
            pos += len;
        }
        // Map byte offsets to instruction indices.
        let index_of = |target_offset: usize, from: usize| -> Result<usize> {
            offsets
                .binary_search(&target_offset)
                .map_err(|_| BytecodeError::BadBranchTarget {
                    from,
                    target: target_offset as i64,
                })
        };
        let mut insns = Vec::with_capacity(raw.len());
        for (i, mut insn) in raw.into_iter().enumerate() {
            let from = offsets[i];
            let mut err = None;
            insn.map_targets(|byte_target| match index_of(byte_target, from) {
                Ok(idx) => idx,
                Err(e) => {
                    err = Some(e);
                    0
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            insns.push(insn);
        }
        let mut handlers = Vec::with_capacity(attr.exception_table.len());
        for e in &attr.exception_table {
            let start = index_of(e.start_pc as usize, e.start_pc as usize)?;
            let end = if e.end_pc as usize == bytes.len() {
                insns.len()
            } else {
                index_of(e.end_pc as usize, e.end_pc as usize)?
            };
            let handler = index_of(e.handler_pc as usize, e.handler_pc as usize)?;
            handlers.push(Handler {
                start,
                end,
                handler,
                catch_type: e.catch_type,
            });
        }
        Ok(Code {
            insns,
            handlers,
            max_locals: attr.max_locals,
        })
    }

    /// Encodes this body back into a `Code` attribute.
    ///
    /// Offsets are laid out iteratively (switch padding and `goto` width
    /// depend on position); `max_stack` is recomputed with
    /// [`Code::compute_max_stack`].
    pub fn encode(&self, pool: &ConstPool) -> Result<CodeAttribute> {
        self.validate_targets()?;
        // Iterative layout: sizes depend on offsets (switch padding, wide
        // gotos), which depend on sizes. Iterate to a fixpoint.
        let n = self.insns.len();
        let mut offsets = vec![0u32; n + 1];
        let mut wide_goto = vec![false; n];
        for _round in 0..32 {
            let mut changed = false;
            let mut pos = 0u32;
            for (i, insn) in self.insns.iter().enumerate() {
                if offsets[i] != pos {
                    offsets[i] = pos;
                    changed = true;
                }
                // Widen goto/jsr whose displacement no longer fits i16.
                if let Insn::Goto(t) | Insn::Jsr(t) = insn {
                    let disp = offsets[*t] as i64 - pos as i64;
                    if !(-32768..=32767).contains(&disp) && !wide_goto[i] {
                        wide_goto[i] = true;
                        changed = true;
                    }
                }
                pos += encoded_size(insn, pos, wide_goto[i])? as u32;
            }
            if offsets[n] != pos {
                offsets[n] = pos;
                changed = true;
            }
            if !changed {
                break;
            }
            if _round == 31 {
                return Err(BytecodeError::LayoutDiverged);
            }
        }
        let total = offsets[n] as usize;
        if total > u16::MAX as usize {
            return Err(BytecodeError::CodeTooLarge(total));
        }

        let mut out = Vec::with_capacity(total);
        for (i, insn) in self.insns.iter().enumerate() {
            encode_one(insn, i, &offsets, wide_goto[i], &mut out)?;
            debug_assert_eq!(
                out.len(),
                offsets.get(i + 1).map(|o| *o as usize).unwrap_or(out.len()),
                "layout size mismatch at instruction {i}"
            );
        }

        let exception_table = self
            .handlers
            .iter()
            .map(|h| ExceptionTableEntry {
                start_pc: offsets[h.start] as u16,
                end_pc: offsets[h.end] as u16,
                handler_pc: offsets[h.handler] as u16,
                catch_type: h.catch_type,
            })
            .collect();

        Ok(CodeAttribute {
            max_stack: self.compute_max_stack(pool)?,
            max_locals: self.max_locals,
            code: out,
            exception_table,
            attributes: Vec::new(),
        })
    }

    /// Checks that every branch target and handler index is in range.
    pub fn validate_targets(&self) -> Result<()> {
        let len = self.insns.len();
        for insn in &self.insns {
            for t in insn.branch_targets() {
                if t >= len {
                    return Err(BytecodeError::BadTargetIndex { index: t, len });
                }
            }
        }
        for h in &self.handlers {
            if h.start > len || h.end > len || h.handler >= len {
                return Err(BytecodeError::BadTargetIndex {
                    index: h.handler.max(h.start).max(h.end),
                    len,
                });
            }
        }
        Ok(())
    }

    /// Computes the maximum operand-stack depth with a worklist dataflow,
    /// verifying depth consistency at merges and absence of underflow.
    pub fn compute_max_stack(&self, pool: &ConstPool) -> Result<u16> {
        let n = self.insns.len();
        if n == 0 {
            return Ok(0);
        }
        let mut depth: Vec<Option<u16>> = vec![None; n];
        let mut work: Vec<(usize, u16)> = vec![(0, 0)];
        // Exception handlers start with the thrown reference on the stack.
        for h in &self.handlers {
            work.push((h.handler, 1));
        }
        let mut max = 0u16;
        while let Some((i, d)) = work.pop() {
            if i >= n {
                continue;
            }
            match depth[i] {
                Some(existing) => {
                    if existing != d {
                        return Err(BytecodeError::StackMismatch {
                            index: i,
                            expected: existing,
                            found: d,
                        });
                    }
                    continue;
                }
                None => depth[i] = Some(d),
            }
            let insn = &self.insns[i];
            // Subroutines need special depth modeling: the return address
            // is consumed inside the subroutine, so the instruction after a
            // `jsr` resumes at the pre-call depth (assuming depth-neutral
            // subroutines, the only form javac emitted); `ret` has no
            // static successors.
            if let Insn::Jsr(t) = insn {
                max = max.max(d + 1);
                work.push((*t, d + 1));
                work.push((i + 1, d));
                continue;
            }
            let (pops, pushes) = insn.stack_effect(pool)?;
            if d < pops {
                return Err(BytecodeError::StackUnderflow { index: i });
            }
            let after = d - pops + pushes;
            max = max.max(d.max(after));
            for t in insn.branch_targets() {
                work.push((t, after));
            }
            if insn.can_fall_through() && !matches!(insn, Insn::Ret(_)) {
                work.push((i + 1, after));
            }
        }
        Ok(max)
    }
}

// ---- Decoding --------------------------------------------------------------

fn read_u8(bytes: &[u8], pos: usize) -> Result<u8> {
    bytes
        .get(pos)
        .copied()
        .ok_or(BytecodeError::TruncatedInstruction { offset: pos })
}

fn read_u16(bytes: &[u8], pos: usize) -> Result<u16> {
    Ok(u16::from_be_bytes([
        read_u8(bytes, pos)?,
        read_u8(bytes, pos + 1)?,
    ]))
}

fn read_i16(bytes: &[u8], pos: usize) -> Result<i16> {
    Ok(read_u16(bytes, pos)? as i16)
}

fn read_i32(bytes: &[u8], pos: usize) -> Result<i32> {
    Ok(i32::from_be_bytes([
        read_u8(bytes, pos)?,
        read_u8(bytes, pos + 1)?,
        read_u8(bytes, pos + 2)?,
        read_u8(bytes, pos + 3)?,
    ]))
}

/// Resolves a relative branch to an absolute byte offset, stored as `usize`
/// inside the instruction until index remapping.
fn branch_target(base: usize, rel: i64) -> Result<usize> {
    let abs = base as i64 + rel;
    if abs < 0 {
        return Err(BytecodeError::BadBranchTarget {
            from: base,
            target: abs,
        });
    }
    Ok(abs as usize)
}

const LOAD_KINDS: [Kind; 5] = [Kind::Int, Kind::Long, Kind::Float, Kind::Double, Kind::Ref];
const ARRAY_KINDS: [AKind; 8] = [
    AKind::Int,
    AKind::Long,
    AKind::Float,
    AKind::Double,
    AKind::Ref,
    AKind::Byte,
    AKind::Char,
    AKind::Short,
];
const ICONDS: [ICond; 6] = [
    ICond::Eq,
    ICond::Ne,
    ICond::Lt,
    ICond::Ge,
    ICond::Gt,
    ICond::Le,
];
const NUM_KINDS: [crate::insn::NumKind; 4] = [
    crate::insn::NumKind::Int,
    crate::insn::NumKind::Long,
    crate::insn::NumKind::Float,
    crate::insn::NumKind::Double,
];

/// Decodes the instruction at `pos`, returning it (with byte-offset targets)
/// and its encoded length.
fn decode_one(bytes: &[u8], pos: usize) -> Result<(Insn, usize)> {
    use crate::insn::{ArithOp, LogicOp, NumKind, ShiftOp};
    let opcode = read_u8(bytes, pos)?;
    let insn = match opcode {
        op::NOP => (Insn::Nop, 1),
        op::ACONST_NULL => (Insn::AConstNull, 1),
        op::ICONST_M1..=op::ICONST_5 => (Insn::IConst(opcode as i32 - op::ICONST_0 as i32), 1),
        op::LCONST_0 | op::LCONST_1 => (Insn::LConst((opcode - op::LCONST_0) as i64), 1),
        op::FCONST_0..=op::FCONST_2 => (Insn::FConst((opcode - op::FCONST_0) as f32), 1),
        op::DCONST_0 | op::DCONST_1 => (Insn::DConst((opcode - op::DCONST_0) as f64), 1),
        op::BIPUSH => (Insn::IConst(read_u8(bytes, pos + 1)? as i8 as i32), 2),
        op::SIPUSH => (Insn::IConst(read_i16(bytes, pos + 1)? as i32), 3),
        op::LDC => (Insn::Ldc(read_u8(bytes, pos + 1)? as u16), 2),
        op::LDC_W => (Insn::Ldc(read_u16(bytes, pos + 1)?), 3),
        op::LDC2_W => (Insn::Ldc2(read_u16(bytes, pos + 1)?), 3),
        op::ILOAD..=op::ALOAD => {
            let kind = LOAD_KINDS[(opcode - op::ILOAD) as usize];
            (Insn::Load(kind, read_u8(bytes, pos + 1)? as u16), 2)
        }
        op::ILOAD_0..=op::ALOAD_3 => {
            let rel = opcode - op::ILOAD_0;
            let kind = LOAD_KINDS[(rel / 4) as usize];
            (Insn::Load(kind, (rel % 4) as u16), 1)
        }
        op::IALOAD..=op::SALOAD => (
            Insn::ArrayLoad(ARRAY_KINDS[(opcode - op::IALOAD) as usize]),
            1,
        ),
        op::ISTORE..=op::ASTORE => {
            let kind = LOAD_KINDS[(opcode - op::ISTORE) as usize];
            (Insn::Store(kind, read_u8(bytes, pos + 1)? as u16), 2)
        }
        op::ISTORE_0..=op::ASTORE_3 => {
            let rel = opcode - op::ISTORE_0;
            let kind = LOAD_KINDS[(rel / 4) as usize];
            (Insn::Store(kind, (rel % 4) as u16), 1)
        }
        op::IASTORE..=op::SASTORE => (
            Insn::ArrayStore(ARRAY_KINDS[(opcode - op::IASTORE) as usize]),
            1,
        ),
        op::POP => (Insn::Pop, 1),
        op::POP2 => (Insn::Pop2, 1),
        op::DUP => (Insn::Dup, 1),
        op::DUP_X1 => (Insn::DupX1, 1),
        op::DUP_X2 => (Insn::DupX2, 1),
        op::DUP2 => (Insn::Dup2, 1),
        op::DUP2_X1 => (Insn::Dup2X1, 1),
        op::DUP2_X2 => (Insn::Dup2X2, 1),
        op::SWAP => (Insn::Swap, 1),
        op::IADD..=0x77 => {
            let rel = opcode - op::IADD;
            let ops = [
                ArithOp::Add,
                ArithOp::Sub,
                ArithOp::Mul,
                ArithOp::Div,
                ArithOp::Rem,
                ArithOp::Neg,
            ];
            (
                Insn::Arith(NUM_KINDS[(rel % 4) as usize], ops[(rel / 4) as usize]),
                1,
            )
        }
        op::ISHL..=0x7D => {
            let rel = opcode - op::ISHL;
            let ops = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Ushr];
            let kind = if rel.is_multiple_of(2) {
                NumKind::Int
            } else {
                NumKind::Long
            };
            (Insn::Shift(kind, ops[(rel / 2) as usize]), 1)
        }
        op::IAND..=0x83 => {
            let rel = opcode - op::IAND;
            let ops = [LogicOp::And, LogicOp::Or, LogicOp::Xor];
            let kind = if rel.is_multiple_of(2) {
                NumKind::Int
            } else {
                NumKind::Long
            };
            (Insn::Logic(kind, ops[(rel / 2) as usize]), 1)
        }
        op::IINC => (
            Insn::IInc(
                read_u8(bytes, pos + 1)? as u16,
                read_u8(bytes, pos + 2)? as i8 as i16,
            ),
            3,
        ),
        op::I2L..=op::D2F => {
            let rel = opcode - op::I2L;
            let (from, all) = (
                [NumType::Int, NumType::Long, NumType::Float, NumType::Double][(rel / 3) as usize],
                [
                    [NumType::Long, NumType::Float, NumType::Double],
                    [NumType::Int, NumType::Float, NumType::Double],
                    [NumType::Int, NumType::Long, NumType::Double],
                    [NumType::Int, NumType::Long, NumType::Float],
                ],
            );
            (
                Insn::Convert(from, all[(rel / 3) as usize][(rel % 3) as usize]),
                1,
            )
        }
        op::I2B => (Insn::Convert(NumType::Int, NumType::Byte), 1),
        op::I2C => (Insn::Convert(NumType::Int, NumType::Char), 1),
        op::I2S => (Insn::Convert(NumType::Int, NumType::Short), 1),
        op::LCMP => (Insn::LCmp, 1),
        op::FCMPL => (Insn::FCmp(false), 1),
        op::FCMPG => (Insn::FCmp(true), 1),
        op::DCMPL => (Insn::DCmp(false), 1),
        op::DCMPG => (Insn::DCmp(true), 1),
        op::IFEQ..=op::IFLE => {
            let cond = ICONDS[(opcode - op::IFEQ) as usize];
            let t = branch_target(pos, read_i16(bytes, pos + 1)? as i64)?;
            (Insn::If(cond, t), 3)
        }
        op::IF_ICMPEQ..=op::IF_ICMPLE => {
            let cond = ICONDS[(opcode - op::IF_ICMPEQ) as usize];
            let t = branch_target(pos, read_i16(bytes, pos + 1)? as i64)?;
            (Insn::IfICmp(cond, t), 3)
        }
        op::IF_ACMPEQ | op::IF_ACMPNE => {
            let t = branch_target(pos, read_i16(bytes, pos + 1)? as i64)?;
            (Insn::IfACmp(opcode == op::IF_ACMPEQ, t), 3)
        }
        op::GOTO => (
            Insn::Goto(branch_target(pos, read_i16(bytes, pos + 1)? as i64)?),
            3,
        ),
        op::JSR => (
            Insn::Jsr(branch_target(pos, read_i16(bytes, pos + 1)? as i64)?),
            3,
        ),
        op::RET => (Insn::Ret(read_u8(bytes, pos + 1)? as u16), 2),
        op::TABLESWITCH => {
            let pad = (4 - (pos + 1) % 4) % 4;
            let mut p = pos + 1 + pad;
            let default = branch_target(pos, read_i32(bytes, p)? as i64)?;
            let low = read_i32(bytes, p + 4)?;
            let high = read_i32(bytes, p + 8)?;
            p += 12;
            // `high - low` overflows i32 for hostile extremes; widen first
            // and bound the arm count by what the code array could hold.
            let count_i64 = high as i64 - low as i64 + 1;
            if count_i64 < 1 || count_i64 > (bytes.len() as i64 / 4) + 1 {
                return Err(BytecodeError::BadBranchTarget {
                    from: pos,
                    target: high as i64,
                });
            }
            let count = count_i64 as usize;
            let mut targets = Vec::with_capacity(count);
            for k in 0..count {
                targets.push(branch_target(pos, read_i32(bytes, p + 4 * k)? as i64)?);
            }
            (
                Insn::TableSwitch {
                    default,
                    low,
                    targets,
                },
                1 + pad + 12 + 4 * count,
            )
        }
        op::LOOKUPSWITCH => {
            let pad = (4 - (pos + 1) % 4) % 4;
            let mut p = pos + 1 + pad;
            let default = branch_target(pos, read_i32(bytes, p)? as i64)?;
            let npairs = read_i32(bytes, p + 4)?;
            p += 8;
            // Bound by what the code array could hold (8 bytes per pair) so
            // hostile counts cannot trigger huge allocations.
            if npairs < 0 || npairs as i64 > (bytes.len() as i64 / 8) + 1 {
                return Err(BytecodeError::BadBranchTarget {
                    from: pos,
                    target: npairs as i64,
                });
            }
            let mut pairs = Vec::with_capacity(npairs as usize);
            for k in 0..npairs as usize {
                let key = read_i32(bytes, p + 8 * k)?;
                let t = branch_target(pos, read_i32(bytes, p + 8 * k + 4)? as i64)?;
                pairs.push((key, t));
            }
            (
                Insn::LookupSwitch { default, pairs },
                1 + pad + 8 + 8 * npairs as usize,
            )
        }
        op::IRETURN..=op::ARETURN => (
            Insn::Return(Some(LOAD_KINDS[(opcode - op::IRETURN) as usize])),
            1,
        ),
        op::RETURN => (Insn::Return(None), 1),
        op::GETSTATIC => (Insn::GetStatic(read_u16(bytes, pos + 1)?), 3),
        op::PUTSTATIC => (Insn::PutStatic(read_u16(bytes, pos + 1)?), 3),
        op::GETFIELD => (Insn::GetField(read_u16(bytes, pos + 1)?), 3),
        op::PUTFIELD => (Insn::PutField(read_u16(bytes, pos + 1)?), 3),
        op::INVOKEVIRTUAL => (Insn::InvokeVirtual(read_u16(bytes, pos + 1)?), 3),
        op::INVOKESPECIAL => (Insn::InvokeSpecial(read_u16(bytes, pos + 1)?), 3),
        op::INVOKESTATIC => (Insn::InvokeStatic(read_u16(bytes, pos + 1)?), 3),
        op::INVOKEINTERFACE => {
            // count and zero bytes are redundant; validate presence only.
            let idx = read_u16(bytes, pos + 1)?;
            read_u8(bytes, pos + 3)?;
            read_u8(bytes, pos + 4)?;
            (Insn::InvokeInterface(idx), 5)
        }
        op::NEW => (Insn::New(read_u16(bytes, pos + 1)?), 3),
        op::NEWARRAY => {
            let code = read_u8(bytes, pos + 1)?;
            let kind = AKind::from_newarray_code(code).ok_or(BytecodeError::UnknownOpcode {
                opcode: code,
                offset: pos + 1,
            })?;
            (Insn::NewArray(kind), 2)
        }
        op::ANEWARRAY => (Insn::ANewArray(read_u16(bytes, pos + 1)?), 3),
        op::ARRAYLENGTH => (Insn::ArrayLength, 1),
        op::ATHROW => (Insn::AThrow, 1),
        op::CHECKCAST => (Insn::CheckCast(read_u16(bytes, pos + 1)?), 3),
        op::INSTANCEOF => (Insn::InstanceOf(read_u16(bytes, pos + 1)?), 3),
        op::MONITORENTER => (Insn::MonitorEnter, 1),
        op::MONITOREXIT => (Insn::MonitorExit, 1),
        op::WIDE => {
            let sub = read_u8(bytes, pos + 1)?;
            match sub {
                op::ILOAD..=op::ALOAD => {
                    let kind = LOAD_KINDS[(sub - op::ILOAD) as usize];
                    (Insn::Load(kind, read_u16(bytes, pos + 2)?), 4)
                }
                op::ISTORE..=op::ASTORE => {
                    let kind = LOAD_KINDS[(sub - op::ISTORE) as usize];
                    (Insn::Store(kind, read_u16(bytes, pos + 2)?), 4)
                }
                op::RET => (Insn::Ret(read_u16(bytes, pos + 2)?), 4),
                op::IINC => (
                    Insn::IInc(read_u16(bytes, pos + 2)?, read_i16(bytes, pos + 4)?),
                    6,
                ),
                _ => {
                    return Err(BytecodeError::UnknownOpcode {
                        opcode: sub,
                        offset: pos + 1,
                    })
                }
            }
        }
        op::MULTIANEWARRAY => (
            Insn::MultiANewArray(read_u16(bytes, pos + 1)?, read_u8(bytes, pos + 3)?),
            4,
        ),
        op::IFNULL => (
            Insn::IfNull(branch_target(pos, read_i16(bytes, pos + 1)? as i64)?),
            3,
        ),
        op::IFNONNULL => (
            Insn::IfNonNull(branch_target(pos, read_i16(bytes, pos + 1)? as i64)?),
            3,
        ),
        op::GOTO_W => (
            Insn::Goto(branch_target(pos, read_i32(bytes, pos + 1)? as i64)?),
            5,
        ),
        op::JSR_W => (
            Insn::Jsr(branch_target(pos, read_i32(bytes, pos + 1)? as i64)?),
            5,
        ),
        other => {
            return Err(BytecodeError::UnknownOpcode {
                opcode: other,
                offset: pos,
            })
        }
    };
    Ok(insn)
}

// ---- Encoding --------------------------------------------------------------

/// Size in bytes of `insn` when placed at `offset`.
fn encoded_size(insn: &Insn, offset: u32, wide_goto: bool) -> Result<usize> {
    Ok(match insn {
        Insn::Nop
        | Insn::AConstNull
        | Insn::ArrayLoad(_)
        | Insn::ArrayStore(_)
        | Insn::Pop
        | Insn::Pop2
        | Insn::Dup
        | Insn::DupX1
        | Insn::DupX2
        | Insn::Dup2
        | Insn::Dup2X1
        | Insn::Dup2X2
        | Insn::Swap
        | Insn::Arith(_, _)
        | Insn::Shift(_, _)
        | Insn::Logic(_, _)
        | Insn::Convert(_, _)
        | Insn::LCmp
        | Insn::FCmp(_)
        | Insn::DCmp(_)
        | Insn::Return(_)
        | Insn::ArrayLength
        | Insn::AThrow
        | Insn::MonitorEnter
        | Insn::MonitorExit => 1,
        Insn::IConst(v) => match v {
            -1..=5 => 1,
            -128..=127 => 2,
            -32768..=32767 => 3,
            _ => return Err(BytecodeError::UnencodableConstant(v.to_string())),
        },
        Insn::LConst(v) => match v {
            0 | 1 => 1,
            _ => return Err(BytecodeError::UnencodableConstant(v.to_string())),
        },
        Insn::FConst(v) => {
            if *v == 0.0 || *v == 1.0 || *v == 2.0 {
                1
            } else {
                return Err(BytecodeError::UnencodableConstant(v.to_string()));
            }
        }
        Insn::DConst(v) => {
            if *v == 0.0 || *v == 1.0 {
                1
            } else {
                return Err(BytecodeError::UnencodableConstant(v.to_string()));
            }
        }
        Insn::Ldc(idx) => {
            if *idx <= 255 {
                2
            } else {
                3
            }
        }
        Insn::Ldc2(_) => 3,
        Insn::Load(_, slot) | Insn::Store(_, slot) => match slot {
            0..=3 => 1,
            4..=255 => 2,
            _ => 4,
        },
        Insn::IInc(slot, c) => {
            if *slot <= 255 && (-128..=127).contains(c) {
                3
            } else {
                6
            }
        }
        Insn::If(_, _)
        | Insn::IfICmp(_, _)
        | Insn::IfACmp(_, _)
        | Insn::IfNull(_)
        | Insn::IfNonNull(_) => 3,
        Insn::Goto(_) | Insn::Jsr(_) => {
            if wide_goto {
                5
            } else {
                3
            }
        }
        Insn::Ret(slot) => {
            if *slot <= 255 {
                2
            } else {
                4
            }
        }
        Insn::TableSwitch { targets, .. } => {
            let pad = (4 - (offset as usize + 1) % 4) % 4;
            1 + pad + 12 + 4 * targets.len()
        }
        Insn::LookupSwitch { pairs, .. } => {
            let pad = (4 - (offset as usize + 1) % 4) % 4;
            1 + pad + 8 + 8 * pairs.len()
        }
        Insn::GetStatic(_)
        | Insn::PutStatic(_)
        | Insn::GetField(_)
        | Insn::PutField(_)
        | Insn::InvokeVirtual(_)
        | Insn::InvokeSpecial(_)
        | Insn::InvokeStatic(_)
        | Insn::New(_)
        | Insn::ANewArray(_)
        | Insn::CheckCast(_)
        | Insn::InstanceOf(_) => 3,
        Insn::InvokeInterface(_) => 5,
        Insn::NewArray(_) => 2,
        Insn::MultiANewArray(_, _) => 4,
    })
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_i16(out: &mut Vec<u8>, v: i16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn rel16(index: usize, from: u32, to: u32) -> Result<i16> {
    let disp = to as i64 - from as i64;
    i16::try_from(disp).map_err(|_| BytecodeError::BranchOverflow { index })
}

/// Emits `insn` (located at `offsets[i]`) into `out`.
fn encode_one(
    insn: &Insn,
    i: usize,
    offsets: &[u32],
    wide_goto: bool,
    out: &mut Vec<u8>,
) -> Result<()> {
    use crate::insn::{ArithOp, LogicOp, NumKind, ShiftOp};
    let at = offsets[i];
    match insn {
        Insn::Nop => out.push(op::NOP),
        Insn::AConstNull => out.push(op::ACONST_NULL),
        Insn::IConst(v) => match v {
            -1..=5 => out.push((op::ICONST_0 as i32 + v) as u8),
            -128..=127 => {
                out.push(op::BIPUSH);
                out.push(*v as i8 as u8);
            }
            -32768..=32767 => {
                out.push(op::SIPUSH);
                push_i16(out, *v as i16);
            }
            _ => return Err(BytecodeError::UnencodableConstant(v.to_string())),
        },
        Insn::LConst(v) => out.push(op::LCONST_0 + *v as u8),
        Insn::FConst(v) => out.push(op::FCONST_0 + *v as u8),
        Insn::DConst(v) => out.push(op::DCONST_0 + *v as u8),
        Insn::Ldc(idx) => {
            if *idx <= 255 {
                out.push(op::LDC);
                out.push(*idx as u8);
            } else {
                out.push(op::LDC_W);
                push_u16(out, *idx);
            }
        }
        Insn::Ldc2(idx) => {
            out.push(op::LDC2_W);
            push_u16(out, *idx);
        }
        Insn::Load(kind, slot) => match slot {
            0..=3 => out.push(op::ILOAD_0 + kind.family_index() * 4 + *slot as u8),
            4..=255 => {
                out.push(op::ILOAD + kind.family_index());
                out.push(*slot as u8);
            }
            _ => {
                out.push(op::WIDE);
                out.push(op::ILOAD + kind.family_index());
                push_u16(out, *slot);
            }
        },
        Insn::Store(kind, slot) => match slot {
            0..=3 => out.push(op::ISTORE_0 + kind.family_index() * 4 + *slot as u8),
            4..=255 => {
                out.push(op::ISTORE + kind.family_index());
                out.push(*slot as u8);
            }
            _ => {
                out.push(op::WIDE);
                out.push(op::ISTORE + kind.family_index());
                push_u16(out, *slot);
            }
        },
        Insn::ArrayLoad(kind) => out.push(op::IALOAD + kind.family_index()),
        Insn::ArrayStore(kind) => out.push(op::IASTORE + kind.family_index()),
        Insn::Pop => out.push(op::POP),
        Insn::Pop2 => out.push(op::POP2),
        Insn::Dup => out.push(op::DUP),
        Insn::DupX1 => out.push(op::DUP_X1),
        Insn::DupX2 => out.push(op::DUP_X2),
        Insn::Dup2 => out.push(op::DUP2),
        Insn::Dup2X1 => out.push(op::DUP2_X1),
        Insn::Dup2X2 => out.push(op::DUP2_X2),
        Insn::Swap => out.push(op::SWAP),
        Insn::Arith(kind, arith) => {
            let base = match arith {
                ArithOp::Add => op::IADD,
                ArithOp::Sub => op::ISUB,
                ArithOp::Mul => op::IMUL,
                ArithOp::Div => op::IDIV,
                ArithOp::Rem => op::IREM,
                ArithOp::Neg => op::INEG,
            };
            out.push(base + kind.family_index());
        }
        Insn::Shift(kind, shift) => {
            let base = match shift {
                ShiftOp::Shl => op::ISHL,
                ShiftOp::Shr => op::ISHR,
                ShiftOp::Ushr => op::IUSHR,
            };
            let k = match kind {
                NumKind::Int => 0,
                NumKind::Long => 1,
                _ => return Err(BytecodeError::UnencodableConstant("float shift".into())),
            };
            out.push(base + k);
        }
        Insn::Logic(kind, logic) => {
            let base = match logic {
                LogicOp::And => op::IAND,
                LogicOp::Or => op::IOR,
                LogicOp::Xor => op::IXOR,
            };
            let k = match kind {
                NumKind::Int => 0,
                NumKind::Long => 1,
                _ => return Err(BytecodeError::UnencodableConstant("float logic".into())),
            };
            out.push(base + k);
        }
        Insn::IInc(slot, c) => {
            if *slot <= 255 && (-128..=127).contains(c) {
                out.push(op::IINC);
                out.push(*slot as u8);
                out.push(*c as i8 as u8);
            } else {
                out.push(op::WIDE);
                out.push(op::IINC);
                push_u16(out, *slot);
                push_i16(out, *c);
            }
        }
        Insn::Convert(from, to) => out.push(convert_opcode(*from, *to)?),
        Insn::LCmp => out.push(op::LCMP),
        Insn::FCmp(g) => out.push(if *g { op::FCMPG } else { op::FCMPL }),
        Insn::DCmp(g) => out.push(if *g { op::DCMPG } else { op::DCMPL }),
        Insn::If(cond, t) => {
            out.push(op::IFEQ + cond.family_index());
            push_i16(out, rel16(i, at, offsets[*t])?);
        }
        Insn::IfICmp(cond, t) => {
            out.push(op::IF_ICMPEQ + cond.family_index());
            push_i16(out, rel16(i, at, offsets[*t])?);
        }
        Insn::IfACmp(eq, t) => {
            out.push(if *eq { op::IF_ACMPEQ } else { op::IF_ACMPNE });
            push_i16(out, rel16(i, at, offsets[*t])?);
        }
        Insn::IfNull(t) => {
            out.push(op::IFNULL);
            push_i16(out, rel16(i, at, offsets[*t])?);
        }
        Insn::IfNonNull(t) => {
            out.push(op::IFNONNULL);
            push_i16(out, rel16(i, at, offsets[*t])?);
        }
        Insn::Goto(t) => {
            if wide_goto {
                out.push(op::GOTO_W);
                push_i32(out, offsets[*t] as i32 - at as i32);
            } else {
                out.push(op::GOTO);
                push_i16(out, rel16(i, at, offsets[*t])?);
            }
        }
        Insn::Jsr(t) => {
            if wide_goto {
                out.push(op::JSR_W);
                push_i32(out, offsets[*t] as i32 - at as i32);
            } else {
                out.push(op::JSR);
                push_i16(out, rel16(i, at, offsets[*t])?);
            }
        }
        Insn::Ret(slot) => {
            if *slot <= 255 {
                out.push(op::RET);
                out.push(*slot as u8);
            } else {
                out.push(op::WIDE);
                out.push(op::RET);
                push_u16(out, *slot);
            }
        }
        Insn::TableSwitch {
            default,
            low,
            targets,
        } => {
            out.push(op::TABLESWITCH);
            let pad = (4 - (at as usize + 1) % 4) % 4;
            out.extend(std::iter::repeat_n(0, pad));
            push_i32(out, offsets[*default] as i32 - at as i32);
            push_i32(out, *low);
            push_i32(out, *low + targets.len() as i32 - 1);
            for t in targets {
                push_i32(out, offsets[*t] as i32 - at as i32);
            }
        }
        Insn::LookupSwitch { default, pairs } => {
            out.push(op::LOOKUPSWITCH);
            let pad = (4 - (at as usize + 1) % 4) % 4;
            out.extend(std::iter::repeat_n(0, pad));
            push_i32(out, offsets[*default] as i32 - at as i32);
            push_i32(out, pairs.len() as i32);
            for (key, t) in pairs {
                push_i32(out, *key);
                push_i32(out, offsets[*t] as i32 - at as i32);
            }
        }
        Insn::Return(None) => out.push(op::RETURN),
        Insn::Return(Some(kind)) => out.push(op::IRETURN + kind.family_index()),
        Insn::GetStatic(idx) => {
            out.push(op::GETSTATIC);
            push_u16(out, *idx);
        }
        Insn::PutStatic(idx) => {
            out.push(op::PUTSTATIC);
            push_u16(out, *idx);
        }
        Insn::GetField(idx) => {
            out.push(op::GETFIELD);
            push_u16(out, *idx);
        }
        Insn::PutField(idx) => {
            out.push(op::PUTFIELD);
            push_u16(out, *idx);
        }
        Insn::InvokeVirtual(idx) => {
            out.push(op::INVOKEVIRTUAL);
            push_u16(out, *idx);
        }
        Insn::InvokeSpecial(idx) => {
            out.push(op::INVOKESPECIAL);
            push_u16(out, *idx);
        }
        Insn::InvokeStatic(idx) => {
            out.push(op::INVOKESTATIC);
            push_u16(out, *idx);
        }
        Insn::InvokeInterface(idx) => {
            out.push(op::INVOKEINTERFACE);
            push_u16(out, *idx);
            // The historical count byte is redundant with the descriptor but
            // still required by the format; emit 0 placeholders (our decoder
            // and interpreter derive the count from the descriptor).
            out.push(0);
            out.push(0);
        }
        Insn::New(idx) => {
            out.push(op::NEW);
            push_u16(out, *idx);
        }
        Insn::NewArray(kind) => {
            out.push(op::NEWARRAY);
            out.push(kind.newarray_code().ok_or_else(|| {
                BytecodeError::UnencodableConstant("newarray of reference kind".into())
            })?);
        }
        Insn::ANewArray(idx) => {
            out.push(op::ANEWARRAY);
            push_u16(out, *idx);
        }
        Insn::ArrayLength => out.push(op::ARRAYLENGTH),
        Insn::AThrow => out.push(op::ATHROW),
        Insn::CheckCast(idx) => {
            out.push(op::CHECKCAST);
            push_u16(out, *idx);
        }
        Insn::InstanceOf(idx) => {
            out.push(op::INSTANCEOF);
            push_u16(out, *idx);
        }
        Insn::MonitorEnter => out.push(op::MONITORENTER),
        Insn::MonitorExit => out.push(op::MONITOREXIT),
        Insn::MultiANewArray(idx, dims) => {
            out.push(op::MULTIANEWARRAY);
            push_u16(out, *idx);
            out.push(*dims);
        }
    }
    Ok(())
}

fn convert_opcode(from: NumType, to: NumType) -> Result<u8> {
    use NumType::*;
    Ok(match (from, to) {
        (Int, Long) => op::I2L,
        (Int, Float) => op::I2F,
        (Int, Double) => op::I2D,
        (Long, Int) => op::L2I,
        (Long, Float) => op::L2F,
        (Long, Double) => op::L2D,
        (Float, Int) => op::F2I,
        (Float, Long) => op::F2L,
        (Float, Double) => op::F2D,
        (Double, Int) => op::D2I,
        (Double, Long) => op::D2L,
        (Double, Float) => op::D2F,
        (Int, Byte) => op::I2B,
        (Int, Char) => op::I2C,
        (Int, Short) => op::I2S,
        _ => {
            return Err(BytecodeError::UnencodableConstant(format!(
                "conversion {from:?} -> {to:?}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::NumKind;

    fn round_trip(code: Code, pool: &ConstPool) -> Code {
        let attr = code.encode(pool).unwrap();
        Code::decode(&attr).unwrap()
    }

    #[test]
    fn simple_body_round_trips() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![
                Insn::IConst(0),
                Insn::Store(Kind::Int, 1),
                Insn::Load(Kind::Int, 1),
                Insn::IConst(100),
                Insn::IfICmp(ICond::Ge, 8),
                Insn::IInc(1, 1),
                Insn::Nop,
                Insn::Goto(2),
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 2,
        };
        assert_eq!(round_trip(code.clone(), &pool), code);
    }

    #[test]
    fn max_stack_is_computed() {
        let mut pool = ConstPool::new();
        let m = pool.methodref("F", "f", "(II)I").unwrap();
        let code = Code {
            insns: vec![
                Insn::IConst(1),
                Insn::IConst(2),
                Insn::InvokeStatic(m),
                Insn::Return(Some(Kind::Int)),
            ],
            handlers: vec![],
            max_locals: 0,
        };
        let attr = code.encode(&pool).unwrap();
        assert_eq!(attr.max_stack, 2);
    }

    #[test]
    fn switches_round_trip_with_padding() {
        let pool = ConstPool::new();
        for leading_nops in 0..4 {
            let mut insns: Vec<Insn> = std::iter::repeat_n(Insn::Nop, leading_nops).collect();
            let base = insns.len();
            insns.push(Insn::IConst(2));
            insns.push(Insn::TableSwitch {
                default: base + 4,
                low: 0,
                targets: vec![base + 2, base + 3],
            });
            insns.push(Insn::Return(None));
            insns.push(Insn::Return(None));
            insns.push(Insn::Return(None));
            insns.push(Insn::IConst(5));
            insns.push(Insn::LookupSwitch {
                default: base + 8,
                pairs: vec![(-3, base + 7), (100, base + 8)],
            });
            insns.push(Insn::Return(None));
            insns.push(Insn::Return(None));
            let code = Code {
                insns,
                handlers: vec![],
                max_locals: 0,
            };
            assert_eq!(round_trip(code.clone(), &pool), code, "nops={leading_nops}");
        }
    }

    #[test]
    fn wide_locals_round_trip() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![
                Insn::Load(Kind::Long, 300),
                Insn::Store(Kind::Long, 302),
                Insn::IInc(400, 1000),
                Insn::Load(Kind::Int, 200),
                Insn::Return(Some(Kind::Int)),
            ],
            handlers: vec![],
            max_locals: 500,
        };
        assert_eq!(round_trip(code.clone(), &pool), code);
    }

    #[test]
    fn handlers_round_trip() {
        let mut pool = ConstPool::new();
        let exc = pool.class("java/lang/Exception").unwrap();
        let code = Code {
            insns: vec![
                Insn::Nop,
                Insn::Nop,
                Insn::Goto(4),
                Insn::Pop, // handler: drop the exception
                Insn::Return(None),
            ],
            handlers: vec![Handler {
                start: 0,
                end: 2,
                handler: 3,
                catch_type: exc,
            }],
            max_locals: 0,
        };
        let rt = round_trip(code.clone(), &pool);
        assert_eq!(rt.handlers, code.handlers);
    }

    #[test]
    fn stack_mismatch_is_detected() {
        let pool = ConstPool::new();
        // Two paths reach instruction 3 with different depths.
        let code = Code {
            insns: vec![
                Insn::IConst(1),        // depth 1
                Insn::If(ICond::Eq, 3), // branch to 3 with depth 0
                Insn::IConst(7),        // fall-through: depth 1 at 3
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(matches!(
            code.compute_max_stack(&pool),
            Err(BytecodeError::StackMismatch { index: 3, .. })
        ));
    }

    #[test]
    fn stack_underflow_is_detected() {
        let pool = ConstPool::new();
        let code = Code {
            insns: vec![Insn::Pop, Insn::Return(None)],
            handlers: vec![],
            max_locals: 0,
        };
        assert!(matches!(
            code.compute_max_stack(&pool),
            Err(BytecodeError::StackUnderflow { index: 0 })
        ));
    }

    #[test]
    fn branch_into_middle_of_instruction_rejected() {
        // bipush 7 (2 bytes), goto -1 targeting the operand byte.
        let attr = CodeAttribute {
            max_stack: 1,
            max_locals: 0,
            code: vec![op::BIPUSH, 7, op::GOTO, 0xFF, 0xFF],
            exception_table: vec![],
            attributes: vec![],
        };
        assert!(matches!(
            Code::decode(&attr),
            Err(BytecodeError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn arithmetic_families_round_trip() {
        use crate::insn::{ArithOp, LogicOp, ShiftOp};
        let pool = ConstPool::new();
        let mut insns = Vec::new();
        for kind in [NumKind::Int, NumKind::Long, NumKind::Float, NumKind::Double] {
            for a in [
                ArithOp::Add,
                ArithOp::Sub,
                ArithOp::Mul,
                ArithOp::Div,
                ArithOp::Rem,
            ] {
                insns.push(Insn::Load(
                    match kind {
                        NumKind::Int => Kind::Int,
                        NumKind::Long => Kind::Long,
                        NumKind::Float => Kind::Float,
                        NumKind::Double => Kind::Double,
                    },
                    0,
                ));
                insns.push(Insn::Load(
                    match kind {
                        NumKind::Int => Kind::Int,
                        NumKind::Long => Kind::Long,
                        NumKind::Float => Kind::Float,
                        NumKind::Double => Kind::Double,
                    },
                    2,
                ));
                insns.push(Insn::Arith(kind, a));
                insns.push(if kind.width() == 2 {
                    Insn::Pop2
                } else {
                    Insn::Pop
                });
            }
        }
        for kind in [NumKind::Int, NumKind::Long] {
            for s in [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Ushr] {
                insns.push(Insn::Shift(kind, s));
            }
            for l in [LogicOp::And, LogicOp::Or, LogicOp::Xor] {
                insns.push(Insn::Logic(kind, l));
            }
        }
        insns.push(Insn::Return(None));
        // Encode without stack computation (shift/logic here lack operands);
        // just check the opcode round trip via a body with no verification.
        let code = Code {
            insns: insns.clone(),
            handlers: vec![],
            max_locals: 4,
        };
        let mut bytes = Vec::new();
        let mut offsets = vec![0u32; insns.len() + 1];
        let mut pos = 0u32;
        for (i, insn) in insns.iter().enumerate() {
            offsets[i] = pos;
            pos += encoded_size(insn, pos, false).unwrap() as u32;
        }
        offsets[insns.len()] = pos;
        for (i, insn) in insns.iter().enumerate() {
            encode_one(insn, i, &offsets, false, &mut bytes).unwrap();
        }
        let attr = CodeAttribute {
            max_stack: 8,
            max_locals: 4,
            code: bytes,
            exception_table: vec![],
            attributes: vec![],
        };
        let decoded = Code::decode(&attr).unwrap();
        assert_eq!(decoded.insns, code.insns);
        let _ = pool;
    }

    #[test]
    fn conversions_round_trip() {
        let pool = ConstPool::new();
        use NumType::*;
        let pairs = [
            (Int, Long),
            (Int, Float),
            (Int, Double),
            (Long, Int),
            (Long, Float),
            (Long, Double),
            (Float, Int),
            (Float, Long),
            (Float, Double),
            (Double, Int),
            (Double, Long),
            (Double, Float),
            (Int, Byte),
            (Int, Char),
            (Int, Short),
        ];
        for (from, to) in pairs {
            let load_kind = match from {
                Int => Kind::Int,
                Long => Kind::Long,
                Float => Kind::Float,
                Double => Kind::Double,
                _ => unreachable!(),
            };
            let code = Code {
                insns: vec![
                    Insn::Load(load_kind, 0),
                    Insn::Convert(from, to),
                    if to.width() == 2 {
                        Insn::Pop2
                    } else {
                        Insn::Pop
                    },
                    Insn::Return(None),
                ],
                handlers: vec![],
                max_locals: 2,
            };
            assert_eq!(round_trip(code.clone(), &pool), code, "{from:?} -> {to:?}");
        }
    }
}
