//! Error type for bytecode decoding, encoding, and editing.

use std::fmt;

use dvm_classfile::ClassFileError;

/// Errors produced while decoding, encoding, or editing bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum BytecodeError {
    /// The code array ended in the middle of an instruction.
    TruncatedInstruction {
        /// Byte offset of the instruction's opcode.
        offset: usize,
    },
    /// An opcode byte is not a valid JVM instruction.
    UnknownOpcode {
        /// The opcode value.
        opcode: u8,
        /// Byte offset where it was found.
        offset: usize,
    },
    /// A branch landed inside another instruction.
    BadBranchTarget {
        /// Byte offset of the branching instruction.
        from: usize,
        /// The invalid target byte offset.
        target: i64,
    },
    /// A branch target index is out of range for the instruction list.
    BadTargetIndex {
        /// The out-of-range index.
        index: usize,
        /// Number of instructions in the body.
        len: usize,
    },
    /// An encoded branch displacement does not fit its 16-bit field.
    BranchOverflow {
        /// Index of the branching instruction.
        index: usize,
    },
    /// A constant used with the wrong instruction (e.g. `ldc` of a long).
    BadConstantKind {
        /// Constant-pool index.
        index: u16,
        /// Kind actually found.
        found: &'static str,
        /// Instruction context.
        context: &'static str,
    },
    /// A constant value cannot be encoded by this instruction form; use the
    /// constant pool instead.
    UnencodableConstant(String),
    /// Operand-stack depths disagree at a control-flow merge point.
    StackMismatch {
        /// Instruction index of the merge.
        index: usize,
        /// Depth arriving along the earlier path.
        expected: u16,
        /// Depth arriving along the later path.
        found: u16,
    },
    /// The operand stack would underflow.
    StackUnderflow {
        /// Instruction index.
        index: usize,
    },
    /// Code layout failed to stabilize (pathological switch padding).
    LayoutDiverged,
    /// The encoded method body exceeds the 65535-byte limit.
    CodeTooLarge(usize),
    /// An underlying class-file error.
    ClassFile(ClassFileError),
}

impl fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BytecodeError::TruncatedInstruction { offset } => {
                write!(f, "instruction at byte {offset} is truncated")
            }
            BytecodeError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#04x} at byte {offset}")
            }
            BytecodeError::BadBranchTarget { from, target } => {
                write!(f, "branch from byte {from} targets invalid offset {target}")
            }
            BytecodeError::BadTargetIndex { index, len } => {
                write!(f, "branch target index {index} out of range (len {len})")
            }
            BytecodeError::BranchOverflow { index } => {
                write!(
                    f,
                    "branch at instruction {index} does not fit a 16-bit offset"
                )
            }
            BytecodeError::BadConstantKind {
                index,
                found,
                context,
            } => {
                write!(f, "constant {index} is a {found}, invalid for {context}")
            }
            BytecodeError::UnencodableConstant(v) => {
                write!(f, "constant {v} requires a constant-pool entry")
            }
            BytecodeError::StackMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "stack depth mismatch at instruction {index}: {expected} vs {found}"
            ),
            BytecodeError::StackUnderflow { index } => {
                write!(f, "operand stack underflow at instruction {index}")
            }
            BytecodeError::LayoutDiverged => write!(f, "code layout failed to stabilize"),
            BytecodeError::CodeTooLarge(n) => {
                write!(f, "method body of {n} bytes exceeds the 65535-byte limit")
            }
            BytecodeError::ClassFile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BytecodeError {}

impl From<ClassFileError> for BytecodeError {
    fn from(e: ClassFileError) -> Self {
        BytecodeError::ClassFile(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, BytecodeError>;
