//! A label-based assembler for synthesizing method bodies.
//!
//! The workload generator and the rewriting services build injected code
//! with this API instead of hand-counting instruction indices:
//!
//! ```
//! use dvm_bytecode::asm::Asm;
//! use dvm_bytecode::insn::{ICond, Kind};
//! use dvm_classfile::pool::ConstPool;
//!
//! let mut pool = ConstPool::new();
//! let mut a = Asm::new(2);
//! let loop_top = a.new_label();
//! let done = a.new_label();
//! a.iconst(0).istore(1);
//! a.place(loop_top);
//! a.iload(1).iconst(10).if_icmp(ICond::Ge, done);
//! a.iinc(1, 1).goto(loop_top);
//! a.place(done);
//! a.iload(1).ret_val(Kind::Int);
//! let code = a.finish().unwrap();
//! assert!(code.encode(&pool).is_ok());
//! ```

use std::collections::HashMap;

use crate::code::{Code, Handler};
use crate::error::{BytecodeError, Result};
use crate::insn::{AKind, ArithOp, ICond, Insn, Kind, LogicOp, NumKind, NumType, ShiftOp};

/// An opaque forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// The assembler. Emits [`Insn`] values and resolves labels to instruction
/// indices when finished.
#[derive(Debug, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    // Instruction emitted with a label target carries usize::MAX - label id;
    // resolved in finish(). Tracked separately for clarity:
    pending: Vec<(usize, Label)>, // (insn index, label), applied via map_targets
    placed: HashMap<Label, usize>,
    next_label: usize,
    handlers: Vec<(Label, Label, Label, u16)>,
    max_locals: u16,
}

impl Asm {
    /// Creates an assembler for a body with `max_locals` local slots.
    pub fn new(max_locals: u16) -> Asm {
        Asm {
            max_locals,
            ..Asm::default()
        }
    }

    /// Allocates a fresh, unplaced label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the next instruction to be emitted.
    pub fn place(&mut self, label: Label) -> &mut Self {
        self.placed.insert(label, self.insns.len());
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Raises `max_locals` to at least `n`.
    pub fn reserve_locals(&mut self, n: u16) -> &mut Self {
        self.max_locals = self.max_locals.max(n);
        self
    }

    /// Emits an arbitrary instruction (with already-resolved targets).
    pub fn raw(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    fn branch(&mut self, insn: Insn, label: Label) -> &mut Self {
        self.pending.push((self.insns.len(), label));
        self.insns.push(insn);
        self
    }

    // ---- Constants ----

    /// Pushes an `int` constant (chooses the shortest form; values outside
    /// `i16` must be loaded via `ldc` from the pool instead).
    pub fn iconst(&mut self, v: i32) -> &mut Self {
        self.raw(Insn::IConst(v))
    }

    /// Pushes `null`.
    pub fn aconst_null(&mut self) -> &mut Self {
        self.raw(Insn::AConstNull)
    }

    /// Pushes a constant-pool entry (`ldc`).
    pub fn ldc(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::Ldc(index))
    }

    /// Pushes a two-slot constant-pool entry (`ldc2_w`).
    pub fn ldc2(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::Ldc2(index))
    }

    /// Pushes `lconst_0`/`lconst_1`.
    pub fn lconst(&mut self, v: i64) -> &mut Self {
        self.raw(Insn::LConst(v))
    }

    // ---- Locals ----

    /// Loads an `int` local.
    pub fn iload(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Load(Kind::Int, slot))
    }

    /// Stores an `int` local.
    pub fn istore(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Store(Kind::Int, slot))
    }

    /// Loads a reference local.
    pub fn aload(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Load(Kind::Ref, slot))
    }

    /// Stores a reference local.
    pub fn astore(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Store(Kind::Ref, slot))
    }

    /// Loads a `long` local.
    pub fn lload(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Load(Kind::Long, slot))
    }

    /// Stores a `long` local.
    pub fn lstore(&mut self, slot: u16) -> &mut Self {
        self.raw(Insn::Store(Kind::Long, slot))
    }

    /// Typed local load.
    pub fn load(&mut self, kind: Kind, slot: u16) -> &mut Self {
        self.raw(Insn::Load(kind, slot))
    }

    /// Typed local store.
    pub fn store(&mut self, kind: Kind, slot: u16) -> &mut Self {
        self.raw(Insn::Store(kind, slot))
    }

    /// `iinc slot, delta`.
    pub fn iinc(&mut self, slot: u16, delta: i16) -> &mut Self {
        self.raw(Insn::IInc(slot, delta))
    }

    // ---- Arrays ----

    /// Array element load.
    pub fn array_load(&mut self, kind: AKind) -> &mut Self {
        self.raw(Insn::ArrayLoad(kind))
    }

    /// Array element store.
    pub fn array_store(&mut self, kind: AKind) -> &mut Self {
        self.raw(Insn::ArrayStore(kind))
    }

    /// `newarray` of a primitive kind.
    pub fn newarray(&mut self, kind: AKind) -> &mut Self {
        self.raw(Insn::NewArray(kind))
    }

    /// `anewarray` of a pool class.
    pub fn anewarray(&mut self, class_index: u16) -> &mut Self {
        self.raw(Insn::ANewArray(class_index))
    }

    /// `arraylength`.
    pub fn arraylength(&mut self) -> &mut Self {
        self.raw(Insn::ArrayLength)
    }

    // ---- Stack ----

    /// `dup`.
    pub fn dup(&mut self) -> &mut Self {
        self.raw(Insn::Dup)
    }

    /// `pop`.
    pub fn pop(&mut self) -> &mut Self {
        self.raw(Insn::Pop)
    }

    /// `swap`.
    pub fn swap(&mut self) -> &mut Self {
        self.raw(Insn::Swap)
    }

    // ---- Arithmetic ----

    /// Typed arithmetic.
    pub fn arith(&mut self, kind: NumKind, op: ArithOp) -> &mut Self {
        self.raw(Insn::Arith(kind, op))
    }

    /// `iadd`.
    pub fn iadd(&mut self) -> &mut Self {
        self.arith(NumKind::Int, ArithOp::Add)
    }

    /// `isub`.
    pub fn isub(&mut self) -> &mut Self {
        self.arith(NumKind::Int, ArithOp::Sub)
    }

    /// `imul`.
    pub fn imul(&mut self) -> &mut Self {
        self.arith(NumKind::Int, ArithOp::Mul)
    }

    /// `irem`.
    pub fn irem(&mut self) -> &mut Self {
        self.arith(NumKind::Int, ArithOp::Rem)
    }

    /// Typed shift.
    pub fn shift(&mut self, kind: NumKind, op: ShiftOp) -> &mut Self {
        self.raw(Insn::Shift(kind, op))
    }

    /// Typed bitwise logic.
    pub fn logic(&mut self, kind: NumKind, op: LogicOp) -> &mut Self {
        self.raw(Insn::Logic(kind, op))
    }

    /// Numeric conversion.
    pub fn convert(&mut self, from: NumType, to: NumType) -> &mut Self {
        self.raw(Insn::Convert(from, to))
    }

    // ---- Control flow ----

    /// Conditional branch against zero.
    pub fn if_(&mut self, cond: ICond, target: Label) -> &mut Self {
        self.branch(Insn::If(cond, usize::MAX), target)
    }

    /// Conditional branch comparing two ints.
    pub fn if_icmp(&mut self, cond: ICond, target: Label) -> &mut Self {
        self.branch(Insn::IfICmp(cond, usize::MAX), target)
    }

    /// Branch when two references are equal (`eq = true`) or unequal.
    pub fn if_acmp(&mut self, eq: bool, target: Label) -> &mut Self {
        self.branch(Insn::IfACmp(eq, usize::MAX), target)
    }

    /// Branch when the reference on top of the stack is null.
    pub fn if_null(&mut self, target: Label) -> &mut Self {
        self.branch(Insn::IfNull(usize::MAX), target)
    }

    /// Branch when the reference on top of the stack is not null.
    pub fn if_nonnull(&mut self, target: Label) -> &mut Self {
        self.branch(Insn::IfNonNull(usize::MAX), target)
    }

    /// Unconditional branch.
    pub fn goto(&mut self, target: Label) -> &mut Self {
        self.branch(Insn::Goto(usize::MAX), target)
    }

    /// `tableswitch` over labels for keys `low..`.
    pub fn tableswitch(&mut self, low: i32, targets: &[Label], default: Label) -> &mut Self {
        let idx = self.insns.len();
        // Labels are queued positionally — default first, then the arms —
        // matching the order map_targets visits the slots during finish().
        self.pending.push((idx, default));
        for l in targets {
            self.pending.push((idx, *l));
        }
        self.insns.push(Insn::TableSwitch {
            default: usize::MAX,
            low,
            targets: vec![usize::MAX; targets.len()],
        });
        self
    }

    /// Typed return.
    pub fn ret_val(&mut self, kind: Kind) -> &mut Self {
        self.raw(Insn::Return(Some(kind)))
    }

    /// `return` (void).
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Insn::Return(None))
    }

    /// `athrow`.
    pub fn athrow(&mut self) -> &mut Self {
        self.raw(Insn::AThrow)
    }

    // ---- References ----

    /// `getstatic`.
    pub fn getstatic(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::GetStatic(index))
    }

    /// `putstatic`.
    pub fn putstatic(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::PutStatic(index))
    }

    /// `getfield`.
    pub fn getfield(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::GetField(index))
    }

    /// `putfield`.
    pub fn putfield(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::PutField(index))
    }

    /// `invokevirtual`.
    pub fn invokevirtual(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::InvokeVirtual(index))
    }

    /// `invokespecial`.
    pub fn invokespecial(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::InvokeSpecial(index))
    }

    /// `invokestatic`.
    pub fn invokestatic(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::InvokeStatic(index))
    }

    /// `invokeinterface`.
    pub fn invokeinterface(&mut self, index: u16) -> &mut Self {
        self.raw(Insn::InvokeInterface(index))
    }

    /// `new`.
    pub fn new_object(&mut self, class_index: u16) -> &mut Self {
        self.raw(Insn::New(class_index))
    }

    /// `checkcast`.
    pub fn checkcast(&mut self, class_index: u16) -> &mut Self {
        self.raw(Insn::CheckCast(class_index))
    }

    /// `instanceof`.
    pub fn instanceof(&mut self, class_index: u16) -> &mut Self {
        self.raw(Insn::InstanceOf(class_index))
    }

    // ---- Exception handlers ----

    /// Registers an exception handler over `[start, end)` landing at
    /// `handler` for pool class `catch_type` (0 = catch-all).
    pub fn handler(&mut self, start: Label, end: Label, handler: Label, catch_type: u16) {
        self.handlers.push((start, end, handler, catch_type));
    }

    /// Resolves all labels and produces the final [`Code`].
    pub fn finish(mut self) -> Result<Code> {
        // Sort pending fixes by instruction so switch arms resolve in order.
        let placed = std::mem::take(&mut self.placed);
        let resolve = |l: Label| -> Result<usize> {
            placed
                .get(&l)
                .copied()
                .ok_or(BytecodeError::BadTargetIndex {
                    index: l.0,
                    len: usize::MAX,
                })
        };
        // Group pending entries per instruction, in insertion order.
        let mut per_insn: HashMap<usize, Vec<Label>> = HashMap::new();
        for (idx, label) in &self.pending {
            per_insn.entry(*idx).or_default().push(*label);
        }
        for (idx, labels) in per_insn {
            let mut resolved = Vec::with_capacity(labels.len());
            for l in labels {
                resolved.push(resolve(l)?);
            }
            let mut it = resolved.into_iter();
            self.insns[idx].map_targets(|_| it.next().unwrap_or(usize::MAX));
        }
        let mut handlers = Vec::with_capacity(self.handlers.len());
        for (s, e, h, c) in &self.handlers {
            handlers.push(Handler {
                start: resolve(*s)?,
                end: resolve(*e)?,
                handler: resolve(*h)?,
                catch_type: *c,
            });
        }
        let code = Code {
            insns: self.insns,
            handlers,
            max_locals: self.max_locals,
        };
        code.validate_targets()?;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::pool::ConstPool;

    #[test]
    fn loop_assembles_and_encodes() {
        let pool = ConstPool::new();
        let mut a = Asm::new(2);
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.place(top);
        a.iload(1).iconst(10).if_icmp(ICond::Ge, done);
        a.iinc(1, 1).goto(top);
        a.place(done);
        a.iload(1).ret_val(Kind::Int);
        let code = a.finish().unwrap();
        let attr = code.encode(&pool).unwrap();
        assert_eq!(attr.max_locals, 2);
        assert!(attr.max_stack >= 2);
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut a = Asm::new(0);
        let nowhere = a.new_label();
        a.goto(nowhere);
        assert!(a.finish().is_err());
    }

    #[test]
    fn tableswitch_arms_resolve_in_order() {
        let mut a = Asm::new(1);
        let c0 = a.new_label();
        let c1 = a.new_label();
        let def = a.new_label();
        a.iload(0);
        a.tableswitch(0, &[c0, c1], def);
        a.place(c0);
        a.iconst(100).ret_val(Kind::Int);
        a.place(c1);
        a.iconst(200).ret_val(Kind::Int);
        a.place(def);
        a.iconst(-1).ret_val(Kind::Int);
        let code = a.finish().unwrap();
        match &code.insns[1] {
            Insn::TableSwitch {
                default, targets, ..
            } => {
                assert_eq!(*default, 6);
                assert_eq!(targets, &vec![2, 4]);
            }
            other => panic!("expected tableswitch, got {other:?}"),
        }
    }

    #[test]
    fn handlers_are_resolved() {
        let mut a = Asm::new(1);
        let s = a.new_label();
        let e = a.new_label();
        let h = a.new_label();
        a.place(s);
        a.iconst(1).pop();
        a.place(e);
        a.ret();
        a.place(h);
        a.pop().ret();
        a.handler(s, e, h, 0);
        let code = a.finish().unwrap();
        assert_eq!(code.handlers.len(), 1);
        assert_eq!(code.handlers[0].start, 0);
        assert_eq!(code.handlers[0].end, 2);
        assert_eq!(code.handlers[0].handler, 3);
    }
}
