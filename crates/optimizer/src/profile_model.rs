//! Application transfer profiles.
//!
//! The repartitioning service works from a first-use profile collected by
//! the monitoring service (§5): which methods an application touches
//! before it becomes interactive ("startup"), which it touches ever, and
//! which are dead weight on the wire (the paper: "roughly 10–30% of all
//! downloaded code is never invoked").

use dvm_monitor::{ProfileCollector, SiteId, SiteTable};

/// One method's transfer profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodProfile {
    /// Simple method name.
    pub name: String,
    /// Encoded size in bytes (code + metadata share).
    pub size: u64,
    /// Used before the application becomes interactive.
    pub used_at_startup: bool,
    /// Used at any point in the profiled run.
    pub used_ever: bool,
}

/// One class's transfer profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassProfile {
    /// Class internal name.
    pub name: String,
    /// Per-method profiles.
    pub methods: Vec<MethodProfile>,
    /// Fixed per-class bytes (constant pool, headers) that ship with any
    /// split unit derived from this class.
    pub overhead_bytes: u64,
}

impl ClassProfile {
    /// Total bytes of the class as a single unit.
    pub fn total_bytes(&self) -> u64 {
        self.overhead_bytes + self.methods.iter().map(|m| m.size).sum::<u64>()
    }

    /// Bytes of methods used at startup.
    pub fn startup_method_bytes(&self) -> u64 {
        self.methods
            .iter()
            .filter(|m| m.used_at_startup)
            .map(|m| m.size)
            .sum()
    }

    /// Returns `true` when any method is used at startup.
    pub fn needed_at_startup(&self) -> bool {
        self.methods.iter().any(|m| m.used_at_startup)
    }
}

/// A whole application's transfer profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Per-class profiles.
    pub classes: Vec<ClassProfile>,
}

impl AppProfile {
    /// Total application size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.classes.iter().map(ClassProfile::total_bytes).sum()
    }

    /// Fraction of method bytes never invoked.
    pub fn dead_fraction(&self) -> f64 {
        let total: u64 = self
            .classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.size)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let dead: u64 = self
            .classes
            .iter()
            .flat_map(|c| &c.methods)
            .filter(|m| !m.used_ever)
            .map(|m| m.size)
            .sum();
        dead as f64 / total as f64
    }

    /// Builds a profile from collected first-use data: sites used within
    /// the first `startup_prefix` first-use entries count as startup
    /// methods.
    pub fn from_collector(
        name: &str,
        sizes: &[(String, String, u64)], // (class, method, bytes)
        class_overhead: u64,
        sites: &SiteTable,
        collector: &ProfileCollector,
        startup_prefix: usize,
    ) -> AppProfile {
        let startup_sites: std::collections::HashSet<SiteId> = collector
            .first_use_order()
            .iter()
            .take(startup_prefix)
            .copied()
            .collect();
        let mut classes: Vec<ClassProfile> = Vec::new();
        for (class, method, size) in sizes {
            let site = sites
                .iter()
                .find(|(_, c, m)| c == class && m == method)
                .map(|(id, _, _)| id);
            let (used_ever, used_at_startup) = match site {
                Some(id) => (collector.was_used(id), startup_sites.contains(&id)),
                None => (false, false),
            };
            let mp = MethodProfile {
                name: method.clone(),
                size: *size,
                used_at_startup,
                used_ever,
            };
            match classes.iter_mut().find(|c| &c.name == class) {
                Some(c) => c.methods.push(mp),
                None => classes.push(ClassProfile {
                    name: class.clone(),
                    methods: vec![mp],
                    overhead_bytes: class_overhead,
                }),
            }
        }
        AppProfile {
            name: name.to_owned(),
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_app() -> AppProfile {
        AppProfile {
            name: "demo".into(),
            classes: vec![
                ClassProfile {
                    name: "a/Main".into(),
                    overhead_bytes: 500,
                    methods: vec![
                        MethodProfile {
                            name: "main".into(),
                            size: 2000,
                            used_at_startup: true,
                            used_ever: true,
                        },
                        MethodProfile {
                            name: "help".into(),
                            size: 3000,
                            used_at_startup: false,
                            used_ever: false,
                        },
                    ],
                },
                ClassProfile {
                    name: "a/Util".into(),
                    overhead_bytes: 400,
                    methods: vec![
                        MethodProfile {
                            name: "fmt".into(),
                            size: 1000,
                            used_at_startup: true,
                            used_ever: true,
                        },
                        MethodProfile {
                            name: "rare".into(),
                            size: 4000,
                            used_at_startup: false,
                            used_ever: true,
                        },
                    ],
                },
                ClassProfile {
                    name: "a/Never".into(),
                    overhead_bytes: 300,
                    methods: vec![MethodProfile {
                        name: "x".into(),
                        size: 1500,
                        used_at_startup: false,
                        used_ever: false,
                    }],
                },
            ],
        }
    }

    #[test]
    fn totals_and_dead_fraction() {
        let app = sample_app();
        assert_eq!(app.total_bytes(), 500 + 5000 + 400 + 5000 + 300 + 1500);
        let dead = app.dead_fraction();
        // dead = (3000 + 1500) / 11500 methods bytes.
        assert!((dead - 4500.0 / 11500.0).abs() < 1e-9);
    }

    #[test]
    fn startup_detection() {
        let app = sample_app();
        assert!(app.classes[0].needed_at_startup());
        assert!(!app.classes[2].needed_at_startup());
        assert_eq!(app.classes[1].startup_method_bytes(), 1000);
    }
}
