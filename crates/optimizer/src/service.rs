//! The repartitioning service: profile in, split classes out.
//!
//! "The network proxy collects profile information from the first
//! execution of an application and uses the profile to generate a
//! first-use graph of the methods in the application. This graph is then
//! used to partition unused methods into separate classes that are loaded
//! only on demand." (§5)

use std::collections::HashSet;

use dvm_classfile::ClassFile;
use dvm_monitor::{ProfileCollector, SiteTable};

use crate::error::Result;
use crate::splitter::{split_class, SplitClass};

/// What counts as cold when splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdPolicy {
    /// Methods never executed in the profiled run.
    NeverUsed,
    /// Methods not among the first `n` first-used methods (everything
    /// outside the startup working set).
    NotInStartupPrefix(usize),
}

/// Statistics from repartitioning one application.
#[derive(Debug, Clone, Default)]
pub struct RepartitionStats {
    /// Classes examined.
    pub classes: u64,
    /// Classes actually split.
    pub classes_split: u64,
    /// Methods moved to overflow units.
    pub methods_moved: u64,
}

/// Repartitions every class of an application according to the collected
/// profile. Returns the rewritten class files (hot classes plus overflow
/// classes) and statistics.
pub fn repartition_app(
    classes: &[ClassFile],
    sites: &SiteTable,
    profile: &ProfileCollector,
    policy: ColdPolicy,
) -> Result<(Vec<ClassFile>, RepartitionStats)> {
    // Determine the hot set of (class, method) names.
    let hot: HashSet<(String, String)> = match policy {
        ColdPolicy::NeverUsed => sites
            .iter()
            .filter(|(id, _, _)| profile.was_used(*id))
            .map(|(_, c, m)| (c.to_owned(), m.to_owned()))
            .collect(),
        ColdPolicy::NotInStartupPrefix(n) => profile
            .first_use_order()
            .iter()
            .take(n)
            .filter_map(|id| sites.resolve(*id))
            .map(|(c, m)| (c.to_owned(), m.to_owned()))
            .collect(),
    };

    let mut out = Vec::new();
    let mut stats = RepartitionStats::default();
    for cf in classes {
        stats.classes += 1;
        let class_name = cf.name()?.to_owned();
        let SplitClass {
            hot: hot_cf,
            cold,
            moved,
        } = split_class(cf, |mname, _| {
            !hot.contains(&(class_name.clone(), mname.to_owned()))
        })?;
        if !moved.is_empty() {
            stats.classes_split += 1;
            stats.methods_moved += moved.len() as u64;
        }
        out.push(hot_cf);
        if let Some(c) = cold {
            out.push(c);
        }
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::{Asm, Kind};
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn make_class(name: &str, methods: &[&str]) -> ClassFile {
        let mut cf = ClassBuilder::new(name).build();
        for m in methods {
            let mut a = Asm::new(0);
            a.iconst(1).ret_val(Kind::Int);
            let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
            let n = cf.pool.utf8(m).unwrap();
            let d = cf.pool.utf8("()I").unwrap();
            cf.methods.push(MemberInfo {
                access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                name_index: n,
                descriptor_index: d,
                attributes: vec![Attribute::Code(attr)],
            });
        }
        cf
    }

    #[test]
    fn never_used_methods_are_factored_out() {
        let cf = make_class("t/A", &["used", "unused"]);
        let mut sites = SiteTable::new();
        let used = sites.intern("t/A", "used");
        let _unused = sites.intern("t/A", "unused");
        let mut profile = ProfileCollector::new();
        profile.first_use(used);
        profile.count(used);

        let (out, stats) = repartition_app(&[cf], &sites, &profile, ColdPolicy::NeverUsed).unwrap();
        assert_eq!(stats.methods_moved, 1);
        assert_eq!(stats.classes_split, 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].name().unwrap(), "t/A$Cold");
        assert!(out[1].find_method("unused", "()I").is_some());
    }

    #[test]
    fn startup_prefix_policy_keeps_only_early_methods() {
        let cf = make_class("t/B", &["first", "second", "third"]);
        let mut sites = SiteTable::new();
        let s1 = sites.intern("t/B", "first");
        let s2 = sites.intern("t/B", "second");
        let s3 = sites.intern("t/B", "third");
        let mut profile = ProfileCollector::new();
        profile.first_use(s1);
        profile.first_use(s2);
        profile.first_use(s3);

        let (_, stats) =
            repartition_app(&[cf], &sites, &profile, ColdPolicy::NotInStartupPrefix(1)).unwrap();
        assert_eq!(stats.methods_moved, 2);
    }
}
