//! Startup-time modeling under different transfer strategies.
//!
//! §5 defines startup time as "the time from initial invocation to the
//! time when the application can start processing user requests". What
//! must cross the link before that point depends on the unit of code
//! distribution:
//!
//! - [`Strategy::WholeArchive`]: the whole application ships as one unit
//!   (Java's JAR mode).
//! - [`Strategy::LazyClass`]: whole classes ship on first reference
//!   (Java's class-at-a-time mode).
//! - [`Strategy::Repartitioned`]: the DVM optimization service regroups
//!   code at method granularity so only profiled-hot methods ship at
//!   startup; cold methods are factored into on-demand overflow units.

use dvm_netsim::{Link, SimTime};

use crate::profile_model::AppProfile;

/// A transfer strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single-archive transfer.
    WholeArchive,
    /// Class-granularity lazy loading.
    LazyClass,
    /// Profile-driven method-granularity repartitioning (§5).
    Repartitioned,
}

/// Bytes that must arrive before startup completes under `strategy`.
pub fn startup_bytes(app: &AppProfile, strategy: Strategy) -> u64 {
    match strategy {
        Strategy::WholeArchive => app.total_bytes(),
        Strategy::LazyClass => app
            .classes
            .iter()
            .filter(|c| c.needed_at_startup())
            .map(|c| c.total_bytes())
            .sum(),
        Strategy::Repartitioned => app
            .classes
            .iter()
            .filter(|c| c.needed_at_startup())
            .map(|c| c.overhead_bytes + c.startup_method_bytes())
            .sum(),
    }
}

/// Round trips paid before startup completes under `strategy`.
pub fn startup_round_trips(app: &AppProfile, strategy: Strategy) -> u64 {
    match strategy {
        Strategy::WholeArchive => 1,
        // One request per startup class.
        Strategy::LazyClass | Strategy::Repartitioned => {
            app.classes.iter().filter(|c| c.needed_at_startup()).count() as u64
        }
    }
}

/// Startup time over `link` under `strategy`.
pub fn startup_time(app: &AppProfile, strategy: Strategy, link: &Link) -> SimTime {
    let bytes = startup_bytes(app, strategy);
    let rts = startup_round_trips(app, strategy);
    let mut t = link.serialization_time(bytes);
    for _ in 0..rts {
        t += link.latency;
    }
    t
}

/// Percent improvement of repartitioned over class-lazy startup (the
/// quantity plotted in Figure 12).
pub fn improvement_percent(app: &AppProfile, link: &Link) -> f64 {
    let base = startup_time(app, Strategy::LazyClass, link).as_nanos() as f64;
    let opt = startup_time(app, Strategy::Repartitioned, link).as_nanos() as f64;
    if base == 0.0 {
        return 0.0;
    }
    (base - opt) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_model::{AppProfile, ClassProfile, MethodProfile};
    use dvm_netsim::presets;

    fn app() -> AppProfile {
        AppProfile {
            name: "demo".into(),
            classes: vec![
                ClassProfile {
                    name: "a/Main".into(),
                    overhead_bytes: 500,
                    methods: vec![
                        MethodProfile {
                            name: "main".into(),
                            size: 2000,
                            used_at_startup: true,
                            used_ever: true,
                        },
                        MethodProfile {
                            name: "help".into(),
                            size: 3000,
                            used_at_startup: false,
                            used_ever: false,
                        },
                    ],
                },
                ClassProfile {
                    name: "a/Never".into(),
                    overhead_bytes: 300,
                    methods: vec![MethodProfile {
                        name: "x".into(),
                        size: 1500,
                        used_at_startup: false,
                        used_ever: false,
                    }],
                },
            ],
        }
    }

    #[test]
    fn byte_accounting_per_strategy() {
        let a = app();
        assert_eq!(startup_bytes(&a, Strategy::WholeArchive), 7300);
        assert_eq!(startup_bytes(&a, Strategy::LazyClass), 5500);
        assert_eq!(startup_bytes(&a, Strategy::Repartitioned), 2500);
    }

    #[test]
    fn repartitioning_wins_on_slow_links() {
        let a = app();
        let slow = presets::wireless_28_8kbps();
        let lazy = startup_time(&a, Strategy::LazyClass, &slow);
        let opt = startup_time(&a, Strategy::Repartitioned, &slow);
        assert!(opt < lazy);
        assert!(improvement_percent(&a, &slow) > 10.0);
    }

    #[test]
    fn improvement_shrinks_with_bandwidth() {
        let a = app();
        let slow = presets::sweep_link(3_600); // 28.8 kb/s
        let fast = presets::sweep_link(1_000_000); // 1 MB/s
        let slow_imp = improvement_percent(&a, &slow);
        let fast_imp = improvement_percent(&a, &fast);
        assert!(
            slow_imp > fast_imp,
            "improvement should decay with bandwidth: {slow_imp} vs {fast_imp}"
        );
    }
}
