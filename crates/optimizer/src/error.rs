//! Optimizer error type.

use std::fmt;

use dvm_bytecode::BytecodeError;
use dvm_classfile::ClassFileError;

/// Errors from the repartitioning service.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// A class could not be split.
    Split(String),
    /// Underlying class-file error.
    ClassFile(ClassFileError),
    /// Underlying bytecode error.
    Bytecode(BytecodeError),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::Split(msg) => write!(f, "repartitioning failed: {msg}"),
            OptimizerError::ClassFile(e) => write!(f, "{e}"),
            OptimizerError::Bytecode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OptimizerError {}

impl From<ClassFileError> for OptimizerError {
    fn from(e: ClassFileError) -> Self {
        OptimizerError::ClassFile(e)
    }
}

impl From<BytecodeError> for OptimizerError {
    fn from(e: BytecodeError) -> Self {
        OptimizerError::Bytecode(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, OptimizerError>;
