//! The DVM code-repartitioning service (§5 of the paper).
//!
//! Java's units of code transfer (classes, JAR archives) "fail to capture
//! the dynamic execution path for an application": 10–30% of downloaded
//! code is never invoked. This service regroups application code at
//! method granularity using a first-use profile collected by the
//! monitoring service: frequently used methods stay in the primary class,
//! cold methods move to overflow classes (`<Name>$Cold`) fetched only on
//! demand via forwarding stubs. [`startup`] models the resulting startup
//! times over arbitrary links (Figures 11 and 12).

pub mod error;
pub mod ir_pipeline;
pub mod profile_model;
pub mod service;
pub mod splitter;
pub mod startup;

pub use error::{OptimizerError, Result};
pub use ir_pipeline::{optimize_class_ir, MethodOptReport, PipelineReport};
pub use profile_model::{AppProfile, ClassProfile, MethodProfile};
pub use service::{repartition_app, ColdPolicy, RepartitionStats};
pub use splitter::{remap_code, split_class, SplitClass};
pub use startup::{improvement_percent, startup_bytes, startup_time, Strategy};
