//! Class-file level repartitioning.
//!
//! [`split_class`] performs the §5 transformation on real class files:
//! cold static methods move to an on-demand overflow class
//! (`<Name>$Cold`), and the original class keeps forwarding stubs so
//! "neither the JVM clients nor the web servers ... need to be modified".
//! Method bodies are transplanted by remapping every constant-pool
//! reference into the overflow class's own (smaller) pool, so the split
//! units genuinely shrink on the wire.

use dvm_bytecode::insn::{Insn, Kind};
use dvm_bytecode::{Asm, Code};
use dvm_classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_classfile::pool::{ConstPool, Constant};
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};

use crate::error::{OptimizerError, Result};

/// Outcome of splitting one class.
#[derive(Debug)]
pub struct SplitClass {
    /// The hot class: originals minus cold bodies, plus forwarding stubs.
    pub hot: ClassFile,
    /// The overflow class, or `None` when nothing was cold.
    pub cold: Option<ClassFile>,
    /// Names of the methods that moved.
    pub moved: Vec<String>,
}

/// Remaps a decoded body's pool references from `old` into `new`.
pub fn remap_code(code: &mut Code, old: &ConstPool, new: &mut ConstPool) -> Result<()> {
    let remap_class = |idx: u16, new: &mut ConstPool| -> Result<u16> {
        let name = old.get_class_name(idx)?;
        Ok(new.class(name)?)
    };
    for insn in &mut code.insns {
        match insn {
            Insn::Ldc(idx) | Insn::Ldc2(idx) => {
                let ni = match old.get(*idx)? {
                    Constant::Integer(v) => new.integer(*v)?,
                    Constant::Float(v) => new.float(*v)?,
                    Constant::Long(v) => new.long(*v)?,
                    Constant::Double(v) => new.double(*v)?,
                    Constant::String { .. } => new.string(old.get_string(*idx)?)?,
                    other => {
                        return Err(OptimizerError::Split(format!(
                            "ldc of {} cannot be transplanted",
                            other.kind()
                        )))
                    }
                };
                *idx = ni;
            }
            Insn::GetStatic(idx)
            | Insn::PutStatic(idx)
            | Insn::GetField(idx)
            | Insn::PutField(idx) => {
                let (c, n, d) = old.get_member_ref(*idx)?;
                let (c, n, d) = (c.to_owned(), n.to_owned(), d.to_owned());
                *idx = new.fieldref(&c, &n, &d)?;
            }
            Insn::InvokeVirtual(idx) | Insn::InvokeSpecial(idx) | Insn::InvokeStatic(idx) => {
                let (c, n, d) = old.get_member_ref(*idx)?;
                let (c, n, d) = (c.to_owned(), n.to_owned(), d.to_owned());
                *idx = new.methodref(&c, &n, &d)?;
            }
            Insn::InvokeInterface(idx) => {
                let (c, n, d) = old.get_member_ref(*idx)?;
                let (c, n, d) = (c.to_owned(), n.to_owned(), d.to_owned());
                *idx = new.interface_methodref(&c, &n, &d)?;
            }
            Insn::New(idx)
            | Insn::ANewArray(idx)
            | Insn::CheckCast(idx)
            | Insn::InstanceOf(idx)
            | Insn::MultiANewArray(idx, _) => {
                *idx = remap_class(*idx, new)?;
            }
            _ => {}
        }
    }
    for h in &mut code.handlers {
        if h.catch_type != 0 {
            h.catch_type = remap_class(h.catch_type, new)?;
        }
    }
    Ok(())
}

fn load_kind(ft: &FieldType) -> Kind {
    match ft {
        FieldType::Long => Kind::Long,
        FieldType::Float => Kind::Float,
        FieldType::Double => Kind::Double,
        FieldType::Object(_) | FieldType::Array(_) => Kind::Ref,
        _ => Kind::Int,
    }
}

/// Builds the forwarding stub body for a static method.
fn forwarding_stub(
    pool: &mut ConstPool,
    cold_class: &str,
    name: &str,
    descriptor: &str,
) -> Result<dvm_classfile::CodeAttribute> {
    let desc = MethodDescriptor::parse(descriptor)?;
    let target = pool.methodref(cold_class, name, descriptor)?;
    let mut a = Asm::new(desc.param_slots());
    let mut slot = 0u16;
    for p in &desc.params {
        a.load(load_kind(p), slot);
        slot += p.slot_width();
    }
    a.invokestatic(target);
    match &desc.ret {
        None => a.ret(),
        Some(rt) => a.ret_val(load_kind(rt)),
    };
    Ok(a.finish()?.encode(pool)?)
}

/// Splits `cf`: static methods for which `is_cold(name, descriptor)` holds
/// move to `<Name>$Cold`.
pub fn split_class(cf: &ClassFile, is_cold: impl Fn(&str, &str) -> bool) -> Result<SplitClass> {
    let class_name = cf.name()?.to_owned();
    let cold_name = format!("{class_name}$Cold");
    let mut moved = Vec::new();

    let mut cold_cf = ClassBuilder::new(&cold_name)
        .access(AccessFlags::PUBLIC | AccessFlags::SYNTHETIC)
        .build();
    let mut hot_cf = ClassBuilder::new(&class_name).build();
    hot_cf.access = cf.access;
    hot_cf.minor_version = cf.minor_version;
    hot_cf.major_version = cf.major_version;
    // Rebuild this/super/interfaces in the fresh pool.
    hot_cf.this_class = hot_cf.pool.class(&class_name)?;
    if let Some(sup) = cf.super_name()? {
        hot_cf.super_class = hot_cf.pool.class(sup)?;
    }
    for iface in cf.interface_names()? {
        let idx = hot_cf.pool.class(iface)?;
        hot_cf.interfaces.push(idx);
    }

    // Fields stay hot (cold methods refer to them via fieldrefs).
    for f in &cf.fields {
        let name_index = hot_cf.pool.utf8(f.name(&cf.pool)?)?;
        let descriptor_index = hot_cf.pool.utf8(f.descriptor(&cf.pool)?)?;
        hot_cf.fields.push(MemberInfo {
            access: f.access,
            name_index,
            descriptor_index,
            attributes: Vec::new(),
        });
    }

    for m in &cf.methods {
        let mname = m.name(&cf.pool)?.to_owned();
        let mdesc = m.descriptor(&cf.pool)?.to_owned();
        let splittable = m.access.is_static()
            && !m.access.is_native()
            && m.code().is_some()
            && mname != "<clinit>"
            && is_cold(&mname, &mdesc);
        if splittable {
            // Move the body to the cold class.
            let mut code = Code::decode(m.code().expect("checked above"))?;
            remap_code(&mut code, &cf.pool, &mut cold_cf.pool)?;
            let attr = code.encode(&cold_cf.pool)?;
            let name_index = cold_cf.pool.utf8(&mname)?;
            let descriptor_index = cold_cf.pool.utf8(&mdesc)?;
            cold_cf.methods.push(MemberInfo {
                access: m.access | AccessFlags::SYNTHETIC,
                name_index,
                descriptor_index,
                attributes: vec![Attribute::Code(attr)],
            });
            // Leave a forwarding stub behind.
            let stub = forwarding_stub(&mut hot_cf.pool, &cold_name, &mname, &mdesc)?;
            let name_index = hot_cf.pool.utf8(&mname)?;
            let descriptor_index = hot_cf.pool.utf8(&mdesc)?;
            hot_cf.methods.push(MemberInfo {
                access: m.access,
                name_index,
                descriptor_index,
                attributes: vec![Attribute::Code(stub)],
            });
            moved.push(mname);
        } else {
            // Transplant unchanged into the hot class's fresh pool.
            let mut attributes = Vec::new();
            if let Some(code_attr) = m.code() {
                let mut code = Code::decode(code_attr)?;
                remap_code(&mut code, &cf.pool, &mut hot_cf.pool)?;
                attributes.push(Attribute::Code(code.encode(&hot_cf.pool)?));
            }
            let name_index = hot_cf.pool.utf8(&mname)?;
            let descriptor_index = hot_cf.pool.utf8(&mdesc)?;
            hot_cf.methods.push(MemberInfo {
                access: m.access,
                name_index,
                descriptor_index,
                attributes,
            });
        }
    }

    let cold = if moved.is_empty() {
        None
    } else {
        Some(cold_cf)
    };
    Ok(SplitClass {
        hot: hot_cf,
        cold,
        moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::insn::Kind as BKind;

    fn app_class() -> ClassFile {
        let mut cf = ClassBuilder::new("t/App").build();
        // hot(): returns 1. cold(): returns rare() + 41 via a self-call.
        let mut a = Asm::new(0);
        a.iconst(1).ret_val(BKind::Int);
        let hot_attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("hot").unwrap();
        let d = cf.pool.utf8("()I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(hot_attr)],
        });
        let hot_ref = cf.pool.methodref("t/App", "hot", "()I").unwrap();
        let mut a = Asm::new(0);
        a.invokestatic(hot_ref);
        // Realistic bulk: cold methods carry real code, not one add.
        for i in 0..40 {
            a.iconst(i % 7).iadd();
        }
        // The 40 additions above contribute 115; balance so the method
        // returns hot() + 41 = 42.
        a.iconst(41 - 115).iadd().ret_val(BKind::Int);
        let cold_attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("cold").unwrap();
        let d = cf.pool.utf8("()I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(cold_attr)],
        });
        cf
    }

    #[test]
    fn split_moves_cold_method_and_leaves_stub() {
        let cf = app_class();
        let out = split_class(&cf, |name, _| name == "cold").unwrap();
        assert_eq!(out.moved, vec!["cold"]);
        let cold = out.cold.unwrap();
        assert_eq!(cold.name().unwrap(), "t/App$Cold");
        assert!(cold.find_method("cold", "()I").is_some());
        // The hot class still exposes `cold` (as a stub calling the
        // overflow class).
        let stub = out.hot.find_method("cold", "()I").unwrap();
        let code = Code::decode(stub.code().unwrap()).unwrap();
        assert!(code
            .insns
            .iter()
            .any(|i| matches!(i, Insn::InvokeStatic(_))));
    }

    #[test]
    fn split_classes_serialize_and_shrink() {
        let cf = app_class();
        let mut original = cf.clone();
        let original_bytes = original.to_bytes().unwrap().len();
        let out = split_class(&cf, |name, _| name == "cold").unwrap();
        let mut hot = out.hot;
        let hot_bytes = hot.to_bytes().unwrap().len();
        let mut cold = out.cold.unwrap();
        let cold_bytes = cold.to_bytes().unwrap().len();
        // Both halves parse.
        ClassFile::parse(&hot.to_bytes().unwrap()).unwrap();
        ClassFile::parse(&cold.to_bytes().unwrap()).unwrap();
        // And the hot half is smaller than the original (that is the whole
        // point of the service).
        assert!(
            hot_bytes < original_bytes,
            "hot {hot_bytes} vs original {original_bytes} (cold {cold_bytes})"
        );
    }

    #[test]
    fn nothing_cold_returns_no_overflow() {
        let cf = app_class();
        let out = split_class(&cf, |_, _| false).unwrap();
        assert!(out.cold.is_none());
        assert!(out.moved.is_empty());
    }

    #[test]
    fn executes_identically_after_split() {
        use dvm_jvm::{Completion, MapProvider, Value, Vm};
        let cf = app_class();
        let out = split_class(&cf, |name, _| name == "cold").unwrap();
        let mut provider = MapProvider::new();
        let mut hot = out.hot;
        let mut cold = out.cold.unwrap();
        provider.insert_class(&mut hot).unwrap();
        provider.insert_class(&mut cold).unwrap();
        let mut vm = Vm::new(Box::new(provider)).unwrap();
        match vm.run_static("t/App", "cold", "()I", vec![]).unwrap() {
            Completion::Normal(Some(Value::Int(v))) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
        // The overflow class was fetched lazily.
        assert!(vm
            .stats
            .classes_loaded
            .iter()
            .any(|(n, _)| n == "t/App$Cold"));
    }
}
