//! The proxy's optimizer stage for the register-IR execution tier.
//!
//! The repartitioning service decides *where* code lives; this stage
//! decides *what shape* it ships in. It lowers each method of a served
//! class to register IR, runs the `dvm-exec` pass pipeline (service-stub
//! inlining, constant folding, copy propagation, dead-code elimination),
//! and reports per-method and aggregate pass work so the proxy's
//! telemetry plane can attribute optimization effort per class.

use dvm_bytecode::Code;
use dvm_classfile::ClassFile;
use dvm_exec::{lower, optimize, ClassIr, PassStats};

use crate::error::Result;

/// Pass-pipeline outcome for one method.
#[derive(Debug, Clone)]
pub struct MethodOptReport {
    /// Method name.
    pub name: String,
    /// Method descriptor.
    pub descriptor: String,
    /// IR instructions straight out of lowering.
    pub insns_before: usize,
    /// IR instructions after the pass pipeline.
    pub insns_after: usize,
    /// Pass work performed.
    pub stats: PassStats,
}

/// Pass-pipeline outcome for a whole class.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Class internal name.
    pub class: String,
    /// Per-method outcomes (lowered methods only).
    pub methods: Vec<MethodOptReport>,
    /// Methods left on the interpreter tier.
    pub skipped: usize,
}

impl PipelineReport {
    /// Total IR instructions before optimization.
    pub fn insns_before(&self) -> usize {
        self.methods.iter().map(|m| m.insns_before).sum()
    }

    /// Total IR instructions after optimization.
    pub fn insns_after(&self) -> usize {
        self.methods.iter().map(|m| m.insns_after).sum()
    }

    /// Aggregate pass work across all methods.
    pub fn totals(&self) -> PassStats {
        let mut t = PassStats::default();
        for m in &self.methods {
            t.absorb(&m.stats);
        }
        t
    }

    /// Code-size reduction achieved by the pipeline, in percent.
    pub fn reduction_percent(&self) -> f64 {
        let before = self.insns_before();
        if before == 0 {
            return 0.0;
        }
        100.0 * (before - self.insns_after()) as f64 / before as f64
    }
}

/// Lowers and optimizes every method of `cf`, returning the installable
/// IR plus the stage report. Methods that decline to lower are skipped
/// (the client interprets them), mirroring `dvm_exec::compile_class`.
pub fn optimize_class_ir(cf: &ClassFile) -> Result<(ClassIr, PipelineReport)> {
    let class = cf.name()?.to_owned();
    let mut report = PipelineReport {
        class: class.clone(),
        ..PipelineReport::default()
    };
    let mut methods = Vec::new();
    for m in &cf.methods {
        let (Ok(name), Ok(descriptor)) = (m.name(&cf.pool), m.descriptor(&cf.pool)) else {
            report.skipped += 1;
            continue;
        };
        let Some(attr) = m.code() else {
            report.skipped += 1;
            continue;
        };
        let Ok(code) = Code::decode(attr) else {
            report.skipped += 1;
            continue;
        };
        let Ok(mut func) = lower(&code, &cf.pool, name, descriptor) else {
            report.skipped += 1;
            continue;
        };
        let insns_before = func.insns.len();
        let stats = optimize(&mut func, &cf.pool);
        report.methods.push(MethodOptReport {
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            insns_before,
            insns_after: func.insns.len(),
            stats,
        });
        methods.push(func);
    }
    Ok((ClassIr { class, methods }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_bytecode::insn::Kind;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn foldable_class() -> ClassFile {
        let mut cf = ClassBuilder::new("t/Shape").build();
        let mut a = Asm::new(2);
        a.iconst(2)
            .iconst(3)
            .iadd()
            .iconst(4)
            .imul()
            .ret_val(Kind::Int);
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("k").unwrap();
        let d = cf.pool.utf8("()I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf
    }

    #[test]
    fn pipeline_shrinks_foldable_code_and_reports_it() {
        let cf = foldable_class();
        let (ir, report) = optimize_class_ir(&cf).unwrap();
        assert_eq!(ir.class, "t/Shape");
        assert_eq!(ir.methods.len(), 1);
        assert_eq!(report.methods.len(), 1);
        let m = &report.methods[0];
        assert_eq!(m.name, "k");
        assert!(m.insns_after < m.insns_before, "folding should shrink code");
        assert!(report.totals().folded >= 2, "both ops fold");
        assert!(report.reduction_percent() > 0.0);
    }
}
