//! The DVM remote monitoring, auditing, and profiling services (§3.3).
//!
//! The static component ([`rewriter`]) instruments applications to invoke
//! `dvm/rt/Audit` at method/constructor boundaries and `dvm/rt/Profiler`
//! at method entries (or every basic block). The dynamic components are
//! the per-client [`profile::ProfileCollector`] and the forwarding of
//! audit events — over a handshake-established session — to the central
//! [`console::AdminConsole`], whose append-only log is isolated from
//! untrusted application code.

pub mod console;
pub mod profile;
pub mod rewriter;
pub mod sites;
pub mod spool;

pub use console::{
    AdminConsole, AuditRecord, AuditSink, ClientDescription, ConsoleSink, EventKind, SessionId,
};
pub use profile::{CallGraph, ProfileCollector};
pub use rewriter::{
    audit_class, audit_class_filtered, profile_class, InstrumentStats, ProfileMode,
};
pub use sites::{SiteId, SiteTable};
pub use spool::{AuditSpool, SpooledAuditEvent};
