//! Client-side profile collection and the dynamic call graph.
//!
//! [`ProfileCollector`] is the dynamic component behind the
//! `dvm/rt/Profiler` hooks: it records execution counts, the first-use
//! order of methods (driving the §5 repartitioning service), and — by
//! replaying enter/exit audit events — a gprof-style dynamic call graph.

use std::collections::HashMap;

use crate::console::EventKind;
use crate::sites::SiteId;

/// Profile data collected on one client.
#[derive(Debug, Default, Clone)]
pub struct ProfileCollector {
    counts: HashMap<SiteId, u64>,
    first_use: Vec<SiteId>,
    seen: HashMap<SiteId, usize>,
}

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> ProfileCollector {
        ProfileCollector::default()
    }

    /// Records one execution of `site`.
    pub fn count(&mut self, site: SiteId) {
        *self.counts.entry(site).or_insert(0) += 1;
    }

    /// Records the first use of `site` (idempotent).
    pub fn first_use(&mut self, site: SiteId) {
        if !self.seen.contains_key(&site) {
            self.seen.insert(site, self.first_use.len());
            self.first_use.push(site);
        }
    }

    /// Execution count for a site.
    pub fn count_of(&self, site: SiteId) -> u64 {
        self.counts.get(&site).copied().unwrap_or(0)
    }

    /// The first-use order (the §5 first-use graph's node ordering).
    pub fn first_use_order(&self) -> &[SiteId] {
        &self.first_use
    }

    /// Returns `true` if the site was ever used.
    pub fn was_used(&self, site: SiteId) -> bool {
        self.seen.contains_key(&site)
    }

    /// All counts.
    pub fn counts(&self) -> &HashMap<SiteId, u64> {
        &self.counts
    }
}

/// A dynamic call graph built from an enter/exit event stream
/// (gprof-style, §3.3).
#[derive(Debug, Default, Clone)]
pub struct CallGraph {
    /// Edge `(caller, callee)` → call count. The synthetic root caller is
    /// `None`.
    pub edges: HashMap<(Option<SiteId>, SiteId), u64>,
    stack: Vec<SiteId>,
}

impl CallGraph {
    /// Creates an empty graph.
    pub fn new() -> CallGraph {
        CallGraph::default()
    }

    /// Feeds one event into the replay.
    pub fn feed(&mut self, site: SiteId, kind: EventKind) {
        match kind {
            EventKind::Enter => {
                let caller = self.stack.last().copied();
                *self.edges.entry((caller, site)).or_insert(0) += 1;
                self.stack.push(site);
            }
            EventKind::Exit => {
                // Tolerate unbalanced streams (a crashed client).
                if let Some(pos) = self.stack.iter().rposition(|&s| s == site) {
                    self.stack.truncate(pos);
                }
            }
            EventKind::Event => {}
        }
    }

    /// Total calls of `callee` from any caller.
    pub fn calls_to(&self, callee: SiteId) -> u64 {
        self.edges
            .iter()
            .filter(|((_, c), _)| *c == callee)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Callees invoked by `caller`.
    pub fn callees_of(&self, caller: SiteId) -> Vec<(SiteId, u64)> {
        let mut v: Vec<(SiteId, u64)> = self
            .edges
            .iter()
            .filter(|((c, _), _)| *c == Some(caller))
            .map(|((_, callee), n)| (*callee, *n))
            .collect();
        v.sort_by_key(|(s, _)| s.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_first_use_order() {
        let mut p = ProfileCollector::new();
        p.first_use(SiteId(2));
        p.count(SiteId(2));
        p.first_use(SiteId(0));
        p.count(SiteId(2));
        p.first_use(SiteId(2)); // duplicate ignored
        assert_eq!(p.count_of(SiteId(2)), 2);
        assert_eq!(p.first_use_order(), &[SiteId(2), SiteId(0)]);
        assert!(p.was_used(SiteId(0)));
        assert!(!p.was_used(SiteId(5)));
    }

    #[test]
    fn call_graph_replay_builds_edges() {
        let mut g = CallGraph::new();
        // main -> f -> g, f again from main
        g.feed(SiteId(0), EventKind::Enter); // main
        g.feed(SiteId(1), EventKind::Enter); // f
        g.feed(SiteId(2), EventKind::Enter); // g
        g.feed(SiteId(2), EventKind::Exit);
        g.feed(SiteId(1), EventKind::Exit);
        g.feed(SiteId(1), EventKind::Enter); // f again
        g.feed(SiteId(1), EventKind::Exit);
        g.feed(SiteId(0), EventKind::Exit);
        assert_eq!(g.edges[&(None, SiteId(0))], 1);
        assert_eq!(g.edges[&(Some(SiteId(0)), SiteId(1))], 2);
        assert_eq!(g.edges[&(Some(SiteId(1)), SiteId(2))], 1);
        assert_eq!(g.calls_to(SiteId(1)), 2);
        assert_eq!(g.callees_of(SiteId(0)), vec![(SiteId(1), 2)]);
    }

    #[test]
    fn unbalanced_exit_is_tolerated() {
        let mut g = CallGraph::new();
        g.feed(SiteId(0), EventKind::Enter);
        g.feed(SiteId(9), EventKind::Exit); // never entered
        g.feed(SiteId(1), EventKind::Enter);
        assert_eq!(g.edges[&(Some(SiteId(0)), SiteId(1))], 1);
    }
}
