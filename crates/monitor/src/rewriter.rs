//! The monitoring rewriters: the static components of the remote
//! monitoring and profiling services.
//!
//! [`audit_class`] inserts `dvm/rt/Audit.enter/exit` at method and
//! constructor boundaries (§3.3). [`profile_class`] inserts
//! `dvm/rt/Profiler` calls for call-graph construction, execution counts,
//! and the first-use graph that drives the §5 repartitioning service.

use dvm_bytecode::insn::Insn;
use dvm_bytecode::{Code, CodeEditor};
use dvm_classfile::ClassFile;

use crate::sites::{SiteId, SiteTable};

/// Statistics from an instrumentation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentStats {
    /// Methods instrumented.
    pub methods: u64,
    /// Call sites injected.
    pub probes: u64,
    /// Instructions examined.
    pub instructions_examined: u64,
}

/// Profiling granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// One counter per method entry (call counts + first-use order).
    Method,
    /// Method entry plus every branch target (basic-block level counts;
    /// the paper's "instruction-level profiling" resolution).
    Block,
}

/// Error type shared with the bytecode layer.
pub type RewriteError = dvm_bytecode::BytecodeError;

/// Inserts audit events at entry to and exit from every method and
/// constructor.
pub fn audit_class(
    cf: &mut ClassFile,
    sites: &mut SiteTable,
) -> Result<InstrumentStats, RewriteError> {
    audit_class_filtered(cf, sites, 0)
}

/// Like [`audit_class`], but only instruments methods whose bodies have at
/// least `min_insns` instructions (constructors and initializers are
/// always instrumented).
///
/// Audit specifications target *noteworthy* operations; instrumenting
/// every three-instruction leaf accessor would swamp the client with
/// events the administrator never wanted. Every instruction of every
/// method is still examined (the §4.1 requirement on the static service).
pub fn audit_class_filtered(
    cf: &mut ClassFile,
    sites: &mut SiteTable,
    min_insns: usize,
) -> Result<InstrumentStats, RewriteError> {
    let class_name = cf.name()?.to_owned();
    let enter = cf.pool.methodref("dvm/rt/Audit", "enter", "(I)V")?;
    let exit = cf.pool.methodref("dvm/rt/Audit", "exit", "(I)V")?;
    let pool_snapshot = cf.pool.clone();
    let mut stats = InstrumentStats::default();
    let pool = cf.pool.clone();

    for m in &mut cf.methods {
        let mname = m.name(&pool)?.to_owned();
        let Some(attr) = m.code() else { continue };
        let code = Code::decode(attr)?;
        stats.instructions_examined += code.insns.len() as u64;
        let significant = code.insns.len() >= min_insns || mname == "<init>" || mname == "<clinit>";
        if !significant {
            continue;
        }
        let site = sites.intern(&class_name, &mname);
        let mut ed = CodeEditor::new(code);
        // Exit probes first (so entry insertion indexes stay simple).
        ed.insert_before_returns(|| vec![Insn::IConst(site.0), Insn::InvokeStatic(exit)]);
        ed.insert_prologue(vec![Insn::IConst(site.0), Insn::InvokeStatic(enter)]);
        stats.probes += 2;
        stats.methods += 1;
        let new_attr = ed.into_code().encode(&pool_snapshot)?;
        m.set_code(new_attr);
    }
    Ok(stats)
}

/// Inserts profiling probes.
pub fn profile_class(
    cf: &mut ClassFile,
    sites: &mut SiteTable,
    mode: ProfileMode,
) -> Result<InstrumentStats, RewriteError> {
    let class_name = cf.name()?.to_owned();
    let count = cf.pool.methodref("dvm/rt/Profiler", "count", "(I)V")?;
    let first_use = cf.pool.methodref("dvm/rt/Profiler", "firstUse", "(I)V")?;
    let pool_snapshot = cf.pool.clone();
    let mut stats = InstrumentStats::default();
    let pool = cf.pool.clone();

    for m in &mut cf.methods {
        let mname = m.name(&pool)?.to_owned();
        let Some(attr) = m.code() else { continue };
        let site = sites.intern(&class_name, &mname);
        let code = Code::decode(attr)?;
        stats.instructions_examined += code.insns.len() as u64;
        let mut probes = 2u64;
        let mut ed = CodeEditor::new(code);

        if mode == ProfileMode::Block {
            // Instrument every branch target (block heads) with a counter.
            let mut targets: Vec<usize> = ed
                .code()
                .insns
                .iter()
                .flat_map(Insn::branch_targets)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            for &t in targets.iter().rev() {
                let block_site = sites.intern(&class_name, &format!("{mname}@{t}"));
                ed.insert(
                    t,
                    vec![Insn::IConst(block_site.0), Insn::InvokeStatic(count)],
                );
                probes += 1;
            }
        }

        ed.insert_prologue(vec![
            Insn::IConst(site.0),
            Insn::InvokeStatic(first_use),
            Insn::IConst(site.0),
            Insn::InvokeStatic(count),
        ]);
        stats.probes += probes;
        stats.methods += 1;
        let new_attr = ed.into_code().encode(&pool_snapshot)?;
        m.set_code(new_attr);
    }
    Ok(stats)
}

/// Returns the site id a method entry would get (for tests and metadata
/// registration).
pub fn site_for(sites: &mut SiteTable, class: &str, method: &str) -> SiteId {
    sites.intern(class, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn two_method_class() -> ClassFile {
        let mut cf = ClassBuilder::new("t/Mon").build();
        for (name, ret) in [("f", true), ("g", false)] {
            let mut a = Asm::new(1);
            if ret {
                a.iconst(7).ret_val(dvm_bytecode::Kind::Int);
            } else {
                a.ret();
            }
            let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
            let n = cf.pool.utf8(name).unwrap();
            let d = cf.pool.utf8(if ret { "()I" } else { "()V" }).unwrap();
            cf.methods.push(MemberInfo {
                access: AccessFlags::PUBLIC | AccessFlags::STATIC,
                name_index: n,
                descriptor_index: d,
                attributes: vec![Attribute::Code(attr)],
            });
        }
        cf
    }

    #[test]
    fn audit_inserts_enter_and_exit() {
        let mut cf = two_method_class();
        let mut sites = SiteTable::new();
        let stats = audit_class(&mut cf, &mut sites).unwrap();
        assert_eq!(stats.methods, 2);
        assert_eq!(stats.probes, 4);
        assert_eq!(sites.len(), 2);
        let m = cf.find_method("f", "()I").unwrap();
        let code = Code::decode(m.code().unwrap()).unwrap();
        // enter(site), iconst 7, exit(site), ireturn
        assert_eq!(code.insns.len(), 6);
        assert_eq!(code.insns[0], Insn::IConst(0));
        assert!(matches!(code.insns[1], Insn::InvokeStatic(_)));
        assert!(matches!(code.insns[5], Insn::Return(Some(_))));
    }

    #[test]
    fn method_profile_inserts_first_use_and_count() {
        let mut cf = two_method_class();
        let mut sites = SiteTable::new();
        let stats = profile_class(&mut cf, &mut sites, ProfileMode::Method).unwrap();
        assert_eq!(stats.methods, 2);
        assert_eq!(stats.probes, 4);
        let m = cf.find_method("g", "()V").unwrap();
        let code = Code::decode(m.code().unwrap()).unwrap();
        assert_eq!(code.insns.len(), 5); // 4 probe insns + return
    }

    #[test]
    fn block_profile_instruments_branch_targets() {
        // A loop: branch targets get block counters.
        let mut cf = ClassBuilder::new("t/Loop").build();
        let mut a = Asm::new(2);
        let top = a.new_label();
        let done = a.new_label();
        a.iconst(0).istore(1);
        a.place(top);
        a.iload(1).iconst(10).if_icmp(dvm_bytecode::ICond::Ge, done);
        a.iinc(1, 1).goto(top);
        a.place(done);
        a.ret();
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("spin").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        let mut sites = SiteTable::new();
        let stats = profile_class(&mut cf, &mut sites, ProfileMode::Block).unwrap();
        // Two branch targets (loop head, exit) plus the method site.
        assert_eq!(stats.probes, 4);
        assert!(sites.len() >= 3);
        // The instrumented body still encodes (and targets remain valid).
        let m = cf.find_method("spin", "()V").unwrap();
        assert!(Code::decode(m.code().unwrap()).is_ok());
    }
}
