//! Instrumentation sites.
//!
//! Rewriters assign each instrumented location a small integer id; the
//! side table mapping ids back to `(class, method)` travels with the
//! instrumented application's metadata (established during the client
//! handshake) so audit events stay compact on the wire.

use std::collections::HashMap;

/// An instrumentation site id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub i32);

/// Maps site ids to their source locations.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    names: Vec<(String, String)>,
    index: HashMap<(String, String), SiteId>,
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> SiteTable {
        SiteTable::default()
    }

    /// Interns a `(class, method)` site, returning its id.
    pub fn intern(&mut self, class: &str, method: &str) -> SiteId {
        let key = (class.to_owned(), method.to_owned());
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = SiteId(self.names.len() as i32);
        self.names.push(key.clone());
        self.index.insert(key, id);
        id
    }

    /// Resolves a site id.
    pub fn resolve(&self, id: SiteId) -> Option<(&str, &str)> {
        self.names
            .get(id.0 as usize)
            .map(|(c, m)| (c.as_str(), m.as_str()))
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no sites are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, class, method)`.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, (c, m))| (SiteId(i as i32), c.as_str(), m.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = SiteTable::new();
        let a = t.intern("A", "f");
        let b = t.intern("A", "g");
        let a2 = t.intern("A", "f");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), Some(("A", "f")));
        assert_eq!(t.len(), 2);
    }
}
