//! The audit spool: durable buffering for audit events that cannot
//! reach the administration console.
//!
//! The paper's monitoring service forwards audit events from every
//! client to a central console (§3.3); when the console is unreachable
//! the events used to be counted (`audit_dropped_total`) and thrown
//! away. The spool closes that hole: events are appended to a
//! [`dvm_store::Store`] with `Durability::Always` (an audit trail that
//! can vanish in a crash is not an audit trail), keyed by a
//! zero-padded sequence number so the store's sorted key order *is*
//! arrival order, and replayed in that order once the console is back.
//!
//! Delivered events are tombstoned as they go, so a crash mid-replay
//! re-delivers the undelivered suffix only (at-least-once; the console
//! log is append-only, so a rare duplicate is benign and inspectable).

use std::path::Path;

use dvm_store::{Durability, Store, StoreConfig, StoreError};

use crate::console::EventKind;
use crate::sites::SiteId;

/// One spooled audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpooledAuditEvent {
    pub site: SiteId,
    pub kind: EventKind,
}

fn kind_to_u8(kind: EventKind) -> u8 {
    match kind {
        EventKind::Enter => 0,
        EventKind::Exit => 1,
        EventKind::Event => 2,
    }
}

fn kind_from_u8(b: u8) -> Option<EventKind> {
    match b {
        0 => Some(EventKind::Enter),
        1 => Some(EventKind::Exit),
        2 => Some(EventKind::Event),
        _ => None,
    }
}

/// A durable, in-order queue of undelivered audit events.
#[derive(Debug)]
pub struct AuditSpool {
    store: Store,
    /// Next sequence number to assign (one past the highest on disk).
    next_seq: u64,
}

impl AuditSpool {
    /// Opens (or creates) a spool at `dir`, recovering any events a
    /// previous life failed to deliver.
    pub fn open(dir: impl AsRef<Path>) -> Result<AuditSpool, StoreError> {
        let store = Store::open(
            dir,
            StoreConfig {
                durability: Durability::Always,
                ..StoreConfig::default()
            },
        )?;
        let next_seq = store
            .keys()
            .last()
            .and_then(|k| k.parse::<u64>().ok())
            .map_or(0, |n| n + 1);
        Ok(AuditSpool { store, next_seq })
    }

    /// Durably appends one undelivered event.
    pub fn push(&mut self, site: SiteId, kind: EventKind) -> Result<(), StoreError> {
        let key = format!("{:020}", self.next_seq);
        let mut value = [0u8; 5];
        value[..4].copy_from_slice(&site.0.to_le_bytes());
        value[4] = kind_to_u8(kind);
        self.store.put(&key, &value)?;
        self.next_seq += 1;
        Ok(())
    }

    /// Replays spooled events oldest-first. `deliver` returns `true`
    /// when an event reached the console (it is then tombstoned) and
    /// `false` to stop — the console went away again; everything not
    /// yet delivered stays spooled. Returns how many were delivered.
    /// Undecodable entries (foreign bytes in the directory) are purged
    /// without delivery.
    pub fn replay(
        &mut self,
        mut deliver: impl FnMut(SiteId, EventKind) -> bool,
    ) -> Result<u64, StoreError> {
        let mut delivered = 0;
        for key in self.store.keys() {
            let Some(value) = self.store.get(&key)? else {
                continue;
            };
            let event = (value.len() == 5)
                .then(|| {
                    let site = SiteId(i32::from_le_bytes(value[..4].try_into().unwrap()));
                    kind_from_u8(value[4]).map(|kind| SpooledAuditEvent { site, kind })
                })
                .flatten();
            match event {
                Some(e) => {
                    if !deliver(e.site, e.kind) {
                        break;
                    }
                    self.store.delete(&key)?;
                    delivered += 1;
                }
                None => {
                    self.store.delete(&key)?;
                }
            }
        }
        Ok(delivered)
    }

    /// Undelivered events currently spooled.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the spool is drained.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("dvm-spool-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn events_replay_in_push_order() {
        let tmp = TempDir::new("order");
        let mut spool = AuditSpool::open(&tmp.0).unwrap();
        spool.push(SiteId(1), EventKind::Enter).unwrap();
        spool.push(SiteId(2), EventKind::Event).unwrap();
        spool.push(SiteId(1), EventKind::Exit).unwrap();
        assert_eq!(spool.len(), 3);
        let mut seen = Vec::new();
        let n = spool
            .replay(|site, kind| {
                seen.push((site, kind));
                true
            })
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            seen,
            vec![
                (SiteId(1), EventKind::Enter),
                (SiteId(2), EventKind::Event),
                (SiteId(1), EventKind::Exit),
            ]
        );
        assert!(spool.is_empty());
    }

    #[test]
    fn spool_survives_a_kill_and_keeps_ordering_across_lives() {
        let tmp = TempDir::new("kill");
        {
            let mut spool = AuditSpool::open(&tmp.0).unwrap();
            spool.push(SiteId(10), EventKind::Enter).unwrap();
            spool.push(SiteId(11), EventKind::Enter).unwrap();
            // No graceful anything: the spool syncs every push.
        }
        let mut spool = AuditSpool::open(&tmp.0).unwrap();
        assert_eq!(spool.len(), 2);
        // A new life keeps appending *after* the recovered events.
        spool.push(SiteId(12), EventKind::Exit).unwrap();
        let mut seen = Vec::new();
        spool
            .replay(|site, _| {
                seen.push(site);
                true
            })
            .unwrap();
        assert_eq!(seen, vec![SiteId(10), SiteId(11), SiteId(12)]);
    }

    #[test]
    fn replay_stops_when_delivery_fails_and_keeps_the_suffix() {
        let tmp = TempDir::new("stop");
        let mut spool = AuditSpool::open(&tmp.0).unwrap();
        for i in 0..5 {
            spool.push(SiteId(i), EventKind::Event).unwrap();
        }
        let mut calls = 0;
        let n = spool
            .replay(|_, _| {
                calls += 1;
                calls <= 2 // third delivery "fails"
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(spool.len(), 3, "undelivered suffix stays spooled");
        // The suffix replays in order on the next attempt.
        let mut seen = Vec::new();
        spool
            .replay(|site, _| {
                seen.push(site.0);
                true
            })
            .unwrap();
        assert_eq!(seen, vec![2, 3, 4]);
        assert!(spool.is_empty());
    }
}
