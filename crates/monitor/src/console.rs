//! The remote administration console.
//!
//! Clients perform a handshake establishing credentials, their hardware
//! configuration, and their native format (§3.3/§3.4); the console assigns
//! a session id and thereafter receives audit events over that session.
//! The audit log is append-only and lives on the console host: a security
//! breach on a client "may stop the creation of new audit events but
//! cannot tamper with existing audit logs".
//!
//! Aggregate statistics (per-site usage, per-session counts) are exact
//! over the whole stream; the raw event log retains a bounded window (a
//! real console rotates its logs to stable storage — this reproduction
//! keeps the most recent [`AdminConsole::retained_capacity`] records in
//! memory).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sites::SiteId;

/// A monitoring session id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// The client's self-description presented during the handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientDescription {
    /// User credentials (already authenticated upstream).
    pub user: String,
    /// Hardware description, e.g. `"x86/200MHz/64MB"`.
    pub hardware: String,
    /// The client's native code format (consumed by the network compiler).
    pub native_format: String,
    /// JVM implementation version string.
    pub jvm_version: String,
}

/// Kinds of audit events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Method/constructor entry.
    Enter,
    /// Method/constructor exit.
    Exit,
    /// Generic noteworthy event.
    Event,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Session that produced the event.
    pub session: SessionId,
    /// Instrumentation site.
    pub site: SiteId,
    /// Event kind.
    pub kind: EventKind,
    /// Sequence number within the log.
    pub seq: u64,
}

/// Default bounded window of raw records kept in memory.
pub const DEFAULT_RETAINED: usize = 1 << 16;

/// The central administration console.
#[derive(Debug)]
pub struct AdminConsole {
    sessions: HashMap<SessionId, ClientDescription>,
    recent: VecDeque<AuditRecord>,
    retained_capacity: usize,
    total_events: u64,
    usage_enter: HashMap<SiteId, u64>,
    per_session: HashMap<SessionId, u64>,
    next_session: u64,
}

impl Default for AdminConsole {
    fn default() -> Self {
        AdminConsole::new()
    }
}

impl AdminConsole {
    /// Creates an empty console with the default retained window.
    pub fn new() -> AdminConsole {
        AdminConsole::with_retention(DEFAULT_RETAINED)
    }

    /// Creates a console retaining up to `retained` raw records.
    pub fn with_retention(retained: usize) -> AdminConsole {
        AdminConsole {
            sessions: HashMap::new(),
            recent: VecDeque::new(),
            retained_capacity: retained.max(1),
            total_events: 0,
            usage_enter: HashMap::new(),
            per_session: HashMap::new(),
            next_session: 0,
        }
    }

    /// The raw-record retention capacity.
    pub fn retained_capacity(&self) -> usize {
        self.retained_capacity
    }

    /// Performs the client handshake, assigning a session id.
    pub fn handshake(&mut self, description: ClientDescription) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, description);
        id
    }

    /// Appends an audit event. There is deliberately no API to modify or
    /// remove existing records.
    pub fn record(&mut self, session: SessionId, site: SiteId, kind: EventKind) {
        let seq = self.total_events;
        self.total_events += 1;
        *self.per_session.entry(session).or_insert(0) += 1;
        if kind == EventKind::Enter {
            *self.usage_enter.entry(site).or_insert(0) += 1;
        }
        if self.recent.len() == self.retained_capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(AuditRecord {
            session,
            site,
            kind,
            seq,
        });
    }

    /// Number of active sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The client description for a session.
    pub fn session(&self, id: SessionId) -> Option<&ClientDescription> {
        self.sessions.get(&id)
    }

    /// Total events ever recorded (exact, unaffected by retention).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// The retained window of raw records, oldest first.
    pub fn log(&self) -> impl Iterator<Item = &AuditRecord> {
        self.recent.iter()
    }

    /// Number of retained raw records.
    pub fn retained_len(&self) -> usize {
        self.recent.len()
    }

    /// Retained events for one session.
    pub fn events_for(&self, session: SessionId) -> impl Iterator<Item = &AuditRecord> {
        self.recent.iter().filter(move |r| r.session == session)
    }

    /// Exact event count for one session.
    pub fn session_events(&self, session: SessionId) -> u64 {
        self.per_session.get(&session).copied().unwrap_or(0)
    }

    /// Aggregates usage: how many times each site was entered, across the
    /// network (resource accounting / usage-pattern analysis). Exact over
    /// the whole stream.
    pub fn usage_by_site(&self) -> &HashMap<SiteId, u64> {
        &self.usage_enter
    }

    /// Distinct native formats across sessions (drives ahead-of-time
    /// compilation targets, §3.4).
    pub fn native_formats(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .sessions
            .values()
            .map(|d| d.native_format.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Where a client's audit events go.
///
/// The client-resident audit component reports upstream through this
/// trait; the console may sit in the same process ([`ConsoleSink`]) or
/// behind a socket (the net crate's `RemoteConsole`), and the client
/// does not care which.
pub trait AuditSink: Send {
    /// Reports one audit event for this sink's session.
    fn record(&mut self, site: SiteId, kind: EventKind);

    /// Flushes any buffered events; default is a no-op for unbuffered
    /// sinks.
    fn flush(&mut self) {}
}

/// An [`AuditSink`] writing directly into a shared in-process console.
pub struct ConsoleSink {
    console: Arc<Mutex<AdminConsole>>,
    session: SessionId,
}

impl ConsoleSink {
    /// Binds a sink to `console` under `session`.
    pub fn new(console: Arc<Mutex<AdminConsole>>, session: SessionId) -> ConsoleSink {
        ConsoleSink { console, session }
    }

    /// The session this sink reports under.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

impl AuditSink for ConsoleSink {
    fn record(&mut self, site: SiteId, kind: EventKind) {
        self.console.lock().record(self.session, site, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(user: &str, format: &str) -> ClientDescription {
        ClientDescription {
            user: user.into(),
            hardware: "x86/200MHz/64MB".into(),
            native_format: format.into(),
            jvm_version: "dvm-0.1".into(),
        }
    }

    #[test]
    fn handshake_assigns_unique_sessions() {
        let mut c = AdminConsole::new();
        let a = c.handshake(desc("alice", "x86"));
        let b = c.handshake(desc("bob", "alpha"));
        assert_ne!(a, b);
        assert_eq!(c.session_count(), 2);
        assert_eq!(c.session(a).unwrap().user, "alice");
    }

    #[test]
    fn log_is_append_only_and_ordered() {
        let mut c = AdminConsole::new();
        let s = c.handshake(desc("alice", "x86"));
        c.record(s, SiteId(0), EventKind::Enter);
        c.record(s, SiteId(0), EventKind::Exit);
        let log: Vec<_> = c.log().collect();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].seq, 0);
        assert_eq!(log[1].seq, 1);
        assert_eq!(c.total_events(), 2);
    }

    #[test]
    fn usage_aggregation_counts_entries() {
        let mut c = AdminConsole::new();
        let s1 = c.handshake(desc("alice", "x86"));
        let s2 = c.handshake(desc("bob", "x86"));
        for _ in 0..3 {
            c.record(s1, SiteId(7), EventKind::Enter);
        }
        c.record(s2, SiteId(7), EventKind::Enter);
        c.record(s2, SiteId(7), EventKind::Exit);
        assert_eq!(c.usage_by_site()[&SiteId(7)], 4);
        assert_eq!(c.session_events(s1), 3);
        assert_eq!(c.session_events(s2), 2);
    }

    #[test]
    fn retention_bounds_memory_but_counts_stay_exact() {
        let mut c = AdminConsole::with_retention(10);
        let s = c.handshake(desc("alice", "x86"));
        for _ in 0..100 {
            c.record(s, SiteId(1), EventKind::Enter);
        }
        assert_eq!(c.retained_len(), 10);
        assert_eq!(c.total_events(), 100);
        assert_eq!(c.usage_by_site()[&SiteId(1)], 100);
        // Oldest retained record is seq 90.
        assert_eq!(c.log().next().unwrap().seq, 90);
    }

    #[test]
    fn native_formats_deduplicate() {
        let mut c = AdminConsole::new();
        c.handshake(desc("a", "x86"));
        c.handshake(desc("b", "alpha"));
        c.handshake(desc("c", "x86"));
        assert_eq!(c.native_formats(), vec!["alpha", "x86"]);
    }
}
