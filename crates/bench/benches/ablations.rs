//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! - `pipeline/parse_once` vs `pipeline/parse_per_service`: §3's claim
//!   that "parsing and code generation are performed only once for all
//!   static services" matters.
//! - `proxy/cache_hit` vs `proxy/rewrite`: the rewrite cache's value.
//! - `security/cache_hit` vs `security/server_query`: the enforcement
//!   manager's client-side cache.
//! - `verify/with_env` vs `verify/empty_env`: cost of deferring link
//!   checks versus discharging them against a signature environment.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use dvm_classfile::ClassFile;
use dvm_core::{CostModel, Organization, ServiceConfig, StaticServiceStats};
use dvm_proxy::{Filter, RequestContext};
use dvm_security::{EnforcementManager, PermissionId, Policy, SecurityId, SecurityServer};
use dvm_verifier::{MapEnvironment, StaticVerifier};
use dvm_workload::{figure5_apps, generate};

fn sample_classes() -> Vec<ClassFile> {
    let spec = figure5_apps().remove(0).scaled(1, 20000);
    generate(&spec).classes
}

fn bench_pipeline(c: &mut Criterion) {
    let classes = sample_classes();
    let stats = Arc::new(Mutex::new(StaticServiceStats::default()));
    let policy = Arc::new(Mutex::new(
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
    ));
    let sites = Arc::new(Mutex::new(dvm_monitor::SiteTable::new()));

    let make_filters = || -> Vec<Box<dyn Filter>> {
        vec![
            Box::new(dvm_core::filters::VerifierFilter::new(
                StaticVerifier::new(MapEnvironment::with_bootstrap()),
                stats.clone(),
            )),
            Box::new(dvm_core::filters::SecurityFilter::new(
                policy.clone(),
                SecurityId(1),
                stats.clone(),
            )),
            Box::new(dvm_core::filters::AuditFilter::new(
                sites.clone(),
                stats.clone(),
            )),
        ]
    };

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    // Parse once: one parse, all filters, one generate.
    group.bench_function("parse_once", |b| {
        let filters = make_filters();
        let bytes: Vec<Vec<u8>> = classes
            .iter()
            .map(|cf| cf.clone().to_bytes().unwrap())
            .collect();
        let ctx = RequestContext::default();
        b.iter(|| {
            for raw in &bytes {
                let mut class = ClassFile::parse(raw).unwrap();
                for f in &filters {
                    class = f.apply(class, &ctx).unwrap();
                }
                std::hint::black_box(class.to_bytes().unwrap());
            }
        });
    });
    // Parse per service: each filter parses and regenerates (the naive
    // service decomposition §2 warns about).
    group.bench_function("parse_per_service", |b| {
        let filters = make_filters();
        let bytes: Vec<Vec<u8>> = classes
            .iter()
            .map(|cf| cf.clone().to_bytes().unwrap())
            .collect();
        let ctx = RequestContext::default();
        b.iter(|| {
            for raw in &bytes {
                let mut raw = raw.clone();
                for f in &filters {
                    let class = ClassFile::parse(&raw).unwrap();
                    let mut out = f.apply(class, &ctx).unwrap();
                    raw = out.to_bytes().unwrap();
                }
                std::hint::black_box(raw);
            }
        });
    });
    group.finish();
}

fn bench_proxy_cache(c: &mut Criterion) {
    let classes = sample_classes();
    let policy = Policy::parse(dvm_security::policy::example_policy()).unwrap();
    let name = classes[1].name().unwrap().to_owned();
    let url = format!("class://{name}");
    let ctx = RequestContext {
        principal: "applets".into(),
        ..Default::default()
    };

    let mut group = c.benchmark_group("proxy");
    group.sample_size(20);
    group.bench_function("cache_hit", |b| {
        let org = Organization::new(
            &classes,
            policy.clone(),
            ServiceConfig::dvm(),
            CostModel::default(),
        )
        .unwrap();
        org.proxy.handle_request(&url, &ctx).unwrap(); // warm
        b.iter(|| std::hint::black_box(org.proxy.handle_request(&url, &ctx).unwrap()));
    });
    group.bench_function("rewrite", |b| {
        let mut config = ServiceConfig::dvm();
        config.caching = false;
        let org =
            Organization::new(&classes, policy.clone(), config, CostModel::default()).unwrap();
        b.iter(|| std::hint::black_box(org.proxy.handle_request(&url, &ctx).unwrap()));
    });
    group.finish();
}

fn bench_security_cache(c: &mut Criterion) {
    let policy = Policy::parse(dvm_security::policy::example_policy()).unwrap();
    let sid = policy.principals["applets"];
    let perm = policy.permissions["file.read"];

    let mut group = c.benchmark_group("security");
    group.bench_function("cache_hit", |b| {
        let server = Arc::new(Mutex::new(SecurityServer::new(policy.clone())));
        let mut em = EnforcementManager::register(server);
        em.check(sid, perm); // warm
        b.iter(|| std::hint::black_box(em.check(sid, perm)));
    });
    group.bench_function("server_query", |b| {
        let server = Arc::new(Mutex::new(SecurityServer::new(policy.clone())));
        b.iter(|| {
            // A fresh query each time (bypasses the client cache by asking
            // the server directly, as a cache-less client would).
            std::hint::black_box(server.lock().query(sid, PermissionId(perm.0)))
        });
    });
    group.finish();
}

fn bench_verifier_env(c: &mut Criterion) {
    let classes = sample_classes();
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    group.bench_function("with_env", |b| {
        let mut env = MapEnvironment::with_bootstrap();
        for cf in &classes {
            env.add(cf);
        }
        let v = StaticVerifier::new(env);
        b.iter(|| {
            for cf in &classes {
                std::hint::black_box(v.verify(cf.clone()).unwrap());
            }
        });
    });
    group.bench_function("empty_env", |b| {
        let v = StaticVerifier::new(MapEnvironment::new());
        b.iter(|| {
            for cf in &classes {
                std::hint::black_box(v.verify(cf.clone()).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_proxy_cache,
    bench_security_cache,
    bench_verifier_env
);
criterion_main!(benches);
