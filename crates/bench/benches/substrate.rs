//! Substrate micro-benchmarks: the building blocks every service rides
//! on — class-file parse/serialize, bytecode decode/encode, interpreter
//! throughput, MD5, and the network compiler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dvm_bytecode::Code;
use dvm_classfile::ClassFile;
use dvm_compiler::{NetworkCompiler, Target};
use dvm_jvm::{MapProvider, Vm};
use dvm_proxy::md5::md5;
use dvm_workload::{figure5_apps, generate};

fn sample() -> (Vec<ClassFile>, Vec<Vec<u8>>) {
    let spec = figure5_apps().remove(0).scaled(1, 20000);
    let classes = generate(&spec).classes;
    let bytes = classes
        .iter()
        .map(|c| c.clone().to_bytes().unwrap())
        .collect();
    (classes, bytes)
}

fn bench_classfile(c: &mut Criterion) {
    let (classes, bytes) = sample();
    let total: usize = bytes.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("classfile");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("parse", |b| {
        b.iter(|| {
            for raw in &bytes {
                std::hint::black_box(ClassFile::parse(raw).unwrap());
            }
        });
    });
    group.bench_function("serialize", |b| {
        b.iter(|| {
            for cf in &classes {
                std::hint::black_box(cf.clone().to_bytes().unwrap());
            }
        });
    });
    group.finish();
}

fn bench_bytecode(c: &mut Criterion) {
    let (classes, _) = sample();
    let mut group = c.benchmark_group("bytecode");
    group.sample_size(20);
    group.bench_function("decode_encode", |b| {
        b.iter(|| {
            for cf in &classes {
                for m in &cf.methods {
                    if let Some(attr) = m.code() {
                        let code = Code::decode(attr).unwrap();
                        std::hint::black_box(code.encode(&cf.pool).unwrap());
                    }
                }
            }
        });
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let spec = figure5_apps().remove(0).scaled(1, 2000);
    let app = generate(&spec);
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    group.bench_function("jlex_scaled", |b| {
        b.iter(|| {
            let mut provider = MapProvider::new();
            for cf in &app.classes {
                let mut cf = cf.clone();
                provider.insert_class(&mut cf).unwrap();
            }
            let mut vm = Vm::new(Box::new(provider)).unwrap();
            std::hint::black_box(vm.run_main(&app.main_class).unwrap());
        });
    });
    group.finish();
}

fn bench_md5(c: &mut Criterion) {
    let data = vec![0xA5u8; 64 * 1024];
    let mut group = c.benchmark_group("md5");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| std::hint::black_box(md5(&data))));
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let (classes, _) = sample();
    let mut group = c.benchmark_group("compiler");
    group.sample_size(20);
    group.bench_function("compile_class_x86", |b| {
        b.iter(|| {
            let mut nc = NetworkCompiler::new();
            std::hint::black_box(nc.compile(&classes[1], Target::X86).unwrap());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classfile,
    bench_bytecode,
    bench_interpreter,
    bench_md5,
    bench_compiler
);
criterion_main!(benches);
