//! Corpus replay and deterministic smoke for the fuzzing harness.
//!
//! Two contracts, enforced in CI on every change:
//!
//! * every committed `tests/corpus/**/*.hex` entry replays through its
//!   matching fuzz target without panicking — a corpus entry is a pinned
//!   regression the decoders must keep rejecting gracefully;
//! * a short fixed-seed fuzzing session over each target finds zero
//!   crashes, and (when probes are compiled in) discovers coverage
//!   beyond the seed corpus — the search is alive, not just spinning.
//!
//! The coverage map is one global resource, so every test here takes
//! the same lock before constructing a `Fuzzer` or touching probes.

use std::sync::{Mutex, MutexGuard};

use dvm_bench::fuzz::{all_targets, TARGET_NAMES};
use dvm_fuzz::{FuzzConfig, Fuzzer, Mutator};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn every_corpus_entry_replays_without_panicking() {
    let _guard = lock();
    let mut cases = 0usize;
    for mut t in all_targets() {
        if !t.corpus_dir.is_dir() {
            continue;
        }
        for entry in dvm_fuzz::corpus::load_dir(&t.corpus_dir) {
            (t.run)(&entry.bytes);
            cases += 1;
        }
    }
    assert!(
        cases >= 30,
        "expected the committed corpora to produce at least 30 replays, saw {cases}"
    );
}

#[test]
fn every_seed_input_replays_without_panicking() {
    let _guard = lock();
    for mut t in all_targets() {
        let seeds = std::mem::take(&mut t.seeds);
        assert!(!seeds.is_empty(), "target {} has no seeds", t.name);
        for bytes in seeds {
            (t.run)(&bytes);
        }
    }
}

#[test]
fn deterministic_smoke_finds_coverage_and_no_crashes() {
    let _guard = lock();
    let mut names = Vec::new();
    for mut t in all_targets() {
        names.push(t.name);
        let iters = match t.name {
            "store" => 800,
            "verifier" => 600,
            _ => 2_000,
        };
        let mut fuzzer = Fuzzer::new(FuzzConfig::default(), Mutator::new(t.dict.clone()));
        for bytes in std::mem::take(&mut t.seeds) {
            fuzzer.add_seed(&mut *t.run, bytes);
        }
        let report = fuzzer.run(&mut *t.run, iters);
        assert!(
            report.crashes.is_empty(),
            "target {} crashed in the smoke session:\n{}",
            t.name,
            report.crashes[0].replay_line(t.name)
        );
        if dvm_fuzz::cov::enabled() {
            assert!(
                report.total_features > 0,
                "target {} recorded no coverage with probes enabled",
                t.name
            );
            assert!(
                report.new_features() > 0,
                "target {} discovered nothing beyond its seeds",
                t.name
            );
        }
    }
    assert_eq!(names, TARGET_NAMES, "smoke must cover every target");
}

#[test]
fn same_seed_smoke_is_deterministic() {
    let _guard = lock();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut t = dvm_bench::fuzz::target("frame").unwrap();
        let mut fuzzer = Fuzzer::new(FuzzConfig::default(), Mutator::new(t.dict.clone()));
        for bytes in std::mem::take(&mut t.seeds) {
            fuzzer.add_seed(&mut *t.run, bytes);
        }
        let report = fuzzer.run(&mut *t.run, 2_000);
        runs.push((
            report.execs,
            report.total_features,
            report.corpus_len,
            report.crashes.len(),
        ));
    }
    assert_eq!(
        runs[0], runs[1],
        "a session must be a pure function of its seed"
    );
}
