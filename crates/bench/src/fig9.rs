//! The Figure 9 security microbenchmarks.
//!
//! Four operations: GetProperty, OpenFile, ChangeThreadPriority, ReadFile.
//! Each is measured as a one-shot static method under three service
//! architectures: no checking (baseline), monolithic JDK-style stack
//! introspection (built into the library at anticipated sites; file read
//! is *not* anticipated — "N/A"), and the DVM enforcement manager
//! (injected checks, first call downloads the policy portion).

use dvm_bytecode::Asm;
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_core::{CostModel, MonolithicClient, Organization, ServiceConfig};
use dvm_jvm::{Completion, MapProvider, Vm};
use dvm_netsim::SimTime;

use crate::runners::experiment_policy;

/// The benchmarked operations, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `System.getProperty("os.name")`.
    GetProperty,
    /// `new FileInputStream(path)` + close.
    OpenFile,
    /// `Thread.currentThread().setPriority(5)`.
    ChangeThreadPriority,
    /// One `FileInputStream.read()` from an open stream.
    ReadFile,
}

impl MicroOp {
    /// All rows, in paper order.
    pub fn all() -> [MicroOp; 4] {
        [
            MicroOp::GetProperty,
            MicroOp::OpenFile,
            MicroOp::ChangeThreadPriority,
            MicroOp::ReadFile,
        ]
    }

    /// Display label matching the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            MicroOp::GetProperty => "Get Property",
            MicroOp::OpenFile => "Open File",
            MicroOp::ChangeThreadPriority => "Change Thread Priority",
            MicroOp::ReadFile => "Read File",
        }
    }
}

/// One row of measurements (milliseconds, as in the paper's table).
#[derive(Debug, Clone, Copy)]
pub struct MicroRow {
    /// Unchecked operation latency.
    pub baseline_ms: f64,
    /// JDK-checked latency, or `None` when the JDK has no check (N/A).
    pub jdk_check_ms: Option<f64>,
    /// DVM first check (includes the policy download).
    pub dvm_download_ms: f64,
    /// DVM steady-state checked latency.
    pub dvm_check_ms: f64,
}

impl MicroRow {
    /// JDK overhead over baseline.
    pub fn jdk_overhead_ms(&self) -> Option<f64> {
        self.jdk_check_ms.map(|c| c - self.baseline_ms)
    }

    /// DVM steady-state overhead over baseline.
    pub fn dvm_overhead_ms(&self) -> f64 {
        self.dvm_check_ms - self.baseline_ms
    }
}

/// Builds the microbenchmark class: one `op()V` method per operation plus
/// an open stream for `ReadFile`.
pub fn microbench_class(op: MicroOp) -> ClassFile {
    let mut cf = ClassBuilder::new("bench/Micro").build();
    match op {
        MicroOp::GetProperty => {
            let getprop = cf
                .pool
                .methodref(
                    "java/lang/System",
                    "getProperty",
                    "(Ljava/lang/String;)Ljava/lang/String;",
                )
                .unwrap();
            let key = cf.pool.string("os.name").unwrap();
            let mut a = Asm::new(0);
            a.ldc(key).invokestatic(getprop).pop().ret();
            push(&mut cf, "op", a);
        }
        MicroOp::OpenFile => {
            let fis = cf.pool.class("java/io/FileInputStream").unwrap();
            let init = cf
                .pool
                .methodref("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
                .unwrap();
            let close = cf
                .pool
                .methodref("java/io/FileInputStream", "close", "()V")
                .unwrap();
            let path = cf.pool.string("/data/bench").unwrap();
            let mut a = Asm::new(1);
            a.new_object(fis).dup().ldc(path).invokespecial(init);
            a.astore(0).aload(0).invokevirtual(close).ret();
            push(&mut cf, "op", a);
        }
        MicroOp::ChangeThreadPriority => {
            let current = cf
                .pool
                .methodref("java/lang/Thread", "currentThread", "()Ljava/lang/Thread;")
                .unwrap();
            let set = cf
                .pool
                .methodref("java/lang/Thread", "setPriority", "(I)V")
                .unwrap();
            let mut a = Asm::new(0);
            a.invokestatic(current).iconst(5).invokevirtual(set).ret();
            push(&mut cf, "op", a);
        }
        MicroOp::ReadFile => {
            // static FileInputStream IN; <clinit> opens it; op() reads one
            // byte.
            let ni = cf.pool.utf8("IN").unwrap();
            let di = cf.pool.utf8("Ljava/io/FileInputStream;").unwrap();
            cf.fields.push(MemberInfo {
                access: AccessFlags::STATIC,
                name_index: ni,
                descriptor_index: di,
                attributes: vec![],
            });
            let field = cf
                .pool
                .fieldref("bench/Micro", "IN", "Ljava/io/FileInputStream;")
                .unwrap();
            let fis = cf.pool.class("java/io/FileInputStream").unwrap();
            let init = cf
                .pool
                .methodref("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
                .unwrap();
            let path = cf.pool.string("/data/bench").unwrap();
            let mut a = Asm::new(0);
            a.new_object(fis)
                .dup()
                .ldc(path)
                .invokespecial(init)
                .putstatic(field)
                .ret();
            push_named(&mut cf, "<clinit>", AccessFlags::STATIC, a);
            let read = cf
                .pool
                .methodref("java/io/FileInputStream", "read", "()I")
                .unwrap();
            let mut a = Asm::new(0);
            a.getstatic(field).invokevirtual(read).pop().ret();
            push(&mut cf, "op", a);
        }
    }
    cf
}

fn push(cf: &mut ClassFile, name: &str, a: Asm) {
    push_named(cf, name, AccessFlags::PUBLIC | AccessFlags::STATIC, a);
}

fn push_named(cf: &mut ClassFile, name: &str, access: AccessFlags, a: Asm) {
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let n = cf.pool.utf8(name).unwrap();
    let d = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
}

const BENCH_FILE: &str = "/data/bench";

fn ms(cost: &CostModel, cycles: u64) -> f64 {
    cost.cpu.time_for(cycles).as_millis_f64()
}

fn one_call(vm: &mut Vm) -> u64 {
    let before = vm.stats.cycles;
    match vm.run_static("bench/Micro", "op", "()V", vec![]) {
        Ok(Completion::Normal(_)) => {}
        Ok(Completion::Exception(e)) => {
            let info = vm.exception_message(e);
            panic!("microbench threw: {info:?}");
        }
        Err(e) => panic!("microbench failed: {e}"),
    }
    vm.stats.cycles - before
}

/// Measures one operation under all three architectures.
pub fn measure(op: MicroOp) -> MicroRow {
    let cost = CostModel::default();
    let cf = microbench_class(op);

    // Baseline: a bare VM, no services, no built-in checks.
    let baseline_cycles = {
        let mut provider = MapProvider::new();
        let mut c = cf.clone();
        provider.insert_class(&mut c).unwrap();
        let mut vm = Vm::new(Box::new(provider)).unwrap();
        vm.add_file(BENCH_FILE, vec![7; 4096]);
        one_call(&mut vm); // warm (loads class, runs <clinit>)
        one_call(&mut vm)
    };

    // JDK: monolithic client with anticipated built-in checks.
    let jdk_cycles = {
        let mut client = MonolithicClient::new(std::slice::from_ref(&cf), cost).unwrap();
        client.vm.add_file(BENCH_FILE, vec![7; 4096]);
        let warm_checks = {
            one_call(&mut client.vm);
            client.vm.stats.security_checks
        };
        let before_checks = client.vm.stats.security_checks;
        let cycles = one_call(&mut client.vm);
        let checked = client.vm.stats.security_checks > before_checks;
        let _ = warm_checks;
        if checked {
            Some(cycles)
        } else {
            None // the JDK has no check at this site (Figure 9's N/A)
        }
    };

    // DVM: organization client running the rewritten code.
    let (dvm_download_cycles, dvm_cycles) = {
        let org =
            Organization::new(&[cf], experiment_policy(), ServiceConfig::dvm(), cost).unwrap();
        let mut client = org.client("bench", "applets").unwrap();
        client.vm.add_file(BENCH_FILE, vec![7; 4096]);
        // First call: class fetch + rewrite + policy download. Isolate the
        // download by preloading the class via a dry run of <clinit> — the
        // first op() call still pays the enforcement manager's download.
        let first = one_call(&mut client.vm);
        let steady = one_call(&mut client.vm);
        (first, steady)
    };

    MicroRow {
        baseline_ms: ms(&cost, baseline_cycles),
        jdk_check_ms: jdk_cycles.map(|c| ms(&cost, c)),
        dvm_download_ms: ms(&cost, dvm_download_cycles),
        dvm_check_ms: ms(&cost, dvm_cycles),
    }
}

/// Runs the whole table.
pub fn run_all() -> Vec<(MicroOp, MicroRow)> {
    MicroOp::all()
        .into_iter()
        .map(|op| (op, measure(op)))
        .collect()
}

/// Formats milliseconds like the paper (4 significant-ish decimals).
pub fn fmt_ms(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats the simulated time for diagnostics.
pub fn fmt_time(t: SimTime) -> String {
    fmt_ms(t.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_holds() {
        let rows = run_all();
        let get = |op: MicroOp| rows.iter().find(|(o, _)| *o == op).unwrap().1;

        let gp = get(MicroOp::GetProperty);
        let of = get(MicroOp::OpenFile);
        let tp = get(MicroOp::ChangeThreadPriority);
        let rf = get(MicroOp::ReadFile);

        // The JDK checks the three anticipated operations but not reads.
        assert!(gp.jdk_check_ms.is_some());
        assert!(of.jdk_check_ms.is_some());
        assert!(tp.jdk_check_ms.is_some());
        assert!(
            rf.jdk_check_ms.is_none(),
            "file read must be N/A in the JDK model"
        );

        // The DVM checks everything, including reads.
        assert!(rf.dvm_overhead_ms() > 0.0);

        // First DVM check pays the ~5 ms policy download.
        assert!(gp.dvm_download_ms > 4.0, "download {}", gp.dvm_download_ms);

        // GetProperty: DVM steady state beats the JDK's stack walk.
        assert!(
            gp.dvm_overhead_ms() < gp.jdk_overhead_ms().unwrap(),
            "dvm {} vs jdk {:?}",
            gp.dvm_overhead_ms(),
            gp.jdk_overhead_ms()
        );

        // OpenFile: the JDK's policy-file machinery makes the DVM look
        // dramatically better (paper: 300×; require at least 50×).
        let ratio = of.jdk_overhead_ms().unwrap() / of.dvm_overhead_ms();
        assert!(ratio > 50.0, "open-file overhead ratio only {ratio}");
    }
}
