//! Standard experiment runners shared by the `repro_*` binaries.

use dvm_core::{
    CostModel, MonolithicClient, MonolithicReport, Organization, RunReport, ServiceConfig,
};
use dvm_security::{policy::example_policy, Policy};
use dvm_workload::{generate, AppSpec, GeneratedApp};

/// Workload scale, settable from the command line (`--quick` for CI-speed
/// runs, default for paper-shaped magnitudes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Fast: iterations divided by 50.
    Quick,
    /// Full default scale.
    Full,
}

impl ExperimentScale {
    /// Reads the scale from process arguments.
    pub fn from_args() -> ExperimentScale {
        if std::env::args().any(|a| a == "--quick") {
            ExperimentScale::Quick
        } else {
            ExperimentScale::Full
        }
    }

    /// Applies the scale to a specification.
    pub fn apply(&self, spec: &AppSpec) -> AppSpec {
        match self {
            ExperimentScale::Quick => spec.scaled(1, 2000),
            ExperimentScale::Full => spec.clone(),
        }
    }
}

/// The standard policy used by the experiments (forces the services to
/// parse every class and examine every instruction, as in §4.1).
pub fn experiment_policy() -> Policy {
    Policy::parse(example_policy()).expect("example policy parses")
}

/// Runs `app` on a monolithic client.
pub fn run_monolithic(app: &GeneratedApp) -> MonolithicReport {
    let mut client =
        MonolithicClient::new(&app.classes, CostModel::default()).expect("client builds");
    client.run_main(&app.main_class).expect("runs")
}

/// Runs `app` on a fresh DVM organization (uncached first execution).
pub fn run_dvm(app: &GeneratedApp) -> RunReport {
    let org = Organization::new(
        &app.classes,
        experiment_policy(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .expect("organization builds");
    let mut client = org.client("bench", "applets").expect("client builds");
    client.run_main(&app.main_class).expect("runs")
}

/// Runs `app` twice on one organization: returns `(uncached, cached)`
/// reports (the cached run is a second client hitting the proxy cache).
pub fn run_dvm_cached_pair(app: &GeneratedApp) -> (RunReport, RunReport) {
    let org = Organization::new(
        &app.classes,
        experiment_policy(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .expect("organization builds");
    let mut first = org.client("bench1", "applets").expect("client builds");
    let r1 = first.run_main(&app.main_class).expect("runs");
    let mut second = org.client("bench2", "applets").expect("client builds");
    let r2 = second.run_main(&app.main_class).expect("runs");
    (r1, r2)
}

/// Generates an app at the given scale.
pub fn generate_scaled(spec: &AppSpec, scale: ExperimentScale) -> GeneratedApp {
    generate(&scale.apply(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_workload::figure5_apps;

    #[test]
    fn cached_pair_is_faster_second_time() {
        let spec = figure5_apps().remove(0).scaled(1, 20000);
        let app = generate(&spec);
        let (first, second) = run_dvm_cached_pair(&app);
        assert!(second.total_time < first.total_time);
    }
}
