//! Per-target fuzzing harnesses for `repro_fuzz` (DESIGN.md §5h).
//!
//! The untrusted-input surfaces of the proxy — the wire-frame decoder,
//! the incremental frame assembler (the reactor's byte-arrival state
//! machine), the classfile parser, the bytecode verifier, the DVMX
//! exec-package decoder, and store segment recovery — each get one
//! [`FuzzTarget`]: a closure that feeds arbitrary bytes to the decoder
//! (any `Err` is a correct rejection; only a panic is a finding), a
//! seed population drawn from the committed `tests/corpus/` entries
//! plus freshly *encoded valid* inputs (so the search starts on the
//! accept path, not just the reject paths the hostile corpora pin),
//! and a dictionary of the magic bytes and tag values the grammar
//! keys on.
//!
//! The targets are data, not policy: `repro_fuzz` owns iteration
//! budgets and reporting, and the `fuzz_replay` integration test
//! replays every committed corpus entry through the same closures.

use std::path::{Path, PathBuf};

use dvm_classfile::ClassFile;
use dvm_fuzz::corpus as fuzz_corpus;
use dvm_net::{ErrorCode, Frame, FrameAssembler, Hello};
use dvm_proxy::ServedFrom;
use dvm_store::{Store, StoreConfig};
use dvm_verifier::{MapEnvironment, StaticVerifier};

/// Names of the six fuzzed surfaces, in reporting order.
pub const TARGET_NAMES: [&str; 6] = [
    "frame",
    "assembler",
    "classfile",
    "verifier",
    "exec",
    "store",
];

/// The closure feeding one input to a target's decoder.
pub type TargetFn = Box<dyn FnMut(&[u8])>;

/// One fuzzable decoder surface.
pub struct FuzzTarget {
    /// Short name used by `--target`, replay lines, and reports.
    pub name: &'static str,
    /// Seed-corpus directory (may not exist for young targets).
    pub corpus_dir: PathBuf,
    /// Magic bytes and tag values stamped in by the dictionary pass.
    pub dict: Vec<Vec<u8>>,
    /// Initial population: corpus entries plus valid encodings.
    pub seeds: Vec<Vec<u8>>,
    /// Feeds one input to the decoder; panics are findings.
    pub run: TargetFn,
    /// Full-session iteration budget (quick mode divides this down).
    pub default_iters: u64,
}

/// Root of the committed hostile-input corpora, resolved relative to
/// this crate so binaries and tests agree regardless of working
/// directory.
pub fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Bytes of every `*.hex` entry under `dir`; empty when the directory
/// does not exist yet (a target with no committed corpus).
fn corpus_seeds(dir: &Path) -> Vec<Vec<u8>> {
    if !dir.is_dir() {
        return Vec::new();
    }
    fuzz_corpus::load_dir(dir)
        .into_iter()
        .map(|e| e.bytes)
        .collect()
}

/// A small pool of classfile byte images from the deterministic
/// workload generator — the valid-input seeds for the classfile,
/// verifier, and exec targets.
fn workload_class_bytes() -> Vec<Vec<u8>> {
    static CACHE: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let mut out = Vec::new();
            for applet in dvm_workload::corpus(7).into_iter().take(2) {
                for cf in applet.classes.into_iter().take(2) {
                    let mut cf = cf;
                    if let Ok(bytes) = cf.to_bytes() {
                        out.push(bytes);
                    }
                }
            }
            out
        })
        .clone()
}

/// The wire-frame decoder: both the length-prefixed stream entry point
/// and the body decoder, so mutations past the 4-byte prefix hurdle
/// still reach the per-tag grammar.
fn frame_target() -> FuzzTarget {
    let mut seeds = corpus_seeds(&corpus_root());
    for frame in sample_frames() {
        let enc = frame.encode();
        // Body-only variant: `decode_body` sees these directly.
        seeds.push(enc[4..].to_vec());
        seeds.push(enc);
    }
    let mut dict: Vec<Vec<u8>> = (0x01u8..=0x13).map(|t| vec![t]).collect();
    dict.push(b"http://origin/App.class".to_vec());
    dict.push(vec![0x00, 0x00, 0x00, 0x01]);
    FuzzTarget {
        name: "frame",
        corpus_dir: corpus_root(),
        dict,
        seeds,
        run: Box::new(|input: &[u8]| {
            let _ = Frame::decode(input);
            let _ = Frame::decode_body(input);
        }),
        default_iters: 60_000,
    }
}

/// The incremental frame assembler, checked for *chunk-partition
/// equivalence*: the input's first byte seeds a deterministic partition
/// of the remaining bytes into hostile chunks (1–13 bytes each), and
/// feeding those chunks through [`FrameAssembler`] must yield exactly
/// the frames — and the same terminal error — as a one-shot
/// `Frame::try_decode` pass over the whole buffer. Short reads must
/// re-buffer, never re-parse; the `assert_eq!`s turn any divergence
/// into a panic, i.e. a finding. This is the reactor's byte-arrival
/// state machine, fuzzed the way a hostile network delivers bytes.
fn assembler_target() -> FuzzTarget {
    // Reuse the hostile frame corpus: each entry's first byte becomes
    // the partition spec and the rest the stream, so every pinned
    // reject path is also partition-tested. Fresh seeds cover the
    // accept path with pipelined multi-frame streams.
    let mut seeds = corpus_seeds(&corpus_root());
    for spec in [0u8, 3, 11] {
        let mut stream = vec![spec];
        for frame in sample_frames().into_iter().take(6) {
            stream.extend(frame.encode());
        }
        seeds.push(stream);
    }
    let mut dict: Vec<Vec<u8>> = (0x01u8..=0x13).map(|t| vec![t]).collect();
    dict.push(vec![0x00, 0x00, 0x00, 0x01]);
    dict.push(vec![0x00, 0x00, 0x00, 0x00]);
    FuzzTarget {
        name: "assembler",
        corpus_dir: corpus_root(),
        dict,
        seeds,
        run: Box::new(|input: &[u8]| {
            let Some((&spec, stream)) = input.split_first() else {
                return;
            };
            // Reference: one-shot decode over the whole buffer.
            let mut rest = stream;
            let mut want = Vec::new();
            let mut want_err = None;
            loop {
                match Frame::try_decode(rest) {
                    Ok(Some((frame, consumed))) => {
                        want.push(frame);
                        rest = &rest[consumed..];
                    }
                    Ok(None) => break,
                    Err(e) => {
                        want_err = Some(e);
                        break;
                    }
                }
            }
            // Same bytes, hostile arrival: chunk sizes are a pure
            // function of (spec, chunk index).
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            let mut got_err = None;
            let mut pos = 0usize;
            let mut i = 0usize;
            'feed: while pos < stream.len() {
                let size = (spec as usize)
                    .wrapping_mul(31)
                    .wrapping_add(i.wrapping_mul(17))
                    % 13
                    + 1;
                let end = (pos + size).min(stream.len());
                asm.push(&stream[pos..end]);
                pos = end;
                i += 1;
                loop {
                    match asm.next_frame() {
                        Ok(Some(frame)) => got.push(frame),
                        Ok(None) => break,
                        Err(e) => {
                            got_err = Some(e);
                            break 'feed;
                        }
                    }
                }
            }
            assert_eq!(got, want, "chunked frames diverged from one-shot decode");
            assert_eq!(got_err, want_err, "chunked error diverged from one-shot");
        }),
        default_iters: 40_000,
    }
}

/// One valid frame per variant, so the seed corpus covers the whole
/// accept grammar (the hostile corpus pins the reject paths).
fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello(Hello {
            user: "alice".into(),
            principal: "applet".into(),
            hardware: "x86/200MHz/64MB".into(),
            native_format: "x86".into(),
            jvm_version: "1.1.6".into(),
        }),
        Frame::Welcome { session: 7 },
        Frame::CodeRequest {
            request_id: 1,
            session: 7,
            url: "http://origin/App.class".into(),
            native_format: "x86".into(),
            trace: None,
        },
        Frame::CodeResponse {
            request_id: 1,
            served_from: ServedFrom::Rewritten,
            processing_ns: 1234,
            bytes: vec![0xCA, 0xFE, 0xBA, 0xBE],
        },
        Frame::Error {
            request_id: 0,
            code: ErrorCode::Parse,
            message: "bad class".into(),
        },
        Frame::AuditEvent {
            session: 7,
            site: 3,
            kind: 1,
        },
        Frame::PeerGet {
            request_id: 2,
            url: "http://origin/App.class".into(),
        },
        Frame::PeerPut {
            url: "http://origin/App.class".into(),
            bytes: vec![1, 2, 3],
        },
        Frame::StatsRequest {
            request_id: 3,
            include_spans: true,
        },
        Frame::StatsResponse {
            request_id: 3,
            report: vec![0; 8],
        },
        Frame::RingUpdate {
            epoch: 4,
            ring: vec![],
        },
        Frame::MigrateBegin {
            request_id: 5,
            epoch: 4,
            shard: 1,
            resume_from: String::new(),
        },
        Frame::MigrateChunk {
            request_id: 5,
            seq: 0,
            url: "http://origin/App.class".into(),
            bytes: vec![9, 9, 9],
        },
        Frame::MigrateEnd {
            request_id: 5,
            total: 1,
            complete: true,
        },
        Frame::MetricsScrape { request_id: 6 },
        Frame::MetricsText {
            request_id: 6,
            text: b"dvm_up 1\n".to_vec(),
        },
        Frame::EventsRequest {
            request_id: 7,
            after_seq: 0,
            max: 16,
        },
        Frame::EventsResponse {
            request_id: 7,
            next_seq: 0,
            events: vec![],
        },
        Frame::Bye,
    ]
}

/// Dictionary shared by the classfile and verifier targets: the magic,
/// a plausible version, constant-pool tags, and the attribute names
/// and descriptors the parser compares against.
fn classfile_dict() -> Vec<Vec<u8>> {
    let mut dict: Vec<Vec<u8>> = vec![
        vec![0xCA, 0xFE, 0xBA, 0xBE],
        vec![0x00, 0x03, 0x00, 0x2D],
        b"Code".to_vec(),
        b"ConstantValue".to_vec(),
        b"Exceptions".to_vec(),
        b"SourceFile".to_vec(),
        b"Synthetic".to_vec(),
        b"Deprecated".to_vec(),
        b"()V".to_vec(),
        b"java/lang/Object".to_vec(),
    ];
    for tag in [1u8, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12] {
        dict.push(vec![tag]);
    }
    dict
}

/// The classfile parser on raw bytes.
fn classfile_target() -> FuzzTarget {
    let dir = corpus_root().join("classfile");
    let mut seeds = corpus_seeds(&dir);
    seeds.extend(workload_class_bytes());
    seeds.push(vec![0xCA, 0xFE, 0xBA, 0xBE]);
    FuzzTarget {
        name: "classfile",
        corpus_dir: dir,
        dict: classfile_dict(),
        seeds,
        run: Box::new(|input: &[u8]| {
            let _ = ClassFile::parse(input);
        }),
        default_iters: 25_000,
    }
}

/// Parse-then-verify: inputs that survive the parser exercise all
/// three verifier phases (the paper's proxy runs exactly this chain on
/// every fetched class).
fn verifier_target() -> FuzzTarget {
    let dir = corpus_root().join("classfile");
    let mut seeds = corpus_seeds(&dir);
    seeds.extend(workload_class_bytes());
    let verifier = StaticVerifier::new(MapEnvironment::with_bootstrap());
    FuzzTarget {
        name: "verifier",
        corpus_dir: dir,
        dict: classfile_dict(),
        seeds,
        run: Box::new(move |input: &[u8]| {
            if let Ok(cf) = ClassFile::parse(input) {
                let _ = verifier.verify(cf);
            }
        }),
        default_iters: 12_000,
    }
}

/// The DVMX exec-package decoder.
fn exec_target() -> FuzzTarget {
    let dir = corpus_root().join("exec");
    let mut seeds = corpus_seeds(&dir);
    // Valid packages: compile workload classes to register IR and
    // encode them, so the search starts inside the accept grammar.
    for bytes in workload_class_bytes() {
        if let Ok(cf) = ClassFile::parse(&bytes) {
            if let Ok((ir, _stats)) = dvm_exec::compile_class(&cf) {
                seeds.push(dvm_exec::encode(&ir));
            }
        }
    }
    let mut dict: Vec<Vec<u8>> = vec![b"DVMX".to_vec(), vec![0x01]];
    for tag in [1u8, 15, 16, 22, 33] {
        dict.push(vec![tag]);
    }
    FuzzTarget {
        name: "exec",
        corpus_dir: dir,
        dict,
        seeds,
        run: Box::new(|input: &[u8]| {
            let _ = dvm_exec::decode(input);
        }),
        default_iters: 40_000,
    }
}

/// Store segment recovery: each execution materializes the input as
/// segment 0 of a scratch directory and opens the store, driving the
/// header check, record walk, and torn-tail truncation.
fn store_target() -> FuzzTarget {
    let dir = corpus_root().join("store");
    let mut seeds = corpus_seeds(&dir);
    seeds.push(valid_segment_image());
    let scratch = std::env::temp_dir().join(format!("dvm-fuzz-store-{}", std::process::id()));
    FuzzTarget {
        name: "store",
        corpus_dir: dir,
        dict: vec![b"DVMSTOR1".to_vec(), vec![0xC7], vec![0x01], vec![0x02]],
        seeds,
        run: Box::new(move |input: &[u8]| {
            // Recovery mutates the directory (deletes/truncates bad
            // segments, opens a fresh one), so every execution gets a
            // clean slate for determinism.
            let _ = std::fs::remove_dir_all(&scratch);
            std::fs::create_dir_all(&scratch).expect("create scratch dir");
            std::fs::write(scratch.join(format!("{:016x}.seg", 0)), input)
                .expect("write scratch segment");
            let _ = Store::open(&scratch, StoreConfig::default());
        }),
        default_iters: 4_000,
    }
}

/// A healthy segment image: puts, a delete, and a flush through the
/// real writer, then the raw file bytes.
fn valid_segment_image() -> Vec<u8> {
    static CACHE: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    CACHE.get_or_init(build_segment_image).clone()
}

fn build_segment_image() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("dvm-fuzz-seed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create seed dir");
    let seg;
    {
        let mut store = Store::open(&dir, StoreConfig::default()).expect("open seed store");
        store.put("alpha", b"one").expect("put");
        store.put("beta", b"two").expect("put");
        store.put("gamma", b"three").expect("put");
        store.delete("beta").expect("delete");
        store.flush().expect("flush");
        seg = std::fs::read(dir.join(format!("{:016x}.seg", 0))).expect("read seed segment");
    }
    let _ = std::fs::remove_dir_all(&dir);
    seg
}

/// Builds one target by name.
pub fn target(name: &str) -> Option<FuzzTarget> {
    match name {
        "frame" => Some(frame_target()),
        "assembler" => Some(assembler_target()),
        "classfile" => Some(classfile_target()),
        "verifier" => Some(verifier_target()),
        "exec" => Some(exec_target()),
        "store" => Some(store_target()),
        _ => None,
    }
}

/// All six targets in reporting order.
pub fn all_targets() -> Vec<FuzzTarget> {
    TARGET_NAMES
        .iter()
        .map(|n| target(n).expect("known target"))
        .collect()
}
