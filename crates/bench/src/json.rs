//! Machine-readable experiment output: a minimal JSON emitter.
//!
//! Every `repro_*` binary prints human-aligned tables; passing `--json`
//! additionally writes `BENCH_<name>.json` next to the working
//! directory so harnesses (CI, regression tracking) can parse the same
//! numbers without screen-scraping. The emitter is deliberately tiny
//! and from scratch — the reproduction takes no serialization
//! dependency for this.

use std::io::Write;
use std::path::PathBuf;

use crate::table::Table;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction so counts
                    // stay counts.
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A cell parsed the way a table consumer would want it: numbers as
    /// numbers, everything else as strings.
    pub fn cell(s: &str) -> Json {
        match s.parse::<f64>() {
            Ok(n) if n.is_finite() => Json::Num(n),
            _ => Json::Str(s.to_owned()),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Table {
    /// The table as a JSON array: one object per row, keyed by header,
    /// numeric-looking cells as numbers.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows()
            .iter()
            .map(|row| {
                Json::Obj(
                    self.headers()
                        .iter()
                        .zip(row.iter())
                        .map(|(h, c)| (h.clone(), Json::cell(c)))
                        .collect(),
                )
            })
            .collect();
        Json::Arr(rows)
    }
}

/// True when the process was invoked with `--json`.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Writes `BENCH_<name>.json` containing `{"bench": name, "tables":
/// {label: rows...}, ...extra}` — but only when [`json_flag`] is set, so
/// binaries can call it unconditionally after printing their tables.
/// `extra` carries bench-specific scalars (baselines, configuration).
pub fn emit_json(name: &str, tables: &[(&str, &Table)], extra: &[(&str, Json)]) {
    if !json_flag() {
        return;
    }
    let mut obj = vec![("bench".to_owned(), Json::Str(name.to_owned()))];
    obj.push((
        "tables".to_owned(),
        Json::Obj(
            tables
                .iter()
                .map(|(label, t)| ((*label).to_owned(), t.to_json()))
                .collect(),
        ),
    ));
    for (k, v) in extra {
        obj.push(((*k).to_owned(), v.clone()));
    }
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let rendered = Json::Obj(obj).render();
    match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{rendered}")) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_with_escaping() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(3.0)),
            ("frac".into(), Json::Num(0.5)),
            ("list".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"a \"b\"\n","n":3,"frac":0.5,"list":[true,null]}"#
        );
    }

    #[test]
    fn table_rows_become_objects_with_numeric_cells() {
        let mut t = Table::new(&["Clients", "req/s"]);
        t.row(&["1".into(), "675".into()]);
        t.row(&["all".into(), "30369.5".into()]);
        assert_eq!(
            t.to_json().render(),
            r#"[{"Clients":1,"req/s":675},{"Clients":"all","req/s":30369.5}]"#
        );
    }
}
