//! Machine-readable experiment output: a minimal JSON emitter.
//!
//! Every `repro_*` binary prints human-aligned tables; passing `--json`
//! additionally writes `BENCH_<name>.json` next to the working
//! directory so harnesses (CI, regression tracking) can parse the same
//! numbers without screen-scraping. The emitter is deliberately tiny
//! and from scratch — the reproduction takes no serialization
//! dependency for this.

use std::io::Write;
use std::path::PathBuf;

use crate::table::Table;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction so counts
                    // stay counts.
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A cell parsed the way a table consumer would want it: numbers as
    /// numbers, everything else as strings.
    pub fn cell(s: &str) -> Json {
        match s.parse::<f64>() {
            Ok(n) if n.is_finite() => Json::Num(n),
            _ => Json::Str(s.to_owned()),
        }
    }

    /// Parses JSON text back into a [`Json`] value — the inverse of
    /// [`Json::render`], so the regression gate can read the same
    /// `BENCH_*.json` files the benches emit without a serialization
    /// dependency. Rejects trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Looks a key up in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if b" \t\r\n".contains(b) {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' after key {key:?}"));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while bytes
                .get(*pos)
                .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b))
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, however many bytes it takes.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Table {
    /// The table as a JSON array: one object per row, keyed by header,
    /// numeric-looking cells as numbers.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows()
            .iter()
            .map(|row| {
                Json::Obj(
                    self.headers()
                        .iter()
                        .zip(row.iter())
                        .map(|(h, c)| (h.clone(), Json::cell(c)))
                        .collect(),
                )
            })
            .collect();
        Json::Arr(rows)
    }
}

/// True when the process was invoked with `--json`.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Writes `BENCH_<name>.json` containing `{"bench": name, "tables":
/// {label: rows...}, ...extra}` — but only when [`json_flag`] is set, so
/// binaries can call it unconditionally after printing their tables.
/// `extra` carries bench-specific scalars (baselines, configuration).
pub fn emit_json(name: &str, tables: &[(&str, &Table)], extra: &[(&str, Json)]) {
    if !json_flag() {
        return;
    }
    let mut obj = vec![("bench".to_owned(), Json::Str(name.to_owned()))];
    obj.push((
        "tables".to_owned(),
        Json::Obj(
            tables
                .iter()
                .map(|(label, t)| ((*label).to_owned(), t.to_json()))
                .collect(),
        ),
    ));
    for (k, v) in extra {
        obj.push(((*k).to_owned(), v.clone()));
    }
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let rendered = Json::Obj(obj).render();
    match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{rendered}")) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_with_escaping() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(3.0)),
            ("frac".into(), Json::Num(0.5)),
            ("list".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"a \"b\"\n","n":3,"frac":0.5,"list":[true,null]}"#
        );
    }

    #[test]
    fn parse_inverts_render() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\nç".into())),
            ("n".into(), Json::Num(3.0)),
            ("frac".into(), Json::Num(-0.5)),
            (
                "list".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Obj(vec![])]),
            ),
        ]);
        assert_eq!(Json::parse(&j.render()), Ok(j));
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert_eq!(
            Json::parse(" [1, 2.5e3] ")
                .unwrap()
                .get("x")
                .and_then(Json::num),
            None
        );
    }

    #[test]
    fn table_rows_become_objects_with_numeric_cells() {
        let mut t = Table::new(&["Clients", "req/s"]);
        t.row(&["1".into(), "675".into()]);
        t.row(&["all".into(), "30369.5".into()]);
        assert_eq!(
            t.to_json().render(),
            r#"[{"Clients":1,"req/s":675},{"Clients":"all","req/s":30369.5}]"#
        );
    }
}
