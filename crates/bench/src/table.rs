//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(0);
                line.push_str(&format!("{c:>w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }
}
