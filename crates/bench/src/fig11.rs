//! Shared pieces of the Figure 11/12 startup-time experiments.

use dvm_optimizer::{AppProfile, ClassProfile, MethodProfile};
use dvm_workload::{Disposition, GeneratedApp};

/// Builds the transfer profile of a generated application from its real
/// class files and its ground-truth method dispositions (which the §5
/// profiling service observes in practice; `dvm-core`'s architecture
/// tests validate that profiled first-use matches this ground truth).
pub fn app_profile(app: &GeneratedApp) -> AppProfile {
    let mut classes = Vec::new();
    for cf in &app.classes {
        let mut cf2 = cf.clone();
        let name = cf2.name().expect("name").to_owned();
        let total = cf2.to_bytes().map(|b| b.len()).unwrap_or(0) as u64;
        let mut methods = Vec::new();
        let mut method_bytes = 0u64;
        for m in &cf.methods {
            let mname = m.name(&cf.pool).unwrap_or("?").to_owned();
            let size = m.code().map(|c| c.code.len() as u64 + 40).unwrap_or(16);
            method_bytes += size;
            let disposition = app
                .truth
                .iter()
                .find(|(c, mm, _)| c == &name && mm == &mname)
                .map(|(_, _, d)| *d)
                .unwrap_or(Disposition::Core);
            let (startup, ever) = match disposition {
                Disposition::Startup | Disposition::Core => (true, true),
                Disposition::Interactive => (false, true),
                Disposition::Dead => (false, false),
            };
            methods.push(MethodProfile {
                name: mname,
                size,
                used_at_startup: startup,
                used_ever: ever,
            });
        }
        classes.push(ClassProfile {
            name,
            methods,
            overhead_bytes: total.saturating_sub(method_bytes),
        });
    }
    AppProfile {
        name: app.spec.name.clone(),
        classes,
    }
}

/// The bandwidth sweep (bytes/second) used by Figures 11 and 12: from the
/// paper's 28.8 Kb/s wireless links up to 1 MB/s.
pub fn bandwidth_sweep() -> Vec<u64> {
    vec![
        3_600, 7_200, 14_400, 28_800, 57_600, 125_000, 250_000, 500_000, 1_000_000,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_workload::{figure11_apps, generate};

    #[test]
    fn profile_covers_every_class_with_sane_sizes() {
        let spec = figure11_apps().pop().unwrap(); // animatedui, smallest
        let app = generate(&spec.scaled(1, 50));
        let profile = app_profile(&app);
        assert_eq!(profile.classes.len(), app.classes.len());
        let total = profile.total_bytes();
        let actual = app.total_bytes() as u64;
        let ratio = total as f64 / actual as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "profile {total} vs actual {actual}"
        );
        // The paper's 10-30% dead-code observation holds.
        let dead = profile.dead_fraction();
        assert!((0.05..0.5).contains(&dead), "dead fraction {dead}");
    }
}
