//! Persistence: cold-vs-warm restart makespan and store recovery curves.
//!
//! The paper's proxy pays the rewrite cost once per class and amortizes
//! it across every client in the organization — but only for as long as
//! the proxy process lives. `dvm-store` extends the amortization across
//! process lifetimes: a restarted shard reopens its append-only log and
//! serves previous rewrites from the disk tier instead of re-rewriting.
//! This bench measures what that buys and what it costs:
//!
//! - **restart** — the same fetch workload over sockets against a fresh
//!   (cold) persistent shard and against a restarted (warm) one: rewrite
//!   counts, simulated processing makespan, and wall time. The warm run
//!   must report zero rewrites — that is the entire point of the store.
//! - **throughput** — raw `Store` append and lookup rates per
//!   durability policy (`always` fsyncs every append, `batch` every
//!   16th, `never` leaves it to the OS).
//! - **recovery** — `Store::open` wall time against log size: the price
//!   of a warm start grows with the log it replays.
//!
//! `--quick` shrinks every dimension (CI smoke); `--json` additionally
//! writes `BENCH_store.json`.

use std::time::Instant;

use dvm_bench::{Json, Table};
use dvm_cluster::ClusterOptions;
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::{Hello, NetClassProvider, NetConfig};
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_store::{Durability, Store, StoreConfig};
use dvm_workload::corpus;

const SEED: u64 = 0x5709;

/// A scratch directory removed on drop, so aborted runs don't litter.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("dvm-repro-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

/// One life of the restart experiment: a single persistent shard over
/// `dir`, every URL fetched `reps` times over a real socket. Returns
/// (rewrites, disk serves, simulated processing ns, wall ms).
fn restart_life(
    org: &Organization,
    urls: &[String],
    dir: &std::path::Path,
    reps: usize,
) -> (u64, u64, u64, f64) {
    let cluster = org
        .serve_cluster_persistent(
            1,
            ClusterOptions {
                seed: SEED,
                ..ClusterOptions::default()
            },
            dir,
        )
        .expect("persistent shard");
    let mut provider = NetClassProvider::new(
        cluster.addrs()[0],
        hello("store-bench"),
        Some(Signer::new(b"dvm-org-key")),
        NetConfig::default(),
    )
    .expect("connect");

    let started = Instant::now();
    let mut processing_ns = 0u64;
    let mut disk_serves = 0u64;
    for _ in 0..reps {
        for url in urls {
            let (_, transfer) = provider.fetch(url).expect("fetch");
            processing_ns += transfer.processing_ns;
            if transfer.served_from == dvm_proxy::ServedFrom::DiskCache {
                disk_serves += 1;
            }
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let rewrites = cluster.proxy(0).stats().rewrites;
    provider.close();
    cluster.shutdown();
    (rewrites, disk_serves, processing_ns, wall_ms)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (applet_count, reps, ops, recovery_sizes): (usize, usize, usize, &[usize]) = if quick {
        (3, 2, 400, &[50, 200, 500])
    } else {
        (4, 3, 4_000, &[100, 500, 2_000, 8_000])
    };

    let mut applets = corpus(11);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(applet_count);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let urls: Vec<String> = classes
        .iter()
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect();

    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();

    println!(
        "persistent store: restart makespan, append/lookup throughput, recovery curve ({} urls x {} reps{})",
        urls.len(),
        reps,
        if quick { ", --quick" } else { "" }
    );
    println!("(one persistent shard over loopback; the store is the proxy's disk cache tier)\n");

    // ---- restart: cold vs warm over sockets ----------------------------
    let scratch = Scratch::new("restart");
    let (cold_rw, cold_disk, cold_ns, cold_ms) = restart_life(&org, &urls, &scratch.0, reps);
    let (warm_rw, warm_disk, warm_ns, warm_ms) = restart_life(&org, &urls, &scratch.0, reps);

    let mut restart = Table::new(&[
        "Life",
        "Fetches",
        "Rewrites",
        "Disk serves",
        "Sim makespan (ms)",
        "Wall (ms)",
    ]);
    let fetches = (urls.len() * reps) as u64;
    restart.row(&[
        "cold (fresh dir)".into(),
        fetches.to_string(),
        cold_rw.to_string(),
        cold_disk.to_string(),
        format!("{:.3}", cold_ns as f64 / 1e6),
        format!("{cold_ms:.2}"),
    ]);
    restart.row(&[
        "warm (restart)".into(),
        fetches.to_string(),
        warm_rw.to_string(),
        warm_disk.to_string(),
        format!("{:.3}", warm_ns as f64 / 1e6),
        format!("{warm_ms:.2}"),
    ]);
    restart.print();
    assert_eq!(
        warm_rw, 0,
        "a warm restart re-rewrote classes: the disk tier did not survive"
    );
    assert!(
        warm_disk > 0,
        "a warm restart never touched the disk tier: nothing was recovered"
    );
    drop(scratch);

    // ---- throughput: append / lookup rate per durability ---------------
    println!();
    let mut throughput = Table::new(&["Durability", "Appends", "Append/s", "Fsyncs", "Lookup/s"]);
    for (name, durability) in [
        ("always", Durability::Always),
        ("batch(16)", Durability::Batch(16)),
        ("never", Durability::Never),
    ] {
        let scratch = Scratch::new(&format!("tp-{name}"));
        let mut store = Store::open(
            &scratch.0,
            StoreConfig {
                durability,
                ..StoreConfig::default()
            },
        )
        .expect("open");
        let value = vec![0xA5u8; 1024];
        // `always` pays a real fsync per append; keep its op count sane.
        let n = if matches!(durability, Durability::Always) {
            (ops / 10).max(50)
        } else {
            ops
        };
        let started = Instant::now();
        for i in 0..n {
            store
                .put(&format!("class://bench/Cls{:06}", i % 512), &value)
                .expect("put");
        }
        let append_s = n as f64 / started.elapsed().as_secs_f64();
        let fsyncs = store.stats().fsyncs;
        let started = Instant::now();
        for i in 0..n {
            store
                .get(&format!("class://bench/Cls{:06}", i % 512))
                .expect("get")
                .expect("present");
        }
        let lookup_s = n as f64 / started.elapsed().as_secs_f64();
        throughput.row(&[
            name.into(),
            n.to_string(),
            format!("{append_s:.0}"),
            fsyncs.to_string(),
            format!("{lookup_s:.0}"),
        ]);
    }
    throughput.print();

    // ---- recovery: open time vs log size -------------------------------
    println!();
    let mut recovery = Table::new(&[
        "Records",
        "Live keys",
        "Log (KiB)",
        "Open (ms)",
        "Recovered",
    ]);
    for &records in recovery_sizes {
        let scratch = Scratch::new(&format!("rec-{records}"));
        {
            let mut store = Store::open(&scratch.0, StoreConfig::default()).expect("open");
            let value = vec![0x5Au8; 512];
            for i in 0..records {
                // Half the keyspace is overwritten repeatedly, so the log
                // is longer than the live set — the realistic shape.
                store
                    .put(
                        &format!("class://rec/Cls{:06}", i % (records / 2 + 1)),
                        &value,
                    )
                    .expect("put");
            }
            store.flush().expect("flush");
        }
        let log_bytes: u64 = std::fs::read_dir(&scratch.0)
            .expect("dir")
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        let started = Instant::now();
        let store = Store::open(&scratch.0, StoreConfig::default()).expect("reopen");
        let open_ms = started.elapsed().as_secs_f64() * 1e3;
        recovery.row(&[
            records.to_string(),
            store.len().to_string(),
            format!("{:.1}", log_bytes as f64 / 1024.0),
            format!("{open_ms:.3}"),
            store.stats().recovered_records.to_string(),
        ]);
    }
    recovery.print();

    dvm_bench::emit_json(
        "store",
        &[
            ("restart", &restart),
            ("throughput", &throughput),
            ("recovery", &recovery),
        ],
        &[
            ("seed", Json::Num(SEED as f64)),
            ("urls", Json::Num(urls.len() as f64)),
            ("reps", Json::Num(reps as f64)),
            ("quick", Json::Bool(quick)),
        ],
    );

    println!("\nwarm restart served every class without a single re-rewrite");
}
