//! Continuous observability: what the watch plane costs the data plane.
//!
//! `dvm-watch` promises that sampling, SLO evaluation, and the export
//! plane are cheap enough to leave on in production: the sampler runs
//! on its own thread against lock-free counter snapshots, and a scrape
//! is a render over already-collected rings, never a walk of the hot
//! path. This bench measures both promises against a live 3-shard
//! cluster:
//!
//! 1. **sampler overhead** — warm-fetch p50 with no watch attached vs
//!    with a deliberately aggressive 25 ms sampler (40× the default
//!    rate) plus one SLO objective per shard; the acceptance bar is
//!    ≤ 2% on the fetch hot path;
//! 2. **scrape latency** — `GET /metrics` over HTTP and
//!    `METRICS_SCRAPE` over the wire, p50/p99 per scrape, each body
//!    parsed back through `expo::parse` so a malformed exposition
//!    fails the bench rather than the consumer.
//!
//! `--quick` shrinks passes/scrapes (CI smoke); `--json` additionally
//! writes `BENCH_watch.json` with `sampler_overhead_pct` and
//! `scrape_p99_us` as the scalars `repro_gate` reads.

use std::time::Instant;

use dvm_bench::{Json, Table};
use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ClusterOptions, ProxyCluster};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::{fetch_metrics_text, Hello, NetConfig};
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_watch::{expo, http_get, Objective, WatchConfig};
use dvm_workload::corpus;

const SEED: u64 = 0x000B_5E21;
const SEC: u64 = 1_000_000_000;

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn build_org(applet_count: usize) -> (Organization, Vec<String>) {
    // Smallest applets first: the bench measures the observability
    // plane's drag on the cache-hit path, not the rewrite pipeline.
    let mut applets = corpus(29);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(applet_count);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let urls: Vec<String> = classes
        .iter()
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();
    (org, urls)
}

fn provider_for(cluster: &ProxyCluster) -> ClusterClassProvider {
    ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello("watch-bench"),
        Some(Signer::new(b"dvm-org-key")),
        ClusterClientConfig::default(),
    )
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (applet_count, passes, scrapes) = if quick { (2, 60, 60) } else { (3, 200, 200) };

    let (org, urls) = build_org(applet_count);
    println!(
        "continuous observability: sampler drag and scrape latency ({} urls, {} passes, {} scrapes{})",
        urls.len(),
        passes,
        scrapes,
        if quick { ", --quick" } else { "" }
    );
    println!("(real sockets; the watched cluster samples every 25 ms — 40x the default rate)\n");

    // --- phases 1+2: the fetch hot path, bare vs watched -----------------
    // Both clusters are live at once and the timed fetches interleave
    // fetch-by-fetch, so machine drift (frequency scaling, background
    // load) lands on both sides of the comparison equally. The watched
    // side carries one SLO objective per shard so alert evaluation is
    // part of the bill.
    let bare = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                seed: SEED,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
    let watch_config = WatchConfig {
        interval_ns: 25_000_000,
        objectives: vec![Objective::error_ratio(
            "proxy-miss-ratio",
            "proxy.cache.miss",
            "proxy.requests",
            0.99,
            2 * SEC,
            6 * SEC,
        )],
        ..WatchConfig::default()
    };
    let watched = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                seed: SEED,
                watch: Some(watch_config),
                metrics_http: true,
                ..ClusterOptions::default()
            },
        )
        .unwrap();

    let mut bare_provider = provider_for(&bare);
    let mut watched_provider = provider_for(&watched);
    for url in &urls {
        bare_provider.fetch(url).expect("warmup fetch");
        watched_provider.fetch(url).expect("warmup fetch");
    }
    let mut bare_ns: Vec<u64> = Vec::with_capacity(passes * urls.len());
    let mut watched_ns: Vec<u64> = Vec::with_capacity(passes * urls.len());
    for _ in 0..passes {
        for url in &urls {
            let t = Instant::now();
            bare_provider.fetch(url).expect("timed fetch");
            bare_ns.push(t.elapsed().as_nanos() as u64);
            let t = Instant::now();
            watched_provider.fetch(url).expect("timed fetch");
            watched_ns.push(t.elapsed().as_nanos() as u64);
        }
    }
    bare_provider.close();
    watched_provider.close();
    bare.shutdown();
    bare_ns.sort_unstable();
    watched_ns.sort_unstable();

    // Medians, not totals: a handful of scheduler hiccups should not
    // decide a 2% verdict over thousands of ~40 µs fetches.
    let bare_p50 = percentile(&bare_ns, 0.50);
    let watched_p50 = percentile(&watched_ns, 0.50);
    let overhead_pct = ((watched_p50 as f64 - bare_p50 as f64) / bare_p50 as f64 * 100.0).max(0.0);

    // --- phase 3: scrape latency against the still-warm cluster ---------
    let http_addr = watched.metrics_addr(0).expect("metrics_http bound");
    let mut http_ns: Vec<u64> = Vec::with_capacity(scrapes);
    let mut body = String::new();
    for _ in 0..scrapes {
        let t = Instant::now();
        body = http_get(http_addr, "/metrics").expect("http scrape");
        http_ns.push(t.elapsed().as_nanos() as u64);
    }
    let samples = expo::parse(&body).expect("exposition parses");
    assert!(!samples.is_empty(), "scrape served an empty exposition");

    let mut wire_ns: Vec<u64> = Vec::with_capacity(scrapes);
    let mut wire = String::new();
    for _ in 0..scrapes {
        let t = Instant::now();
        wire = fetch_metrics_text(
            watched.addrs()[0],
            hello("watch-bench"),
            NetConfig::default(),
        )
        .expect("wire scrape");
        wire_ns.push(t.elapsed().as_nanos() as u64);
    }
    expo::parse(&wire).expect("wire exposition parses");
    watched.shutdown();
    http_ns.sort_unstable();
    wire_ns.sort_unstable();

    let mut t = Table::new(&["Path", "Samples", "p50 (us)", "p99 (us)"]);
    t.row(&[
        "fetch, no watch".into(),
        bare_ns.len().to_string(),
        format!("{:.1}", bare_p50 as f64 / 1e3),
        format!("{:.1}", percentile(&bare_ns, 0.99) as f64 / 1e3),
    ]);
    t.row(&[
        "fetch, 25 ms sampler".into(),
        watched_ns.len().to_string(),
        format!("{:.1}", watched_p50 as f64 / 1e3),
        format!("{:.1}", percentile(&watched_ns, 0.99) as f64 / 1e3),
    ]);
    t.row(&[
        "GET /metrics".into(),
        http_ns.len().to_string(),
        format!("{:.1}", percentile(&http_ns, 0.50) as f64 / 1e3),
        format!("{:.1}", percentile(&http_ns, 0.99) as f64 / 1e3),
    ]);
    t.row(&[
        "METRICS_SCRAPE".into(),
        wire_ns.len().to_string(),
        format!("{:.1}", percentile(&wire_ns, 0.50) as f64 / 1e3),
        format!("{:.1}", percentile(&wire_ns, 0.99) as f64 / 1e3),
    ]);
    t.print();
    println!(
        "\nsampler overhead on the fetch hot path: {overhead_pct:.2}% (p50 {bare_p50} → {watched_p50} ns)"
    );

    let scrape_p99_us = percentile(&http_ns, 0.99) as f64 / 1e3;
    dvm_bench::emit_json(
        "watch",
        &[("latency", &t)],
        &[
            ("seed", Json::Num(SEED as f64)),
            ("fetches", Json::Num(bare_ns.len() as f64)),
            ("sampler_interval_ms", Json::Num(25.0)),
            ("sampler_overhead_pct", Json::Num(overhead_pct)),
            (
                "scrape_p50_us",
                Json::Num(percentile(&http_ns, 0.50) as f64 / 1e3),
            ),
            ("scrape_p99_us", Json::Num(scrape_p99_us)),
            (
                "wire_scrape_p99_us",
                Json::Num(percentile(&wire_ns, 0.99) as f64 / 1e3),
            ),
            ("exposition_samples", Json::Num(samples.len() as f64)),
        ],
    );

    assert!(
        overhead_pct <= 2.0,
        "sampler overhead {overhead_pct:.2}% > 2% on the fetch hot path"
    );
    println!("all watch invariants held");
}
