//! Coverage-guided fuzzing session over the six untrusted-input
//! surfaces (ROADMAP item 5a, DESIGN.md §5h).
//!
//! Runs each [`dvm_bench::fuzz`] target under the `dvm-fuzz` driver:
//! seeds from the committed corpora plus valid encodings, mutates with
//! the seeded engine, admits inputs that light new coverage features,
//! and reports unique panics as minimized, replayable findings.
//!
//! ```text
//! cargo run --release -p dvm-bench --features probes --bin repro_fuzz -- --quick --json
//! ```
//!
//! Flags:
//!
//! * `--quick`         — divide every iteration budget by 5 (CI smoke);
//! * `--json`          — also write `BENCH_fuzz.json` for the perf gate;
//! * `--target <name>` — fuzz one surface (`frame`, `assembler`,
//!   `classfile`, `verifier`, `exec`, `store`) instead of all six;
//! * `--iters <n>`     — override the per-target iteration budget;
//! * `--seed <n>`      — master seed (default `0xD7F055ED`); every
//!   session is a pure function of it;
//! * `--replay <hex>`  — with `--target`: run one input through the
//!   target *without* catching panics, then exit (reproduces a
//!   `FUZZ REPLAY:` line);
//! * `--crash-dir <d>` — write each minimized finding as a `.hex`
//!   corpus entry under `<d>`.
//!
//! Exit status: `0` when no target crashed, `1` on any finding, `2`
//! when the probes are compiled out (a coverage-blind search is not
//! the experiment this binary exists to run).
//!
//! The gated scalar is `edges_total` — the distinct probe edges the
//! session covered, summed over targets. A probe-threading or seeding
//! regression shows up as an edge-count drop long before it shows up
//! as a missed bug.

use std::process::ExitCode;

use dvm_bench::fuzz::{all_targets, target, FuzzTarget};
use dvm_bench::{emit_json, Json, Table};
use dvm_fuzz::fuzzer::{compact_hex, parse_compact_hex};
use dvm_fuzz::{corpus, FuzzConfig, FuzzReport, Fuzzer, Mutator};

fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = flag_value("--seed")
        .map(|s| parse_seed(&s))
        .unwrap_or(0xD7F0_55ED);
    let iters_override = flag_value("--iters").map(|s| s.parse::<u64>().expect("bad --iters"));
    let picked = flag_value("--target");
    let crash_dir = flag_value("--crash-dir");

    if let Some(hex) = flag_value("--replay") {
        let name = picked.expect("--replay needs --target <name>");
        let mut t = target(&name).unwrap_or_else(|| panic!("unknown target {name:?}"));
        let input = parse_compact_hex(&hex).expect("bad --replay hex");
        // No catch_unwind: a real finding aborts loudly, backtrace and
        // all, which is exactly what a reproducer is for.
        (t.run)(&input);
        println!(
            "replay ok: target={name} len={} — decoder rejected or accepted without panicking",
            input.len()
        );
        return ExitCode::SUCCESS;
    }

    if !dvm_fuzz::cov::enabled() {
        eprintln!(
            "repro_fuzz: probes are compiled out; rebuild with \
             `--features probes` (dvm-bench) for a coverage-guided session"
        );
        return ExitCode::from(2);
    }

    let targets: Vec<FuzzTarget> = match &picked {
        Some(name) => vec![target(name).unwrap_or_else(|| panic!("unknown target {name:?}"))],
        None => all_targets(),
    };

    let mut table = Table::new(&[
        "Target", "Iters", "Execs", "Exec/s", "Seeds", "SeedFeat", "NewFeat", "Edges", "Corpus",
        "Crashes",
    ]);
    let mut per_target: Vec<(String, FuzzReport)> = Vec::new();
    let mut total_crashes = 0usize;

    for mut t in targets {
        let iters = iters_override.unwrap_or(if quick {
            (t.default_iters / 5).max(500)
        } else {
            t.default_iters
        });
        let cfg = FuzzConfig {
            seed,
            ..FuzzConfig::default()
        };
        let mut fuzzer = Fuzzer::new(cfg, Mutator::new(t.dict.clone()));
        let seed_count = t.seeds.len();
        for bytes in t.seeds.drain(..) {
            fuzzer.add_seed(&mut *t.run, bytes);
        }
        let report = fuzzer.run(&mut *t.run, iters);

        for crash in &report.crashes {
            println!("{}", crash.replay_line(t.name));
            if let Some(dir) = &crash_dir {
                let name = format!("fuzz-{}-{:016x}.hex", t.name, crash.signature);
                let note = format!(
                    "minimized repro_fuzz finding for target `{}`\npanic: {}",
                    t.name, crash.message
                );
                let path =
                    corpus::write_entry(dir, &name, &note, &[("expect", "reject")], &crash.input);
                eprintln!("wrote {}", path.display());
            }
        }
        total_crashes += report.crashes.len();

        table.row(&[
            t.name.into(),
            iters.to_string(),
            report.execs.to_string(),
            format!("{:.0}", report.execs_per_sec()),
            seed_count.to_string(),
            report.seed_features.to_string(),
            report.new_features().to_string(),
            report.total_edges.to_string(),
            report.corpus_len.to_string(),
            report.crashes.len().to_string(),
        ]);
        per_target.push((t.name.to_owned(), report));
    }

    table.print();

    let edges_total: usize = per_target.iter().map(|(_, r)| r.total_edges).sum();
    let new_features_total: usize = per_target.iter().map(|(_, r)| r.new_features()).sum();
    let execs_total: u64 = per_target.iter().map(|(_, r)| r.execs).sum();
    println!(
        "\n{execs_total} execs over {} target(s): {edges_total} distinct edges, \
         {new_features_total} features beyond the seeds, {total_crashes} unique crash(es)",
        per_target.len()
    );
    if total_crashes > 0 {
        println!(
            "replay any finding with: cargo run --release -p dvm-bench --features probes \
             --bin repro_fuzz -- --target <t> --replay <hex>"
        );
    }

    emit_json(
        "fuzz",
        &[("targets", &table)],
        &[
            ("seed", Json::Str(format!("{:#x}", seed))),
            ("quick", Json::Bool(quick)),
            ("edges_total", Json::Num(edges_total as f64)),
            ("new_features_total", Json::Num(new_features_total as f64)),
            ("execs_total", Json::Num(execs_total as f64)),
            ("crashes_total", Json::Num(total_crashes as f64)),
        ],
    );

    // Exercise the replay-line plumbing even on clean runs: a session
    // must be able to round-trip its own hex.
    debug_assert!(per_target
        .iter()
        .flat_map(|(_, r)| &r.crashes)
        .all(|c| parse_compact_hex(&compact_hex(&c.input)).as_deref() == Ok(&c.input[..])));

    if total_crashes > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `--seed` accepts decimal or `0x…` hex.
fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("bad --seed hex")
    } else {
        s.parse().expect("bad --seed")
    }
}
