//! Figure 7: client-side overhead of verification.
//!
//! The paper plots the difference in total running time between
//! unverified and verified applications on each architecture. Monolithic
//! clients run all four phases locally; DVM clients only execute the
//! injected link checks (the rest ran on the server). Pass `--quick` for
//! a fast run.

use dvm_bench::{run_dvm, run_monolithic, ExperimentScale, Table};
use dvm_workload::figure5_apps;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("Figure 7: client-side verification time (simulated seconds)\n");
    let mut t = Table::new(&["App", "Monolithic client", "DVM client", "Reduction"]);
    for spec in figure5_apps() {
        let app = dvm_bench::runners::generate_scaled(&spec, scale);
        let mono = run_monolithic(&app);
        let dvm = run_dvm(&app);
        let m = mono.verify_time.as_secs_f64();
        let d = dvm.dynamic_verify_time.as_secs_f64();
        t.row(&[
            spec.name.clone(),
            format!("{m:.4}"),
            format!("{d:.6}"),
            format!("{:.0}x", m / d.max(1e-9)),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig7", &[("results", &t)], &[]);
    println!("\nDVM clients spend dramatically less time verifying: the static");
    println!("phases moved to the network server (paper Figure 7 shows the same).");
}
