//! Figure 12: percent improvement in start-up time with the
//! client-specific repartitioning service.
//!
//! The §5 optimization service regroups code at method granularity from a
//! first-use profile; cold methods move to on-demand overflow units.
//! Improvement is largest on slow links and decays with bandwidth.

use dvm_bench::fig11::{app_profile, bandwidth_sweep};
use dvm_bench::Table;
use dvm_netsim::presets;
use dvm_optimizer::improvement_percent;
use dvm_workload::{figure11_apps, generate};

fn main() {
    println!("Figure 12: % start-up improvement from code repartitioning\n");
    let apps: Vec<_> = figure11_apps()
        .into_iter()
        .map(|spec| {
            let app = generate(&spec);
            let profile = app_profile(&app);
            (spec.name.clone(), profile)
        })
        .collect();

    let mut headers: Vec<&str> = vec!["KB/s"];
    let names: Vec<String> = apps.iter().map(|(n, _)| n.clone()).collect();
    for n in &names {
        headers.push(n);
    }
    let mut t = Table::new(&headers);
    let mut peak: f64 = 0.0;
    for bw in bandwidth_sweep() {
        let link = presets::sweep_link(bw);
        let mut row = vec![format!("{:.1}", bw as f64 / 1000.0)];
        for (_, profile) in &apps {
            let imp = improvement_percent(profile, &link);
            peak = peak.max(imp);
            row.push(format!("{imp:.1}%"));
        }
        t.row(&row);
    }
    t.print();
    dvm_bench::emit_json("fig12", &[("results", &t)], &[]);
    println!("\nPeak improvement: {peak:.1}% (paper: up to ~28% at 28.8 Kb/s).");
    println!("Improvement decays with bandwidth as latency begins to dominate.");
}
