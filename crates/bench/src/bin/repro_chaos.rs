//! Chaos resilience: fetch success rate and tail latency per fault class.
//!
//! The paper's proxy sits between every client and its code; the chaos
//! harness (`dvm-chaos`) answers "what does the client stack actually
//! deliver when that path misbehaves?". This bench drives the full
//! [`ChaosRunner`] — concurrent clients, a real sharded cluster, every
//! byte through a fault-injecting interposer — once per fault class,
//! and reports the success rate and p50/p99 fetch latency each class
//! leaves behind. Every run also checks the harness invariants
//! (oracle byte-equivalence, typed failures, audit and telemetry
//! conservation, breaker consistency); a violation fails the bench and
//! prints the `CHAOS REPLAY:` line that reproduces it.
//!
//! Fault placement is a pure function of `SEED` and the schedule, so
//! the numbers are comparable across runs and machines (wall-clock
//! latency still varies; placements do not).
//!
//! `--quick` shrinks clients/fetches (CI smoke); `--json` additionally
//! writes `BENCH_chaos.json`.

use std::time::Duration;

use dvm_bench::{Json, Table};
use dvm_chaos::{ChaosRunner, ChaosSchedule, RunnerConfig};
use dvm_cluster::{ClusterClientConfig, ClusterOptions, HealthConfig};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::NetConfig;
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_workload::corpus;

/// Master seed: link fault placement, client URL shuffles, and backoff
/// jitter all derive from it (per class it is mixed with the class
/// index so the classes don't share placements).
const SEED: u64 = 0xC0FFEE;

/// Shards behind the chaos links in every run.
const SHARDS: usize = 2;

/// One fault class: a name, the schedule that induces it, and what the
/// schedule means.
struct FaultClass {
    name: &'static str,
    schedule: &'static str,
    note: &'static str,
}

const CLASSES: &[FaultClass] = &[
    FaultClass {
        name: "baseline",
        schedule: "",
        note: "no faults: the floor every class is read against",
    },
    FaultClass {
        name: "drop",
        schedule: "reset@p0.04",
        note: "TCP resets mid-conversation",
    },
    FaultClass {
        name: "corrupt",
        schedule: "<corrupt@p0.08",
        note: "flipped payload bytes, caught by signature verification",
    },
    FaultClass {
        name: "stall",
        schedule: "stall:25ms@p0.05",
        note: "frames held for 25ms",
    },
    FaultClass {
        name: "truncate",
        schedule: "<trunc:9@p0.03",
        note: "responses cut mid-frame, then the connection dies",
    },
    FaultClass {
        name: "throttle",
        schedule: "throttle:200000",
        note: "every frame squeezed through 200 kB/s",
    },
];

fn client_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(150),
        },
        rounds: 4,
        round_backoff: Duration::from_millis(15),
        ..ClusterClientConfig::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (clients, fetches, applet_count) = if quick { (2, 5, 3) } else { (4, 10, 4) };

    // Smallest applets first: the bench measures the transport, not the
    // rewrite pipeline, so payload size is kept modest.
    let mut applets = corpus(11);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(applet_count);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let urls: Vec<String> = classes
        .iter()
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect();

    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();

    println!(
        "chaos resilience: success rate and tail latency per fault class ({} urls, {} clients x {} fetches, {} shards{})",
        urls.len(),
        clients,
        fetches,
        SHARDS,
        if quick { ", --quick" } else { "" }
    );
    println!("(every byte crosses a fault-injecting loopback interposer; placements are seeded)\n");

    let mut t = Table::new(&[
        "Class",
        "Schedule",
        "Fetches",
        "OK",
        "Success %",
        "Faults",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let mut replay_lines = Vec::new();
    let mut violations = 0usize;
    for (i, class) in CLASSES.iter().enumerate() {
        let schedule = ChaosSchedule::parse(class.schedule).unwrap();
        let mut cluster = org
            .serve_cluster_with(
                SHARDS,
                ClusterOptions {
                    seed: SEED,
                    ..ClusterOptions::default()
                },
            )
            .unwrap();
        let cfg = RunnerConfig {
            seed: SEED ^ ((i as u64) << 32),
            clients,
            fetches_per_client: fetches,
            schedule,
            client_config: client_config(),
            signer: Some(Signer::new(b"dvm-org-key")),
            kills: Vec::new(),
            audit: true,
            ..RunnerConfig::default()
        };
        let report = ChaosRunner::run(&mut cluster, &urls, &cfg);
        cluster.shutdown();

        let success = if report.fetches_attempted > 0 {
            report.fetches_ok as f64 / report.fetches_attempted as f64 * 100.0
        } else {
            0.0
        };
        t.row(&[
            class.name.to_string(),
            if class.schedule.is_empty() {
                "(none)".to_string()
            } else {
                class.schedule.to_string()
            },
            report.fetches_attempted.to_string(),
            report.fetches_ok.to_string(),
            format!("{success:.1}"),
            report.faults_injected().to_string(),
            format!("{:.2}", report.fetch_p50_ns as f64 / 1e6),
            format!("{:.2}", report.fetch_p99_ns as f64 / 1e6),
        ]);
        println!("{:<9} {}", class.name, class.note);
        if !report.ok() {
            violations += report.violations.len();
            for v in &report.violations {
                eprintln!("  VIOLATION {v}");
            }
            replay_lines.push(report.replay_line());
        }
    }
    println!();
    t.print();

    dvm_bench::emit_json(
        "chaos",
        &[("fault_classes", &t)],
        &[
            ("seed", Json::Num(SEED as f64)),
            ("shards", Json::Num(SHARDS as f64)),
            ("clients", Json::Num(clients as f64)),
            ("fetches_per_client", Json::Num(fetches as f64)),
            ("violations", Json::Num(violations as f64)),
        ],
    );

    for line in &replay_lines {
        eprintln!("{line}");
    }
    assert!(
        violations == 0,
        "{violations} invariant violations across fault classes (replay lines above)"
    );
    println!("\nall invariants held across every fault class");
}
