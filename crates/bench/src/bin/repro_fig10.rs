//! Figure 10: sustained proxy throughput versus number of clients.
//!
//! Reproduces §4.2's worst-case scaling experiment: up to hundreds of
//! clients simultaneously fetch *different* applets from the Internet
//! through one proxy with caching disabled. A discrete-event simulation
//! models the three resources involved:
//!
//! - the per-stream Internet path (slow, independent per client —
//!   calibrated to the paper's observed 1.0–1.2 s/kB client latency),
//! - the proxy CPU (one 200 MHz processor running the rewrite pipeline;
//!   FIFO queue), and
//! - the proxy's 64 MB of memory (per-request buffers and parse
//!   structures; overcommit causes thrashing that inflates service
//!   times — the paper's post-250-client degradation).

use dvm_bench::Table;
use dvm_netsim::{EventQueue, SimRng, SimTime};

/// Proxy CPU cost per byte rewritten (cycles at 200 MHz).
const PROXY_CYCLES_PER_BYTE: u64 = 888;
/// Per-stream Internet throughput under load (bytes/second).
const ORIGIN_BYTES_PER_SEC: f64 = 900.0;
/// Proxy memory per in-flight request, as a multiple of applet size
/// (network buffers + parsed class structures).
const BUFFER_FACTOR: u64 = 28;
/// Proxy memory (the paper's machines: 64 MB).
const PROXY_MEMORY: u64 = 64 << 20;
/// Simulated experiment duration.
const DURATION: SimTime = SimTime::from_secs(1_200);

#[derive(Debug)]
enum Ev {
    /// Client finished its origin fetch; applet enters the rewrite queue.
    FetchDone { client: usize, bytes: u64 },
    /// Proxy finished rewriting; client starts its next fetch.
    ServiceDone { client: usize, bytes: u64 },
}

struct Outcome {
    throughput_bytes_per_sec: f64,
    latency_sec_per_kb: f64,
}

fn applet_size(rng: &mut SimRng) -> u64 {
    // Log-normal around ~8 KB with a fat tail, matching the corpus model.
    let z = rng.next_gaussian();
    ((8_192.0 * (0.9 * z).exp()) as u64).clamp(1_500, 200_000)
}

fn simulate(clients: usize, seed: u64) -> Outcome {
    let mut rng = SimRng::new(seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut sizes = vec![0u64; clients];
    let mut started = vec![SimTime::ZERO; clients];

    // Every client begins an origin fetch at time zero.
    for (c, size_slot) in sizes.iter_mut().enumerate() {
        let bytes = applet_size(&mut rng);
        *size_slot = bytes;
        let fetch = SimTime::from_nanos((bytes as f64 / ORIGIN_BYTES_PER_SEC * 1e9) as u64);
        q.schedule(fetch, Ev::FetchDone { client: c, bytes });
    }

    let mut cpu_free_at = SimTime::ZERO;
    let mut in_flight = clients as u64; // requests holding buffers
    let mut delivered_bytes = 0u64;
    let mut completed = 0u64;
    let mut latency_accum = 0.0f64; // Σ (latency_sec / size_kb)

    while let Some((now, ev)) = q.pop() {
        if now > DURATION {
            break;
        }
        match ev {
            Ev::FetchDone { client, bytes } => {
                // Enter the rewrite queue. Service time inflates when
                // buffers overcommit physical memory (thrashing).
                let mem = in_flight * 8_192 * BUFFER_FACTOR;
                let thrash = if mem > PROXY_MEMORY {
                    1.0 + 8.0 * ((mem - PROXY_MEMORY) as f64 / PROXY_MEMORY as f64)
                } else {
                    1.0
                };
                let service_cycles = (bytes as f64 * PROXY_CYCLES_PER_BYTE as f64 * thrash) as u64;
                let service = SimTime::from_nanos(service_cycles * 1_000_000_000 / 200_000_000);
                let start = now.max(cpu_free_at);
                cpu_free_at = start + service;
                q.schedule(cpu_free_at, Ev::ServiceDone { client, bytes });
            }
            Ev::ServiceDone { client, bytes } => {
                delivered_bytes += bytes;
                completed += 1;
                let latency = (now - started[client]).as_secs_f64();
                latency_accum += latency / (bytes as f64 / 1024.0);
                in_flight -= 1;
                // Next fetch for this client.
                let next = applet_size(&mut rng);
                sizes[client] = next;
                started[client] = now;
                in_flight += 1;
                let fetch = SimTime::from_nanos((next as f64 / ORIGIN_BYTES_PER_SEC * 1e9) as u64);
                q.schedule(
                    now + fetch,
                    Ev::FetchDone {
                        client,
                        bytes: next,
                    },
                );
            }
        }
    }

    Outcome {
        throughput_bytes_per_sec: delivered_bytes as f64 / DURATION.as_secs_f64(),
        latency_sec_per_kb: if completed > 0 {
            latency_accum / completed as f64
        } else {
            0.0
        },
    }
}

fn main() {
    println!("Figure 10: sustained proxy throughput vs number of clients");
    println!("(caching disabled; each client fetches distinct applets)\n");
    let mut t = Table::new(&["Clients", "Throughput (bytes/s)", "Latency (s/kB)"]);
    let mut series = Vec::new();
    for n in [10usize, 25, 50, 100, 150, 200, 250, 300, 350] {
        let o = simulate(n, 42 + n as u64);
        series.push((n, o.throughput_bytes_per_sec));
        t.row(&[
            n.to_string(),
            format!("{:.0}", o.throughput_bytes_per_sec),
            format!("{:.2}", o.latency_sec_per_kb),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig10", &[("results", &t)], &[]);

    // Shape verdicts.
    let at = |n: usize| series.iter().find(|(x, _)| *x == n).unwrap().1;
    let linearity = at(250) / (at(50) * 5.0);
    println!(
        "\nLinearity 50→250 clients: {:.2} (1.0 = perfectly linear; paper: linear to 250)",
        linearity
    );
    println!(
        "Degradation beyond 250: {:.0} -> {:.0} -> {:.0} bytes/s (paper: degrades as 64 MB exhausts)",
        at(250),
        at(300),
        at(350)
    );
}
