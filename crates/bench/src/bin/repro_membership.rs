//! Elastic membership: what a live join/retire costs the clients.
//!
//! The membership plane (`dvm-membership`) promises that a cluster can
//! grow and shrink at runtime without clients noticing beyond latency:
//! a joining shard pulls its key range out of the previous owners
//! before serving, a retiring shard drains into its survivors before
//! exiting, and clients adopt each new epoch over `RING_UPDATE` frames
//! without reconnecting. This bench measures those promises:
//!
//! 1. **steady state** — warm-fetch p50/p99 over a fixed 3-shard
//!    cluster (the floor the scale phase is read against);
//! 2. **instrumented join** — wall-clock cost of one join *including*
//!    its cache migration, and the joining shard's first-fetch warm
//!    hit rate afterwards (the ISSUE acceptance bar is > 90%: live
//!    migration, not cold misses, fills the new shard);
//! 3. **scale dance** — the chaos `3→6→2` grow/shrink scenario under
//!    concurrent client load (`dvm_chaos::run_scale`), reporting fetch
//!    p50/p99 *during* migration and checking the scale invariants
//!    (zero failed fetches, oracle payloads, bounded re-rewrites,
//!    advancing epochs).
//!
//! `--quick` shrinks clients/shards (CI smoke); `--json` additionally
//! writes `BENCH_membership.json` with `warm_hit_rate` as the gated
//! scalar.

use std::time::{Duration, Instant};

use dvm_bench::{Json, Table};
use dvm_chaos::{run_scale, ScaleConfig};
use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ClusterOptions, HealthConfig};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_membership::MembershipOptions;
use dvm_net::{Hello, NetConfig};
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_workload::corpus;

/// Master seed: ring placement, client shuffles, and gossip probe order
/// all derive from it.
const SEED: u64 = 0x0E1A_571C;

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

fn client_config() -> ClusterClientConfig {
    ClusterClientConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
            ..NetConfig::default()
        },
        health: HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(150),
        },
        rounds: 4,
        round_backoff: Duration::from_millis(15),
        ring_sync: true,
    }
}

fn build_org(applet_count: usize) -> (Organization, Vec<String>) {
    // Smallest applets first: the bench measures membership transitions
    // and the transport, not the rewrite pipeline.
    let mut applets = corpus(11);
    applets.sort_by_key(|a| {
        a.classes
            .iter()
            .map(|c| c.clone().to_bytes().unwrap().len())
            .sum::<usize>()
    });
    applets.truncate(applet_count);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let urls: Vec<String> = classes
        .iter()
        .map(|c| format!("class://{}", c.name().unwrap()))
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();
    (org, urls)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (applet_count, clients, grow_to, keep, passes) = if quick {
        (3, 2, 4usize, vec![0u32, 1], 2)
    } else {
        (4, 8, 6usize, vec![1u32, 4], 3)
    };

    let (org, urls) = build_org(applet_count);
    println!(
        "elastic membership: join/retire cost under load ({} urls, {} clients, 3→{}→{} shards{})",
        urls.len(),
        clients,
        grow_to,
        keep.len(),
        if quick { ", --quick" } else { "" }
    );
    println!("(real sockets; joins migrate their key range in before serving)\n");

    let cluster_opts = ClusterOptions {
        seed: SEED,
        ..ClusterOptions::default()
    };

    // --- phase 1+2: steady state, then one instrumented join ------------
    let mut plane = org
        .serve_elastic(3, cluster_opts.clone(), MembershipOptions::default())
        .unwrap();
    let mut provider = ClusterClassProvider::new(
        plane.cluster().addrs().to_vec(),
        plane.cluster().ring().clone(),
        hello("bench"),
        Some(Signer::new(b"dvm-org-key")),
        client_config(),
    );
    // Cold pass warms every shard; the timed passes then measure the
    // steady-state cache-hit path.
    for url in &urls {
        provider.fetch(url).expect("warmup fetch");
    }
    let mut steady_ns: Vec<u64> = Vec::new();
    for _ in 0..passes {
        for url in &urls {
            let t = Instant::now();
            provider.fetch(url).expect("steady fetch");
            steady_ns.push(t.elapsed().as_nanos() as u64);
        }
    }
    steady_ns.sort_unstable();

    // Instrumented join: wall-clock includes the cache migration (join
    // returns only once the new shard's range has been pulled in).
    let join_started = Instant::now();
    let join = org.grow_cluster(&mut plane).expect("join");
    let join_ms = join_started.elapsed().as_secs_f64() * 1e3;

    // First-fetch warm hit rate on the joining shard: fetch every URL it
    // now owns through a ring-synced client and count how many forced a
    // rewrite (a rewrite == a cache miss the migration failed to cover).
    provider.sync_ring();
    let new_shard = join.shard;
    let owned: Vec<&String> = urls
        .iter()
        .filter(|u| plane.cluster().ring().home(u) == Some(new_shard))
        .collect();
    let rewrites_before = plane.cluster().proxy(new_shard as usize).stats().rewrites;
    for url in &owned {
        provider.fetch(url).expect("post-join fetch");
    }
    let cold_fetches = plane
        .cluster()
        .proxy(new_shard as usize)
        .stats()
        .rewrites
        .saturating_sub(rewrites_before);
    let warm_hit_rate = if owned.is_empty() {
        1.0
    } else {
        1.0 - cold_fetches as f64 / owned.len() as f64
    };
    provider.close();
    plane.into_cluster().shutdown();

    // --- phase 3: the scale dance under concurrent load ------------------
    let mut plane = org
        .serve_elastic(3, cluster_opts, MembershipOptions::default())
        .unwrap();
    let scale_cfg = ScaleConfig {
        seed: SEED,
        clients,
        grow_to,
        keep: keep.clone(),
        client_config: client_config(),
        signer: Some(Signer::new(b"dvm-org-key")),
        hello: hello("scale"),
        transition_pause: Duration::from_millis(30),
    };
    let mut make_proxy = |id: u32| org.shard_proxy_named(&format!("shard{id}"));
    let scale = run_scale(&mut plane, &mut make_proxy, &urls, &scale_cfg);
    plane.into_cluster().shutdown();
    print!("{}", scale.render());
    println!();

    let mut t = Table::new(&["Phase", "Fetches", "OK", "p50 (ms)", "p99 (ms)"]);
    t.row(&[
        "steady (3 shards, warm)".into(),
        steady_ns.len().to_string(),
        steady_ns.len().to_string(),
        format!("{:.2}", percentile(&steady_ns, 0.50) as f64 / 1e6),
        format!("{:.2}", percentile(&steady_ns, 0.99) as f64 / 1e6),
    ]);
    t.row(&[
        format!("scale dance (3→{grow_to}→{})", keep.len()),
        scale.fetches_attempted.to_string(),
        scale.fetches_ok.to_string(),
        format!("{:.2}", scale.fetch_p50_ns as f64 / 1e6),
        format!("{:.2}", scale.fetch_p99_ns as f64 / 1e6),
    ]);
    t.print();

    let mut j = Table::new(&[
        "Join",
        "Wall (ms)",
        "Moved keys",
        "Moved bytes",
        "Owned URLs",
        "Cold",
        "Warm hit %",
    ]);
    j.row(&[
        format!("shard {new_shard}"),
        format!("{join_ms:.2}"),
        join.migration.keys.to_string(),
        join.migration.bytes.to_string(),
        owned.len().to_string(),
        cold_fetches.to_string(),
        format!("{:.1}", warm_hit_rate * 100.0),
    ]);
    println!();
    j.print();

    dvm_bench::emit_json(
        "membership",
        &[("phases", &t), ("join", &j)],
        &[
            ("seed", Json::Num(SEED as f64)),
            ("clients", Json::Num(clients as f64)),
            ("grow_to", Json::Num(grow_to as f64)),
            ("join_ms", Json::Num(join_ms)),
            ("warm_hit_rate", Json::Num(warm_hit_rate)),
            ("migrated_keys", Json::Num(scale.migrated_keys as f64)),
            ("drained_keys", Json::Num(scale.drained_keys as f64)),
            ("run_rewrites", Json::Num(scale.run_rewrites as f64)),
            (
                "client_ring_syncs",
                Json::Num(scale.client_ring_syncs as f64),
            ),
            ("violations", Json::Num(scale.violations.len() as f64)),
        ],
    );

    assert!(
        scale.ok(),
        "{} scale invariant violations (rendered above)",
        scale.violations.len()
    );
    assert!(
        warm_hit_rate > 0.9 || owned.is_empty(),
        "joining shard warm hit rate {:.1}% ≤ 90% — migration did not carry the cache",
        warm_hit_rate * 100.0
    );
    println!("\nall membership invariants held");
}
