//! §4.1.2: overhead of the proxy on applet transfer latency.
//!
//! 100 applets are fetched through the real proxy with the full static
//! pipeline (verification, security, auditing). For each applet we
//! account: the wide-area fetch (sampled from the paper-calibrated
//! latency distribution, mean 2198 ms), the rewrite time (simulated at
//! the 200 MHz cost model — the real wall-clock rewrite time is reported
//! alongside for reference), and the cached fetch path.

use dvm_bench::runners::experiment_policy;
use dvm_bench::Table;
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_netsim::{InternetPath, SimTime};
use dvm_proxy::RequestContext;
use dvm_workload::corpus;

fn main() {
    let cost = CostModel::default();
    let applets = corpus(1999);
    let mut path = InternetPath::paper_calibrated(7);

    // Build one organization whose origin serves every applet class.
    let mut all_classes = Vec::new();
    for a in &applets {
        all_classes.extend(a.classes.iter().cloned());
    }
    let org = Organization::new(
        &all_classes,
        experiment_policy(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();

    let ctx = RequestContext {
        client: "measure".into(),
        principal: "applets".into(),
        url: String::new(),
        trace: None,
    };

    let mut internet_ms = Vec::new();
    let mut rewrite_ms = Vec::new();
    let mut real_rewrite_ms = Vec::new();
    let mut cached_ms = Vec::new();
    let mut bytes_total = 0u64;

    for a in &applets {
        let mut applet_bytes = 0u64;
        let mut applet_rewrite = SimTime::ZERO;
        let mut applet_real_ns = 0u64;
        for cf in &a.classes {
            let name = cf.name().unwrap();
            let url = format!("class://{name}");
            let r = org.proxy.handle_request_detailed(&url, &ctx).unwrap();
            applet_bytes += r.bytes.len() as u64;
            applet_rewrite += cost
                .cpu
                .time_for(r.bytes.len() as u64 * cost.proxy_cycles_per_byte);
            applet_real_ns += r.processing_ns;
        }
        bytes_total += applet_bytes;
        internet_ms.push(path.sample_latency().as_millis_f64());
        rewrite_ms.push(applet_rewrite.as_millis_f64());
        real_rewrite_ms.push(applet_real_ns as f64 / 1e6);
        // Cached path: proxy disk read + LAN transfer (no Internet, no
        // rewrite).
        let disk = cost.cpu.time_for(cost.cache_disk_cycles * 30);
        let lan = cost.lan.transfer_time(applet_bytes);
        cached_ms.push((disk + lan).as_millis_f64());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };

    println!("§4.1.2: proxy overhead on applet transfers (100-applet corpus)\n");
    let mut t = Table::new(&["Quantity", "This reproduction", "Paper"]);
    t.row(&[
        "Mean Internet fetch latency".into(),
        format!("{:.0} ms (sd {:.0})", mean(&internet_ms), sd(&internet_ms)),
        "2198 ms (sd 3752)".into(),
    ]);
    t.row(&[
        "Mean uncached rewrite overhead".into(),
        format!("{:.0} ms", mean(&rewrite_ms)),
        "~265 ms".into(),
    ]);
    t.row(&[
        "Overhead / mean fetch".into(),
        format!("{:.1}%", mean(&rewrite_ms) / mean(&internet_ms) * 100.0),
        "~12%".into(),
    ]);
    t.row(&[
        "Mean cached fetch".into(),
        format!("{:.0} ms", mean(&cached_ms)),
        "338 ms".into(),
    ]);
    t.row(&[
        "Mean applet size".into(),
        format!(
            "{:.1} KB",
            bytes_total as f64 / applets.len() as f64 / 1024.0
        ),
        "(not reported)".into(),
    ]);
    t.row(&[
        "Real (host) rewrite time".into(),
        format!("{:.2} ms", mean(&real_rewrite_ms)),
        "n/a (2026 hardware)".into(),
    ]);
    t.print();
    dvm_bench::emit_json("proxy_overhead", &[("results", &t)], &[]);
}
