//! Optimizing execution tier: stock interpreter vs proxy-compiled IR.
//!
//! For every Figure-5 application the workload runs twice end-to-end —
//! once on a stock organization (exec tier disabled, everything
//! interpreted) and once on a tiered organization whose proxy compiles
//! rewritten classes to register IR that clients install and execute.
//! The table reports client CPU cycles for both, the speedup, and the
//! tier mix; a second table breaks down compile cost cold (first
//! client, proxy lowers every class) vs warm (second client, every IR
//! package served from the proxy cache). Pass `--quick` for a fast run
//! and `--json` to write `BENCH_exec.json`.

use dvm_bench::{runners, ExperimentScale, Json, Table};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_jvm::Completion;
use dvm_workload::figure5_apps;

struct AppRun {
    stock_cycles: u64,
    tiered_cycles: u64,
    ir_invocations: u64,
    interp_invocations: u64,
    cold_compile_cycles: u64,
    cold_compilations: u64,
    warm_ir_served: u64,
    warm_new_compile_cycles: u64,
}

fn run_app(app: &dvm_workload::GeneratedApp) -> AppRun {
    let mut stock_config = ServiceConfig::dvm();
    stock_config.exec_tier = false;

    let stock_org = Organization::new(
        &app.classes,
        runners::experiment_policy(),
        stock_config,
        CostModel::default(),
    )
    .expect("organization builds");
    let mut stock = stock_org.client("stock", "applets").expect("client builds");
    let sr = stock.run_main(&app.main_class).expect("runs");
    assert!(matches!(sr.completion, Completion::Normal(_)), "{sr:?}");
    assert_eq!(stock.vm.exec.stats.ir_invocations, 0);

    let tiered_org = Organization::new(
        &app.classes,
        runners::experiment_policy(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .expect("organization builds");
    let mut cold = tiered_org.client("cold", "applets").expect("client builds");
    let cr = cold.run_main(&app.main_class).expect("runs");
    assert!(matches!(cr.completion, Completion::Normal(_)), "{cr:?}");
    let cold_stats = tiered_org.exec_compiler_stats().expect("exec tier on");
    let cold_served = tiered_org.proxy.stats().ir_served;

    let mut warm = tiered_org.client("warm", "applets").expect("client builds");
    let wr = warm.run_main(&app.main_class).expect("runs");
    assert!(matches!(wr.completion, Completion::Normal(_)), "{wr:?}");
    let warm_stats = tiered_org.exec_compiler_stats().expect("exec tier on");
    let warm_served = tiered_org.proxy.stats().ir_served - cold_served;

    AppRun {
        stock_cycles: stock.vm.stats.cycles,
        tiered_cycles: cold.vm.stats.cycles,
        ir_invocations: cold.vm.exec.stats.ir_invocations,
        interp_invocations: cold.vm.exec.stats.interp_invocations,
        cold_compile_cycles: cold_stats.cycles_spent,
        cold_compilations: cold_stats.compilations,
        warm_ir_served: warm_served,
        warm_new_compile_cycles: warm_stats.cycles_spent - cold_stats.cycles_spent,
    }
}

fn main() {
    let scale = ExperimentScale::from_args();
    println!("Optimizing execution tier: client CPU cycles, interpreter vs IR\n");

    let mut perf = Table::new(&[
        "App",
        "Interp cycles",
        "IR cycles",
        "Speedup",
        "IR calls",
        "Interp calls",
    ]);
    let mut compile = Table::new(&[
        "App",
        "Cold compiles",
        "Cold compile cycles",
        "Warm IR served",
        "Warm compile cycles",
    ]);

    let mut stock_total = 0u64;
    let mut tiered_total = 0u64;
    for spec in figure5_apps() {
        let app = runners::generate_scaled(&spec, scale);
        let r = run_app(&app);
        stock_total += r.stock_cycles;
        tiered_total += r.tiered_cycles;
        perf.row(&[
            spec.name.clone(),
            r.stock_cycles.to_string(),
            r.tiered_cycles.to_string(),
            format!("{:.2}x", r.stock_cycles as f64 / r.tiered_cycles as f64),
            r.ir_invocations.to_string(),
            r.interp_invocations.to_string(),
        ]);
        compile.row(&[
            spec.name.clone(),
            r.cold_compilations.to_string(),
            r.cold_compile_cycles.to_string(),
            r.warm_ir_served.to_string(),
            r.warm_new_compile_cycles.to_string(),
        ]);
    }
    perf.print();
    println!("\nCompile cost, cold (first client) vs warm (cached IR):\n");
    compile.print();

    let speedup = stock_total as f64 / tiered_total as f64;
    println!(
        "\nOverall: {stock_total} interpreter cycles vs {tiered_total} on the IR tier \
         ({speedup:.2}x speedup; warm clients recompile nothing)."
    );
    dvm_bench::emit_json(
        "exec",
        &[("performance", &perf), ("compile_cost", &compile)],
        &[
            ("overall_speedup", Json::Num(speedup)),
            ("stock_cycles", Json::Num(stock_total as f64)),
            ("tiered_cycles", Json::Num(tiered_total as f64)),
        ],
    );
}
