//! Figure 5: the benchmark application inventory.
//!
//! Prints the paper's table next to the generated equivalents' actual
//! sizes and class counts.

use dvm_bench::Table;
use dvm_workload::{figure5_apps, generate, WorkKind};

fn description(kind: WorkKind) -> &'static str {
    match kind {
        WorkKind::Lexer => "Lexical analyzer generator",
        WorkKind::Parser => "LALR parser compiler",
        WorkKind::Compiler => "Bytecode to native compiler",
        WorkKind::Database => "Relational database (TPC-A like workload)",
        WorkKind::Constraint => "Constraint satisfier",
        WorkKind::Gui => "Graphical application",
    }
}

fn main() {
    println!("Figure 5: benchmark applications (paper inventory vs generated)\n");
    let mut t = Table::new(&[
        "Name",
        "Paper size",
        "Paper classes",
        "Generated size",
        "Generated classes",
        "Description",
    ]);
    for spec in figure5_apps() {
        let app = generate(&spec);
        t.row(&[
            spec.name.clone(),
            format!("{}K", spec.target_bytes / 1024),
            spec.class_count.to_string(),
            format!("{}K", app.total_bytes() / 1024),
            (app.classes.len() - 1).to_string(),
            description(spec.kind).to_string(),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig5", &[("results", &t)], &[]);
}
