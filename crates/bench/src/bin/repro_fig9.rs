//! Figure 9: performance of security services on monolithic and
//! distributed virtual machines (times in milliseconds).

use dvm_bench::fig9::{fmt_ms, run_all};
use dvm_bench::Table;

fn main() {
    println!("Figure 9: security microbenchmarks (milliseconds, simulated)\n");
    let mut t = Table::new(&[
        "Description",
        "Baseline",
        "JDK check",
        "JDK overhead",
        "DVM download",
        "DVM check",
        "DVM overhead",
    ]);
    for (op, row) in run_all() {
        t.row(&[
            op.label().to_string(),
            fmt_ms(row.baseline_ms),
            row.jdk_check_ms.map(fmt_ms).unwrap_or_else(|| "N/A".into()),
            row.jdk_overhead_ms()
                .map(fmt_ms)
                .unwrap_or_else(|| "N/A".into()),
            fmt_ms(row.dvm_download_ms),
            fmt_ms(row.dvm_check_ms),
            fmt_ms(row.dvm_overhead_ms()),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig9", &[("results", &t)], &[]);
    println!("\nShape notes (paper): the first DVM check downloads the policy (~5 ms);");
    println!("subsequent checks are comparable to or faster than the JDK; the JDK has");
    println!("no check at all on file reads (N/A row) while the DVM protects them.");
}
