//! Figure 8: breakdown of static and dynamic checks performed by the
//! verifier.
//!
//! Static checks run on the network server before execution; dynamic
//! checks are the injected `dvm/rt/RTVerifier` calls that actually
//! execute on the client. The paper's point — "the vast majority of
//! checks occur at the network server" — is a ratio of 2–4 orders of
//! magnitude. Pass `--quick` for a fast run.

use dvm_bench::{ExperimentScale, Table};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_workload::figure5_apps;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("Figure 8: static vs dynamic verifier checks\n");
    let mut t = Table::new(&[
        "Benchmark",
        "Static checks",
        "Dynamic checks",
        "Static share",
    ]);
    for spec in figure5_apps() {
        let app = dvm_bench::runners::generate_scaled(&spec, scale);
        let org = Organization::new(
            &app.classes,
            dvm_bench::runners::experiment_policy(),
            ServiceConfig::dvm(),
            CostModel::default(),
        )
        .unwrap();
        let mut client = org.client("bench", "applets").unwrap();
        let report = client.run_main(&app.main_class).unwrap();
        let stats = *org.service_stats.lock();
        let static_checks = stats.static_checks;
        let dynamic = report.dynamic_verify_checks;
        let share = static_checks as f64 / (static_checks + dynamic).max(1) as f64 * 100.0;
        t.row(&[
            spec.name.clone(),
            static_checks.to_string(),
            dynamic.to_string(),
            format!("{share:.2}%"),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig8", &[("results", &t)], &[]);
    println!("\nPaper's Figure 8 (for reference): jlex 291679/371, javacup 415825/806,");
    println!("pizza 289495/541, instantdb 1066944/3426, cassowary 1965538/2346.");
}
