//! Figure 11: application start-up time as a function of network
//! bandwidth.
//!
//! Startup time (first invocation until the application can process user
//! requests) for the six graphical applications over links from
//! 28.8 Kb/s wireless to 1 MB/s, under Java's class-granularity lazy
//! loading (the §5 baseline).

use dvm_bench::fig11::{app_profile, bandwidth_sweep};
use dvm_bench::Table;
use dvm_netsim::presets;
use dvm_optimizer::{startup_time, Strategy};
use dvm_workload::{figure11_apps, generate};

fn main() {
    println!("Figure 11: start-up time vs bandwidth (seconds, class-lazy loading)\n");
    let apps: Vec<_> = figure11_apps()
        .into_iter()
        .map(|spec| {
            let app = generate(&spec);
            let profile = app_profile(&app);
            (spec.name.clone(), profile)
        })
        .collect();

    let mut headers: Vec<&str> = vec!["KB/s"];
    let names: Vec<String> = apps.iter().map(|(n, _)| n.clone()).collect();
    for n in &names {
        headers.push(n);
    }
    let mut t = Table::new(&headers);
    for bw in bandwidth_sweep() {
        let link = presets::sweep_link(bw);
        let mut row = vec![format!("{:.1}", bw as f64 / 1000.0)];
        for (_, profile) in &apps {
            let s = startup_time(profile, Strategy::LazyClass, &link);
            row.push(format!("{:.1}", s.as_secs_f64()));
        }
        t.row(&row);
    }
    t.print();
    dvm_bench::emit_json("fig11", &[("results", &t)], &[]);
    println!("\nShape: startup is transfer-dominated below ~1 Mb/s; the largest");
    println!("application (hotjava) takes minutes at 28.8 Kb/s (paper Figure 11).");
}
