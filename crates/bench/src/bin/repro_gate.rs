//! The perf regression gate (ROADMAP item 5b): one binary that reads
//! every `BENCH_*.json` a CI run produced, compares the gated scalar
//! against its committed `BENCH_*.baseline.json`, and fails the build
//! on a >15% regression — replacing the per-bench inline scripts that
//! used to live in the workflow file.
//!
//! The gate table below is the single source of truth for what is
//! gated and how:
//!
//! * **higher-is-better** scalars (speedups, hit rates) fail when the
//!   current value drops below `baseline × (1 − tolerance)`;
//! * **lower-is-better** scalars (latencies) fail when the current
//!   value rises above `baseline × (1 + tolerance)`, except below an
//!   absolute noise floor where run-to-run jitter outweighs any real
//!   signal;
//! * **ceilings** are absolute acceptance bars that hold regardless of
//!   the baseline (the sampler-overhead ≤ 2% contract).
//!
//! Exit status is the verdict: 0 when every gate passes, 1 otherwise,
//! with a table of every comparison either way.

use std::process::ExitCode;

use dvm_bench::{Json, Table};

/// Which direction of drift counts as a regression.
#[derive(Clone, Copy, PartialEq)]
enum Better {
    Higher,
    Lower,
}

struct Gate {
    /// `BENCH_<bench>.json` / `BENCH_<bench>.baseline.json`.
    bench: &'static str,
    /// Top-level scalar key inside both files.
    metric: &'static str,
    better: Better,
    /// Relative drift allowed against the baseline; `None` disables the
    /// baseline comparison (the gate is ceiling-only).
    tolerance: Option<f64>,
    /// Absolute bar the current value must stay under, baseline or not.
    ceiling: Option<f64>,
    /// Lower-is-better only: values at or under this pass outright —
    /// loopback latencies this small are jitter, not regressions.
    noise_floor: Option<f64>,
}

const DEFAULT_TOLERANCE: f64 = 0.15;

const GATES: &[Gate] = &[
    Gate {
        bench: "exec",
        metric: "overall_speedup",
        better: Better::Higher,
        tolerance: Some(DEFAULT_TOLERANCE),
        ceiling: None,
        noise_floor: None,
    },
    Gate {
        bench: "membership",
        metric: "warm_hit_rate",
        better: Better::Higher,
        tolerance: Some(DEFAULT_TOLERANCE),
        ceiling: None,
        noise_floor: None,
    },
    Gate {
        // Distinct probe edges the quick fuzzing session covers; a
        // probe-threading or seed-corpus regression drops it well
        // before it costs a missed bug.
        bench: "fuzz",
        metric: "edges_total",
        better: Better::Higher,
        tolerance: Some(DEFAULT_TOLERANCE),
        ceiling: None,
        noise_floor: None,
    },
    Gate {
        // Reactor-over-blocking request rate at the C10K rung. The
        // acceptance bar for the reactor port was >= 3x. Wide tolerance:
        // the denominator is 9.5k thread spawns on a shared box, noisy
        // even at best-of-3, and the real signal (the reactor falling
        // back toward thread-per-connection rates) is a >5x collapse.
        bench: "net",
        metric: "reactor_speedup_c10k",
        better: Better::Higher,
        tolerance: Some(0.5),
        ceiling: None,
        noise_floor: None,
    },
    Gate {
        bench: "watch",
        metric: "sampler_overhead_pct",
        better: Better::Lower,
        tolerance: None,
        ceiling: Some(2.0),
        noise_floor: None,
    },
    Gate {
        bench: "watch",
        metric: "scrape_p99_us",
        better: Better::Lower,
        tolerance: Some(DEFAULT_TOLERANCE),
        ceiling: None,
        noise_floor: Some(5_000.0),
    },
];

/// Reads one scalar out of a `BENCH_*.json` file.
fn scalar(path: &str, key: &str) -> Result<f64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e} (run the bench first)"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    json.get(key)
        .and_then(Json::num)
        .ok_or_else(|| format!("{path}: no numeric {key:?}"))
}

fn main() -> ExitCode {
    let mut t = Table::new(&["Bench", "Metric", "Baseline", "Current", "Limit", "Verdict"]);
    let mut failures = 0usize;

    for gate in GATES {
        let current = match scalar(&format!("BENCH_{}.json", gate.bench), gate.metric) {
            Ok(v) => v,
            Err(e) => {
                failures += 1;
                t.row(&[
                    gate.bench.into(),
                    gate.metric.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("FAIL: {e}"),
                ]);
                continue;
            }
        };

        let mut limits: Vec<String> = Vec::new();
        let mut verdicts: Vec<String> = Vec::new();
        let mut baseline_cell = "-".to_owned();

        if let Some(ceiling) = gate.ceiling {
            limits.push(format!("<= {ceiling}"));
            if current > ceiling {
                verdicts.push(format!("over the {ceiling} ceiling"));
            }
        }

        if let Some(tolerance) = gate.tolerance {
            match scalar(&format!("BENCH_{}.baseline.json", gate.bench), gate.metric) {
                Err(e) => verdicts.push(e),
                Ok(baseline) => {
                    baseline_cell = format!("{baseline:.3}");
                    match gate.better {
                        Better::Higher => {
                            let floor = baseline * (1.0 - tolerance);
                            limits.push(format!(">= {floor:.3}"));
                            if current < floor {
                                verdicts.push(format!(
                                    "regressed more than {:.0}% (< {floor:.3})",
                                    tolerance * 100.0
                                ));
                            }
                        }
                        Better::Lower => {
                            let limit = baseline * (1.0 + tolerance);
                            limits.push(format!("<= {limit:.3}"));
                            let in_noise = gate.noise_floor.is_some_and(|f| current <= f);
                            if current > limit && !in_noise {
                                verdicts.push(format!(
                                    "regressed more than {:.0}% (> {limit:.3})",
                                    tolerance * 100.0
                                ));
                            }
                        }
                    }
                }
            }
        }

        let failed = !verdicts.is_empty();
        failures += usize::from(failed);
        t.row(&[
            gate.bench.into(),
            gate.metric.into(),
            baseline_cell,
            format!("{current:.3}"),
            limits.join(", "),
            if failed {
                format!("FAIL: {}", verdicts.join("; "))
            } else {
                "ok".into()
            },
        ]);
    }

    t.print();
    if failures > 0 {
        eprintln!("\n{failures} perf gate(s) failed");
        ExitCode::FAILURE
    } else {
        println!("\nall perf gates passed");
        ExitCode::SUCCESS
    }
}
