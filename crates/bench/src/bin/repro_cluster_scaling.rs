//! Cluster scaling: aggregate proxy throughput versus shard count.
//!
//! The paper's evaluation (§4.2) shows one proxy saturating its CPU on
//! the rewrite pipeline; `dvm-cluster` scales that proxy out. This bench
//! drives a real `ProxyCluster` — every fetch crosses a loopback socket,
//! is routed by the shared consistent-hash ring, and carries a verified
//! signature — and reports *simulated* aggregate throughput, in the
//! reproduction's house style: sockets move the bytes, the cost model
//! prices them. Each request's simulated service time is charged to the
//! shard the ring homes it on; the cluster's simulated makespan is the
//! busiest shard's total, so the speedup column is exactly the question
//! "how much rewrite capacity did sharding add?", independent of how
//! many host cores this machine happens to have.
//!
//! Two workloads bracket the design space:
//! - **cache-miss** (caching disabled): every fetch pays the full
//!   rewrite, the workload the cluster exists for. Near-linear scaling
//!   is expected, bounded by ring imbalance (±25% at 128 vnodes).
//! - **cache-hit** (warmed cache): every fetch is a memory-cache serve;
//!   scaling still helps, but the per-request cost is so small that the
//!   absolute gain is modest — the paper's argument for caching, made
//!   from the other side.
//!
//! `--quick` runs a smaller corpus and fewer shard counts (CI smoke).

use std::time::Instant;

use dvm_bench::Table;
use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, HashRing};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::Hello;
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_workload::corpus;

/// Ring seed shared by the cluster and the bench's own accounting ring.
const SEED: u64 = 42;

/// Simulated cost of a memory-cache serve (matches `RunReport`).
const MEMORY_SERVE_NS: u64 = 200_000;

struct Run {
    requests: u64,
    bytes: u64,
    /// Busiest shard's simulated busy time (the cluster's makespan).
    makespan_ns: u64,
    wall_ms: f64,
}

fn drive(org: &Organization, shards: usize, names: &[String], passes: usize, warm: bool) -> Run {
    let cluster = org
        .serve_cluster_with(
            shards,
            dvm_cluster::ClusterOptions {
                seed: SEED,
                ..Default::default()
            },
        )
        .unwrap();
    // The bench's own replica of the ring: in a failure-free run the
    // cluster client serves every URL from its home shard, so charging
    // `ring.home(url)` is charging the shard that actually did the work.
    let ring = HashRing::with_shards(shards as u32, 128, SEED);
    let hello = Hello {
        user: "bench".into(),
        principal: "applets".into(),
        hardware: "bench".into(),
        native_format: "x86".into(),
        jvm_version: "dvm-repro-0.1".into(),
    };
    let mut provider = ClusterClassProvider::new(
        cluster.addrs().to_vec(),
        cluster.ring().clone(),
        hello,
        Some(Signer::new(b"dvm-org-key")),
        ClusterClientConfig::default(),
    );

    if warm {
        // One discarded pass so every shard has rewritten (and cached)
        // its share before the measured passes.
        for name in names {
            let _ = provider.fetch(&format!("class://{name}")).unwrap();
        }
    }

    let mut busy_ns = vec![0u64; shards];
    let mut requests = 0u64;
    let mut bytes = 0u64;
    let started = Instant::now();
    for _ in 0..passes {
        for name in names {
            let url = format!("class://{name}");
            let (payload, transfer) = provider.fetch(&url).unwrap();
            let shard = ring.home(&url).unwrap() as usize;
            busy_ns[shard] += transfer.processing_ns.max(MEMORY_SERVE_NS);
            requests += 1;
            bytes += payload.len() as u64;
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    provider.close();
    cluster.shutdown();
    Run {
        requests,
        bytes,
        makespan_ns: busy_ns.into_iter().max().unwrap_or(0),
        wall_ms,
    }
}

fn bench_workload(
    title: &str,
    caching: bool,
    names: &[String],
    org: &Organization,
    shard_counts: &[usize],
    passes: usize,
) -> Vec<(usize, f64)> {
    println!("{title}");
    let mut t = Table::new(&[
        "Shards",
        "Requests",
        "MB moved",
        "Makespan (sim ms)",
        "MB/s (sim)",
        "req/s (sim)",
        "Speedup",
        "Wall (ms)",
    ]);
    let mut series = Vec::new();
    let mut base_mbs = 0.0f64;
    for &n in shard_counts {
        let run = drive(org, n, names, passes, caching);
        let secs = (run.makespan_ns as f64 / 1e9).max(1e-9);
        let mbs = run.bytes as f64 / 1e6 / secs;
        if series.is_empty() {
            base_mbs = mbs;
        }
        series.push((n, mbs));
        t.row(&[
            n.to_string(),
            run.requests.to_string(),
            format!("{:.1}", run.bytes as f64 / 1e6),
            format!("{:.1}", run.makespan_ns as f64 / 1e6),
            format!("{:.1}", mbs),
            format!("{:.0}", run.requests as f64 / secs),
            format!("{:.2}x", mbs / base_mbs.max(1e-9)),
            format!("{:.0}", run.wall_ms),
        ]);
    }
    t.print();
    dvm_bench::emit_json("cluster_scaling", &[("results", &t)], &[]);
    println!();
    series
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (applet_count, passes, shard_counts): (usize, usize, &[usize]) = if quick {
        (8, 1, &[1, 2, 4])
    } else {
        (32, 2, &[1, 2, 4, 8])
    };

    let applets: Vec<_> = corpus(SEED).into_iter().take(applet_count).collect();
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let names: Vec<String> = classes
        .iter()
        .map(|c| c.name().unwrap().to_owned())
        .collect();
    let policy = Policy::parse(dvm_security::policy::example_policy()).unwrap();

    println!(
        "cluster scaling: simulated aggregate throughput vs shard count ({} classes, signed{})",
        names.len(),
        if quick { ", --quick" } else { "" }
    );
    println!("(real loopback sockets move the bytes; the cost model prices them)\n");

    // Cache-miss workload: caching off, every fetch is a full rewrite.
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    services.caching = false;
    let org_miss =
        Organization::new(&classes, policy.clone(), services, CostModel::default()).unwrap();
    let miss = bench_workload(
        "cache-miss workload (caching disabled: every fetch rewrites)",
        false,
        &names,
        &org_miss,
        shard_counts,
        passes,
    );

    // Cache-hit workload: caching on, warmed, every fetch is a cache serve.
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    services.caching = true;
    let org_hit = Organization::new(&classes, policy, services, CostModel::default()).unwrap();
    let hit = bench_workload(
        "cache-hit workload (warmed cache: every fetch is a cache serve)",
        true,
        &names,
        &org_hit,
        shard_counts,
        passes,
    );

    // Shape verdicts.
    let speedup_at = |series: &[(usize, f64)], n: usize| {
        series
            .iter()
            .find(|(x, _)| *x == n)
            .map(|(_, v)| v / series[0].1.max(1e-9))
            .unwrap_or(0.0)
    };
    let miss4 = speedup_at(&miss, 4);
    println!(
        "cache-miss speedup at 4 shards: {miss4:.2}x (target: >= 3x — near-linear, bounded by ring imbalance)"
    );
    if let Some((_, _)) = hit.iter().find(|(x, _)| *x == 4) {
        println!(
            "cache-hit speedup at 4 shards: {:.2}x (per-request cost is tiny; sharding matters least when the cache works)",
            speedup_at(&hit, 4)
        );
    }
    assert!(
        miss4 >= 3.0,
        "cluster failed to scale: {miss4:.2}x at 4 shards on the cache-miss workload"
    );
}
