//! Socket throughput and the C10K ladder: reactor engine vs the
//! blocking thread-per-connection engine.
//!
//! Figure 10 proper (`repro_fig10`) is a discrete-event simulation of
//! proxy scaling on the paper's 1999 hardware. This binary measures the
//! reproduction's *actual* wire path, twice — once through the epoll
//! reactor (`ServerConfig::reactor: true`, the default) and once through
//! the original thread-per-connection engine — at each rung of a
//! concurrency ladder that ends at ten thousand simultaneous
//! connections.
//!
//! The workload isolates the network core: a 4 KiB payload is planted in
//! the shard cache with `PEER_PUT`, then every connection issues
//! `PEER_GET` probes answered straight from cache — no rewrite, no
//! execution, just accept, frame, and move bytes. The client side is a
//! single nonblocking epoll driver (built on `dvm_reactor::Poller`), so
//! client thread scheduling never bottlenecks either server engine, and
//! every open connection genuinely has a request in flight. The driver
//! runs as a re-exec of this binary (`--__drive`): client and server
//! ends each get their own `RLIMIT_NOFILE` budget, which is what lets
//! the top rung reach a full ten thousand connections under a 20 k
//! per-process fd cap.
//!
//! Wall time includes the connect phase deliberately: the C10K gap *is*
//! largely the cost of standing up ten thousand connections (a thread
//! spawn each on the blocking engine; a slab slot on the reactor).
//!
//! ```text
//! cargo run --release -p dvm-bench --bin repro_net_throughput -- --quick --json
//! ```
//!
//! `--json` writes `BENCH_net.json`; the gated scalar is
//! `reactor_speedup_c10k` — reactor requests/s over blocking requests/s
//! at the ladder's top rung. Numbers are wall-clock and
//! machine-dependent; the gate compares against a baseline from the same
//! reference container.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::time::Instant;

use dvm_bench::{emit_json, Json, Table};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::{Frame, FrameAssembler, ServerConfig};
use dvm_reactor::Poller;
use dvm_security::Policy;
use dvm_workload::corpus;

const PAYLOAD_LEN: usize = 4 << 10;
const PAYLOAD_URL: &str = "dvm://bench/C10kBlob.class";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--__drive") {
        return drive_child(&args[pos + 1..]);
    }
    let quick = args.iter().any(|a| a == "--quick");

    // The server ends live in this process; the client ends live in the
    // re-exec'd driver with a budget of its own. The reactor holds one
    // fd per connection; the blocking engine holds two (the stream and
    // its reader/writer clone), so its top rung is half the budget.
    let fd_limit = dvm_reactor::sys::raise_nofile_limit(25_000).unwrap_or(1024);
    let c10k = ((fd_limit.saturating_sub(1_000)) as usize).min(10_000);
    let c10k_blocking = (((fd_limit.saturating_sub(1_000)) / 2) as usize).min(c10k);

    let ladder: &[(usize, u32)] = if quick {
        &[(64, 4), (512, 4)]
    } else {
        &[(64, 8), (512, 8), (2048, 8)]
    };

    // A tiny org: the workload never leaves the cache, but the server
    // stack is the real one (signing on, full filter pipeline behind it).
    let applets: Vec<_> = corpus(42).into_iter().take(2).collect();
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();

    println!(
        "cache-probe throughput, reactor vs blocking engine \
         ({PAYLOAD_LEN}-byte replies, fd limit {fd_limit}, c10k rung = {c10k} conns)\n"
    );

    let mut t = Table::new(&[
        "Engine",
        "Conns",
        "Req/conn",
        "Requests",
        "MB moved",
        "Wall (ms)",
        "MB/s",
        "req/s",
    ]);
    let mut rows: Vec<(bool, usize, Run)> = Vec::new();
    let mut rungs: Vec<(bool, usize, u32)> = Vec::new();
    for &(conns, per_conn) in ladder {
        rungs.push((true, conns, per_conn));
        rungs.push((false, conns, per_conn));
    }
    rungs.push((true, c10k, 1));
    rungs.push((false, c10k_blocking, 1));
    for (reactor, conns, per_conn) in rungs {
        {
            // The top rung is best-of-3: mass thread spawn (blocking) and
            // mass connect (both) are at the scheduler's mercy on a loaded
            // box, and the gated speedup needs a stable denominator.
            let reps = if conns >= 2048 { 3 } else { 1 };
            let run = (0..reps)
                .map(|_| run_level(&org, reactor, conns, per_conn))
                .max_by(|a, b| {
                    (a.requests as f64 / a.wall_s).total_cmp(&(b.requests as f64 / b.wall_s))
                })
                .unwrap();
            t.row(&[
                if reactor { "reactor" } else { "blocking" }.into(),
                conns.to_string(),
                per_conn.to_string(),
                run.requests.to_string(),
                format!("{:.1}", run.bytes as f64 / 1e6),
                format!("{:.1}", run.wall_s * 1e3),
                format!("{:.1}", run.bytes as f64 / 1e6 / run.wall_s),
                format!("{:.0}", run.requests as f64 / run.wall_s),
            ]);
            rows.push((reactor, conns, run));
        }
    }
    t.print();

    let req_per_s = |reactor: bool, conns: usize| -> f64 {
        rows.iter()
            .find(|(r, c, _)| *r == reactor && *c == conns)
            .map(|(_, _, run)| run.requests as f64 / run.wall_s)
            .unwrap()
    };
    let reactor_c10k = req_per_s(true, c10k);
    let blocking_c10k = req_per_s(false, c10k_blocking);
    let speedup = reactor_c10k / blocking_c10k;
    println!(
        "\nC10K rung: reactor {reactor_c10k:.0} req/s at {c10k} conns, \
         blocking {blocking_c10k:.0} req/s at {c10k_blocking} conns — {speedup:.1}x \
         (rates, so the blocking engine's smaller rung favors it)"
    );

    emit_json(
        "net",
        &[("ladder", &t)],
        &[
            ("quick", Json::Bool(quick)),
            ("payload_bytes", Json::Num(PAYLOAD_LEN as f64)),
            ("c10k_conns", Json::Num(c10k as f64)),
            ("c10k_blocking_conns", Json::Num(c10k_blocking as f64)),
            ("reactor_req_per_s_c10k", Json::Num(reactor_c10k)),
            ("blocking_req_per_s_c10k", Json::Num(blocking_c10k)),
            ("reactor_speedup_c10k", Json::Num(speedup)),
        ],
    );
}

struct Run {
    requests: u64,
    bytes: u64,
    wall_s: f64,
}

/// One ladder rung: a fresh server on the chosen engine, `conns`
/// connections each completing `per_conn` cache probes, driven by the
/// epoll client. Wall time spans connect-to-last-reply.
fn run_level(org: &Organization, reactor: bool, conns: usize, per_conn: u32) -> Run {
    let server = org
        .serve_with(
            "127.0.0.1:0",
            ServerConfig {
                reactor,
                max_connections: conns + 64,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let addr = server.addr();

    // Plant the payload on the cache's disk tier; every probe after this
    // is a pure cache hit.
    let payload = vec![0x5A_u8; PAYLOAD_LEN];
    {
        let mut warm = TcpStream::connect(addr).unwrap();
        warm.write_all(
            &Frame::PeerPut {
                url: PAYLOAD_URL.to_owned(),
                bytes: payload.clone(),
            }
            .encode(),
        )
        .unwrap();
        warm.write_all(
            &Frame::PeerGet {
                request_id: 0,
                url: PAYLOAD_URL.to_owned(),
            }
            .encode(),
        )
        .unwrap();
        // Round-trip before measuring so the PUT has certainly landed.
        let mut prefix = [0u8; 4];
        warm.read_exact(&mut prefix).unwrap();
        let mut body = vec![0u8; u32::from_be_bytes(prefix) as usize];
        warm.read_exact(&mut body).unwrap();
        assert!(matches!(
            Frame::decode_body(&body).unwrap(),
            Frame::CodeResponse { .. }
        ));
    }

    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "--__drive",
            &addr.to_string(),
            &conns.to_string(),
            &per_conn.to_string(),
        ])
        .output()
        .expect("spawn driver child");
    assert!(
        out.status.success(),
        "driver child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8(out.stdout).unwrap();
    let field = |key: &str| -> f64 {
        report
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("driver child said {report:?}, no {key}"))
            .parse()
            .unwrap()
    };
    let run = Run {
        requests: field("requests") as u64,
        bytes: field("bytes") as u64,
        wall_s: field("wall_s").max(1e-9),
    };

    let stats = server.shutdown();
    assert_eq!(stats.errors, 0, "engine reported protocol errors");
    run
}

/// `--__drive <addr> <conns> <per_conn>`: the re-exec'd client half.
/// Times connect-to-last-reply itself (spawn overhead stays outside the
/// window) and reports on stdout.
fn drive_child(args: &[String]) {
    let addr: std::net::SocketAddr = args[0].parse().unwrap();
    let conns: usize = args[1].parse().unwrap();
    let per_conn: u32 = args[2].parse().unwrap();
    dvm_reactor::sys::raise_nofile_limit(25_000).unwrap();
    let req = Frame::PeerGet {
        request_id: 1,
        url: PAYLOAD_URL.to_owned(),
    }
    .encode();
    let started = Instant::now();
    let (requests, bytes) = drive(addr, conns, per_conn, &req, PAYLOAD_LEN);
    let wall_s = started.elapsed().as_secs_f64();
    println!("requests={requests} bytes={bytes} wall_s={wall_s}");
}

struct ClientConn {
    stream: TcpStream,
    asm: FrameAssembler,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    remaining: u32,
}

/// Nonblocking client: connects `conns` sockets, keeps one probe in
/// flight on every socket until each has completed `per_conn`
/// request/reply round-trips, and returns (requests, payload bytes).
fn drive(
    addr: std::net::SocketAddr,
    conns: usize,
    per_conn: u32,
    req: &[u8],
    payload_len: usize,
) -> (u64, u64) {
    let poller = Poller::new().unwrap();
    let mut slots: Vec<Option<ClientConn>> = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).unwrap();
        poller
            .add(stream.as_raw_fd(), i as u64, true, false)
            .unwrap();
        let mut conn = ClientConn {
            stream,
            asm: FrameAssembler::default(),
            out: req.to_vec(),
            out_pos: 0,
            want_write: false,
            remaining: per_conn,
        };
        flush(&poller, i as u64, &mut conn);
        slots.push(Some(conn));
    }

    let mut requests = 0u64;
    let mut bytes = 0u64;
    let mut open = conns;
    let mut events = Vec::new();
    let mut buf = vec![0u8; 64 << 10];
    while open > 0 {
        poller.wait(&mut events, None).unwrap();
        for ev in events.drain(..) {
            let idx = ev.token as usize;
            let Some(conn) = slots[idx].as_mut() else {
                continue;
            };
            if ev.writable {
                flush(&poller, ev.token, conn);
            }
            if !(ev.readable || ev.hangup) {
                continue;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => panic!(
                        "server closed conn {idx} with {} replies pending",
                        conn.remaining
                    ),
                    Ok(n) => conn.asm.push(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("read on conn {idx}: {e}"),
                }
            }
            while let Ok(Some(frame)) = conn.asm.next_frame() {
                match frame {
                    Frame::CodeResponse { bytes: b, .. } => {
                        assert_eq!(b.len(), payload_len);
                        requests += 1;
                        bytes += b.len() as u64;
                    }
                    other => panic!("conn {idx}: unexpected reply {other:?}"),
                }
                conn.remaining -= 1;
                if conn.remaining > 0 {
                    conn.out.extend_from_slice(req);
                    flush(&poller, ev.token, conn);
                }
            }
            if conn.remaining == 0 {
                poller.remove(conn.stream.as_raw_fd());
                slots[idx] = None;
                open -= 1;
            }
        }
    }
    (requests, bytes)
}

/// Writes as much of `conn.out` as the socket accepts, arming write
/// interest only while a partial write is outstanding.
fn flush(poller: &Poller, token: u64, conn: &mut ClientConn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("write: {e}"),
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    let want = !conn.out.is_empty();
    if want != conn.want_write {
        conn.want_write = want;
        poller
            .modify(conn.stream.as_raw_fd(), token, true, want)
            .unwrap();
    }
}
