//! Socket throughput: the real-TCP companion to Figure 10.
//!
//! Figure 10 proper (`repro_fig10`) is a discrete-event simulation of
//! proxy scaling on the paper's 1999 hardware. This binary measures the
//! reproduction's *actual* wire path instead: N concurrent clients
//! fetch the applet corpus from a `ProxyServer` over loopback TCP with
//! `CODE_REQUEST`/`CODE_RESPONSE` frames, signatures verified on
//! receipt. Numbers are wall-clock and machine-dependent — they
//! characterize the implementation, not the paper's testbed.

use std::sync::Arc;
use std::time::Instant;

use dvm_bench::Table;
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::{Hello, NetClassProvider, NetConfig};
use dvm_proxy::Signer;
use dvm_security::Policy;
use dvm_workload::corpus;

fn main() {
    // A corpus slice large enough to exercise the cache and frame sizes.
    let applets: Vec<_> = corpus(42).into_iter().take(32).collect();
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let class_names: Arc<Vec<String>> = Arc::new(
        classes
            .iter()
            .map(|c| c.name().unwrap().to_owned())
            .collect(),
    );

    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();
    let server = org.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    println!(
        "socket throughput vs concurrent clients ({} classes, signed, cached)",
        class_names.len()
    );
    println!("server at {addr}\n");

    let mut t = Table::new(&[
        "Clients",
        "Requests",
        "MB moved",
        "Wall (ms)",
        "MB/s",
        "req/s",
    ]);
    for clients in [1usize, 2, 4, 8, 16] {
        let started = Instant::now();
        let mut total_requests = 0u64;
        let mut total_bytes = 0u64;
        let results: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let names = class_names.clone();
                    scope.spawn(move || {
                        let hello = Hello {
                            user: format!("bench{c}"),
                            principal: "applets".into(),
                            hardware: "bench".into(),
                            native_format: "x86".into(),
                            jvm_version: "dvm-repro-0.1".into(),
                        };
                        let mut provider = NetClassProvider::new(
                            addr,
                            hello,
                            Some(Signer::new(b"dvm-org-key")),
                            NetConfig::default(),
                        )
                        .unwrap();
                        let mut requests = 0u64;
                        let mut bytes = 0u64;
                        for name in names.iter() {
                            let (payload, _) = provider.fetch(&format!("class://{name}")).unwrap();
                            requests += 1;
                            bytes += payload.len() as u64;
                        }
                        (requests, bytes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = started.elapsed();
        for (r, b) in results {
            total_requests += r;
            total_bytes += b;
        }
        let secs = wall.as_secs_f64().max(1e-9);
        t.row(&[
            clients.to_string(),
            total_requests.to_string(),
            format!("{:.1}", total_bytes as f64 / 1e6),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", total_bytes as f64 / 1e6 / secs),
            format!("{:.0}", total_requests as f64 / secs),
        ]);
    }
    t.print();
    // Pre-telemetry measurements on the reference container, kept so the
    // JSON records current-vs-baseline in one artifact (the telemetry
    // instrumentation is required to stay within 5% of these).
    let baseline = dvm_bench::Json::Obj(
        [
            (1u64, 675u64),
            (2, 30369),
            (4, 28364),
            (8, 29993),
            (16, 29799),
        ]
        .iter()
        .map(|&(c, r)| (c.to_string(), dvm_bench::Json::Num(r as f64)))
        .collect(),
    );
    dvm_bench::emit_json(
        "net_throughput",
        &[("results", &t)],
        &[("baseline_req_per_s", baseline)],
    );

    let stats = server.shutdown();
    println!(
        "\nserver: {} connections, {} requests, {} responses, {} errors",
        stats.connections, stats.requests, stats.responses, stats.errors
    );
}
