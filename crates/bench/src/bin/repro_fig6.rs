//! Figure 6: end-to-end application performance under monolithic and
//! distributed virtual machines.
//!
//! Three bars per application: Monolithic (all services in the client),
//! DVM (uncached first execution through the proxy pipeline), and DVM
//! cached (subsequent execution by another host in the organization).
//! Times are simulated seconds on the paper's 200 MHz / 10 Mb/s testbed
//! model. Pass `--quick` for a fast run.

use dvm_bench::{run_dvm_cached_pair, run_monolithic, ExperimentScale, Table};
use dvm_workload::figure5_apps;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("Figure 6: application performance (simulated seconds)\n");
    let mut t = Table::new(&[
        "App",
        "Monolithic",
        "DVM",
        "DVM cached",
        "DVM/Mono",
        "Cached/Mono",
    ]);
    let mut overhead_sum = 0.0;
    let mut n = 0.0;
    for spec in figure5_apps() {
        let app = dvm_bench::runners::generate_scaled(&spec, scale);
        let mono = run_monolithic(&app);
        let (dvm, cached) = run_dvm_cached_pair(&app);
        let m = mono.total_time.as_secs_f64();
        let d = dvm.total_time.as_secs_f64();
        let c = cached.total_time.as_secs_f64();
        overhead_sum += d / m - 1.0;
        n += 1.0;
        t.row(&[
            spec.name.clone(),
            format!("{m:.3}"),
            format!("{d:.3}"),
            format!("{c:.3}"),
            format!("{:.2}x", d / m),
            format!("{:.2}x", c / m),
        ]);
    }
    t.print();
    dvm_bench::emit_json("fig6", &[("results", &t)], &[]);
    println!(
        "\nMean uncached DVM overhead: {:.1}% (paper: ~11% of total running time)",
        overhead_sum / n * 100.0
    );
    println!("Cached DVM runs faster than monolithic: services amortized across hosts.");
}
