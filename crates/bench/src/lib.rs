//! Shared infrastructure for the experiment harness.
//!
//! One `repro_*` binary exists per table and figure of the paper's
//! evaluation (see DESIGN.md §4); this library holds the pieces they
//! share: table rendering, the Figure 9 microbenchmark programs, and the
//! standard experiment runners.

pub mod fig11;
pub mod fig9;
pub mod fuzz;
pub mod json;
pub mod runners;
pub mod table;

pub use json::{emit_json, json_flag, Json};
pub use runners::{run_dvm, run_dvm_cached_pair, run_monolithic, ExperimentScale};
pub use table::Table;
