//! `ChaosLink`: a byte-level TCP man-in-the-middle that injects a seeded
//! [`ChaosSchedule`](crate::ChaosSchedule) into a live connection.
//!
//! The link binds its own loopback socket; clients connect to it instead
//! of the real server, and every accepted connection is paired with an
//! upstream connection to the protected address. Two pump threads per
//! connection shuttle bytes, reassembling the wire protocol's
//! `u32 len | body` frames so faults land on *frame* boundaries — the
//! same unit the schedule grammar talks about. Fault decisions come from
//! a [`FaultState`] stream keyed by `(seed, connection, direction)`, so
//! a link replayed with the same seed against the same traffic places
//! every fault identically, regardless of thread scheduling.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::schedule::{ChaosFault, ChaosSchedule, Dir, FaultState};

/// How long a pump blocks in `read` before re-checking for shutdown.
const POLL: Duration = Duration::from_millis(50);
/// Upstream connect budget; a dead upstream looks like a refused
/// connection to the client within this bound.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);
/// Cap on the retained fault-event log.
const MAX_EVENTS: usize = 10_000;

/// One injected fault, as recorded in the link's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based connection index on this link.
    pub conn: u64,
    /// Direction the faulted frame was travelling.
    pub dir: Dir,
    /// 1-based frame index on that `(conn, dir)` stream.
    pub frame: u64,
    /// Stable fault name (see [`ChaosFault::name`]).
    pub kind: &'static str,
}

/// Counters and the bounded fault log for one link.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Connections accepted (whether or not upstream was reachable).
    pub connections: u64,
    /// Frames forwarded intact (post-fault frames that still went out).
    pub frames_forwarded: u64,
    /// Bytes written toward either end, including truncated partials.
    pub bytes_forwarded: u64,
    /// Faults injected, by fault name.
    pub faults: BTreeMap<&'static str, u64>,
    /// The first [`MAX_EVENTS`] injected faults, in injection order per
    /// stream (cross-stream order is scheduling-dependent; compare as a
    /// set when asserting determinism).
    pub events: Vec<FaultEvent>,
}

impl LinkStats {
    /// Total faults injected across all kinds.
    pub fn faults_total(&self) -> u64 {
        self.faults.values().sum()
    }
}

#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    frames_forwarded: AtomicU64,
    bytes_forwarded: AtomicU64,
    faults: Mutex<BTreeMap<&'static str, u64>>,
    events: Mutex<Vec<FaultEvent>>,
}

impl StatsInner {
    fn record_fault(&self, conn: u64, dir: Dir, frame: u64, kind: &'static str) {
        *self.faults.lock().entry(kind).or_insert(0) += 1;
        let mut events = self.events.lock();
        if events.len() < MAX_EVENTS {
            events.push(FaultEvent {
                conn,
                dir,
                frame,
                kind,
            });
        }
    }

    fn snapshot(&self) -> LinkStats {
        LinkStats {
            connections: self.connections.load(Ordering::Relaxed),
            frames_forwarded: self.frames_forwarded.load(Ordering::Relaxed),
            bytes_forwarded: self.bytes_forwarded.load(Ordering::Relaxed),
            faults: self.faults.lock().clone(),
            events: self.events.lock().clone(),
        }
    }
}

/// A running chaos interposer. Dropping it without calling
/// [`ChaosLink::shutdown`] leaks the accept thread for the process
/// lifetime; tests should shut down explicitly.
pub struct ChaosLink {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    accept_thread: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ChaosLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLink")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ChaosLink {
    /// Binds `127.0.0.1:0` and starts interposing between connecting
    /// clients and `upstream` under `schedule`, seeded by `seed`.
    pub fn start(
        upstream: SocketAddr,
        schedule: ChaosSchedule,
        seed: u64,
    ) -> std::io::Result<ChaosLink> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(StatsInner::default());
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let running = running.clone();
            let stats = stats.clone();
            let pumps = pumps.clone();
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    let conn_counter = AtomicU64::new(0);
                    while running.load(Ordering::SeqCst) {
                        let (client, _) = match listener.accept() {
                            Ok(pair) => pair,
                            Err(_) => break,
                        };
                        if !running.load(Ordering::SeqCst) {
                            break;
                        }
                        let conn = conn_counter.fetch_add(1, Ordering::SeqCst);
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let server = match TcpStream::connect_timeout(&upstream, CONNECT_TIMEOUT) {
                            Ok(s) => s,
                            // Upstream gone: the client observes an
                            // immediate close, i.e. a transport error.
                            Err(_) => continue,
                        };
                        spawn_pumps(
                            &pumps, conn, client, server, &schedule, seed, &running, &stats,
                        );
                    }
                })
                .expect("spawn chaos accept thread")
        };

        Ok(ChaosLink {
            addr,
            running,
            stats,
            accept_thread: Some(accept_thread),
            pumps,
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A consistent snapshot of the link's counters and fault log.
    pub fn stats(&self) -> LinkStats {
        self.stats.snapshot()
    }

    /// Stops accepting, tears down every pump, and returns final stats.
    pub fn shutdown(mut self) -> LinkStats {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.pumps.lock());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_pumps(
    pumps: &Mutex<Vec<JoinHandle<()>>>,
    conn: u64,
    client: TcpStream,
    server: TcpStream,
    schedule: &ChaosSchedule,
    seed: u64,
    running: &Arc<AtomicBool>,
    stats: &Arc<StatsInner>,
) {
    let spawn_dir = |dir: Dir, src: &TcpStream, dst: &TcpStream| {
        let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
            return None;
        };
        let state = FaultState::new(schedule, seed, conn, dir);
        let running = running.clone();
        let stats = stats.clone();
        std::thread::Builder::new()
            .name(format!("chaos-pump-{conn}"))
            .spawn(move || pump(src, dst, state, conn, dir, &running, &stats))
            .ok()
    };
    let mut guard = pumps.lock();
    if let Some(h) = spawn_dir(Dir::ToServer, &client, &server) {
        guard.push(h);
    }
    if let Some(h) = spawn_dir(Dir::ToClient, &server, &client) {
        guard.push(h);
    }
}

/// Shuttles one direction of one connection, frame by frame, applying
/// the stream's fault decisions. Returns when the stream ends, a
/// terminal fault fires, or the link shuts down.
fn pump(
    src: TcpStream,
    dst: TcpStream,
    mut state: FaultState,
    conn: u64,
    dir: Dir,
    running: &AtomicBool,
    stats: &StatsInner,
) {
    let _ = src.set_read_timeout(Some(POLL));
    let mut src = src;
    let mut dst = dst;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 8192];
    let mut frame_idx: u64 = 0;

    loop {
        if !running.load(Ordering::SeqCst) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        match src.read(&mut tmp) {
            // Clean EOF: propagate the half-close downstream. Any bytes
            // short of a full frame are dropped — that *is* truncation,
            // and downstream sees it as such.
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        }

        while let Some(total) = complete_frame_len(&buf) {
            let mut frame: Vec<u8> = buf.drain(..total).collect();
            frame_idx += 1;
            let faults = state.decide(frame_idx);
            for fault in faults {
                stats.record_fault(conn, dir, frame_idx, fault.name());
                match fault {
                    ChaosFault::Delay(ms) | ChaosFault::Stall(ms) => {
                        sleep_poll(Duration::from_millis(ms), running);
                    }
                    ChaosFault::Throttle(bps) => {
                        let secs = frame.len() as f64 / bps as f64;
                        sleep_poll(Duration::from_secs_f64(secs.min(5.0)), running);
                    }
                    ChaosFault::Corrupt => {
                        let off = corrupt_offset(&mut state, frame.len());
                        frame[off] ^= 0xFF;
                    }
                    ChaosFault::Truncate(n) => {
                        let cut = n.clamp(1, frame.len().saturating_sub(1).max(1));
                        if dst.write_all(&frame[..cut]).is_ok() {
                            let _ = dst.flush();
                            stats
                                .bytes_forwarded
                                .fetch_add(cut as u64, Ordering::Relaxed);
                        }
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    ChaosFault::Reset => {
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                        return;
                    }
                    ChaosFault::HalfClose => {
                        if dst.write_all(&frame).is_ok() {
                            let _ = dst.flush();
                            stats
                                .bytes_forwarded
                                .fetch_add(frame.len() as u64, Ordering::Relaxed);
                        }
                        let _ = dst.shutdown(Shutdown::Write);
                        return;
                    }
                }
            }
            if dst.write_all(&frame).is_err() {
                let _ = src.shutdown(Shutdown::Both);
                return;
            }
            let _ = dst.flush();
            stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
            stats
                .bytes_forwarded
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
    }
}

/// Length (prefix + body) of the first complete frame in `buf`, if any.
fn complete_frame_len(buf: &[u8]) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let total = 4 + len;
    (buf.len() >= total).then_some(total)
}

/// A deterministic corruption offset. Never inside the 4-byte length
/// prefix (that would desync framing rather than corrupt a payload);
/// for frames with a meaningful body, biased ≥ 32 bytes in, so the flip
/// hits class bytes and exercises signature verification instead of the
/// frame grammar's field headers.
fn corrupt_offset(state: &mut FaultState, frame_len: usize) -> usize {
    debug_assert!(frame_len >= 5, "frames carry at least a tag byte");
    let body = frame_len - 4;
    if body > 64 {
        4 + 32 + state.draw_below((body - 32) as u64) as usize
    } else {
        4 + state.draw_below(body as u64) as usize
    }
}

/// Sleeps `total` in [`POLL`]-sized slices, bailing early on shutdown.
fn sleep_poll(total: Duration, running: &AtomicBool) {
    let mut left = total;
    while !left.is_zero() {
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let step = left.min(POLL);
        std::thread::sleep(step);
        left -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChaosSchedule;

    /// A minimal upstream: accepts one connection, echoes every frame
    /// back verbatim until EOF or error.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            let mut buf = Vec::new();
            let mut tmp = [0u8; 4096];
            loop {
                match conn.read(&mut tmp) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => buf.extend_from_slice(&tmp[..n]),
                }
                while let Some(total) = complete_frame_len(&buf) {
                    let frame: Vec<u8> = buf.drain(..total).collect();
                    if conn.write_all(&frame).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, handle)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    fn read_frame(conn: &mut TcpStream) -> Option<Vec<u8>> {
        let mut prefix = [0u8; 4];
        conn.read_exact(&mut prefix).ok()?;
        let len = u32::from_be_bytes(prefix) as usize;
        let mut body = vec![0u8; len];
        conn.read_exact(&mut body).ok()?;
        Some(body)
    }

    #[test]
    fn passes_frames_through_unmodified_without_a_schedule() {
        let (upstream, server) = echo_server();
        let link = ChaosLink::start(upstream, ChaosSchedule::default(), 1).unwrap();

        let mut conn = TcpStream::connect(link.addr()).unwrap();
        for i in 0..5u8 {
            let payload = vec![i; 16 + i as usize];
            conn.write_all(&frame(&payload)).unwrap();
            assert_eq!(read_frame(&mut conn).unwrap(), payload);
        }
        drop(conn);
        let stats = link.shutdown();
        server.join().unwrap();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.frames_forwarded, 10, "5 frames each way");
        assert_eq!(stats.faults_total(), 0);
    }

    #[test]
    fn corrupts_exactly_the_scheduled_frame() {
        let (upstream, server) = echo_server();
        // Corrupt the 2nd client→server frame only.
        let schedule = ChaosSchedule::parse(">corrupt@once2").unwrap();
        let link = ChaosLink::start(upstream, schedule, 7).unwrap();

        let mut conn = TcpStream::connect(link.addr()).unwrap();
        let payload = vec![0xABu8; 100];
        for i in 1..=3u64 {
            conn.write_all(&frame(&payload)).unwrap();
            let echoed = read_frame(&mut conn).unwrap();
            let diffs = echoed.iter().zip(&payload).filter(|(a, b)| a != b).count();
            if i == 2 {
                assert_eq!(diffs, 1, "frame 2 must have exactly one flipped byte");
            } else {
                assert_eq!(diffs, 0, "frame {i} must be intact");
            }
        }
        drop(conn);
        let stats = link.shutdown();
        server.join().unwrap();
        assert_eq!(
            stats.events,
            vec![FaultEvent {
                conn: 0,
                dir: Dir::ToServer,
                frame: 2,
                kind: "corrupt"
            }]
        );
    }

    #[test]
    fn reset_drops_the_connection_mid_stream() {
        let (upstream, server) = echo_server();
        let schedule = ChaosSchedule::parse(">reset@once2").unwrap();
        let link = ChaosLink::start(upstream, schedule, 7).unwrap();

        let mut conn = TcpStream::connect(link.addr()).unwrap();
        conn.write_all(&frame(b"first")).unwrap();
        assert_eq!(read_frame(&mut conn).unwrap(), b"first");
        conn.write_all(&frame(b"second")).unwrap();
        // The second frame is discarded and both sides are torn down:
        // the next read observes EOF or a reset.
        assert!(read_frame(&mut conn).is_none());

        let stats = link.shutdown();
        server.join().unwrap();
        assert_eq!(stats.faults.get("reset"), Some(&1));
        assert_eq!(stats.frames_forwarded, 2, "first frame, both directions");
    }

    #[test]
    fn same_seed_places_identical_faults_at_runtime() {
        let run = |seed: u64| -> Vec<FaultEvent> {
            let (upstream, server) = echo_server();
            let schedule = ChaosSchedule::parse(">corrupt@p0.4").unwrap();
            let link = ChaosLink::start(upstream, schedule, seed).unwrap();
            let mut conn = TcpStream::connect(link.addr()).unwrap();
            for _ in 0..20 {
                conn.write_all(&frame(&[0u8; 80])).unwrap();
                read_frame(&mut conn).unwrap();
            }
            drop(conn);
            let stats = link.shutdown();
            server.join().unwrap();
            stats.events
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same traffic, same fault placement");
        assert!(!a.is_empty(), "p0.4 over 20 frames should fire");
        let c = run(43);
        assert_ne!(a, c, "a different seed must move the faults");
    }
}
