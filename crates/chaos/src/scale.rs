//! Elastic-scale chaos: grow and shrink a live cluster under client
//! load.
//!
//! The scenario the membership plane exists for: a cluster serving
//! concurrent clients grows from its starting width to `grow_to`
//! shards (each join migrating its key range in), then shrinks down to
//! a survivor set (each retirement draining its keys out), while the
//! clients keep fetching through every epoch change — re-learning the
//! ring over `RING_UPDATE` rather than reconnecting. The run checks:
//!
//! * `zero-failed-clients-across-epoch-change` — no fetch fails, ever;
//!   a membership transition is invisible to clients beyond latency.
//! * `payload-matches-oracle` — whichever shard (and whichever epoch)
//!   served a fetch, the bytes are exactly the fault-free rewrite.
//! * `bounded-re-rewrites` — live migration works: the whole scale
//!   dance re-rewrites at most one class per URL plus one racing fetch
//!   per transition, instead of every transition re-paying the rewrite
//!   cost for every key that moved.
//! * `epoch-advances` — every transition published a strictly larger
//!   epoch (clients can order views).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dvm_cluster::{ClusterClassProvider, ClusterClientConfig};
use dvm_membership::MembershipPlane;
use dvm_net::Hello;
use dvm_netsim::SimRng;
use dvm_proxy::{Proxy, RequestContext, SignatureCheck, Signer};

use crate::runner::Violation;

/// Everything a scale run needs besides the plane itself.
#[derive(Clone)]
pub struct ScaleConfig {
    /// Master seed for client shuffles.
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Target width of the grow phase.
    pub grow_to: usize,
    /// Shard ids that survive the shrink phase; every other ring member
    /// is retired.
    pub keep: Vec<u32>,
    /// Cluster-client tuning (`ring_sync` is forced on — the scenario
    /// is pointless without it).
    pub client_config: ClusterClientConfig,
    /// Signature verification key shared with the cluster.
    pub signer: Option<Signer>,
    /// Identity template; each client gets `user = "<user><i>"`.
    pub hello: Hello,
    /// Pause before and between membership transitions, letting client
    /// load overlap them.
    pub transition_pause: Duration,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 0,
            clients: 8,
            grow_to: 6,
            keep: vec![1, 4],
            client_config: ClusterClientConfig::default(),
            signer: None,
            hello: Hello {
                user: "scale".into(),
                principal: "applets".into(),
                ..Hello::default()
            },
            transition_pause: Duration::from_millis(30),
        }
    }
}

/// The outcome of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Ring width at start / after growing / after shrinking.
    pub shards_start: usize,
    /// Peak width (after the grow phase).
    pub shards_peak: usize,
    /// Final width (after the shrink phase).
    pub shards_end: usize,
    /// Epoch before any transition.
    pub epoch_start: u64,
    /// Epoch after the last transition.
    pub epoch_end: u64,
    /// Fetches attempted across all clients.
    pub fetches_attempted: u64,
    /// Fetches that delivered verified bytes.
    pub fetches_ok: u64,
    /// Fetches that failed with a typed error.
    pub fetches_failed: u64,
    /// Median successful-fetch latency in nanoseconds.
    pub fetch_p50_ns: u64,
    /// 99th-percentile successful-fetch latency in nanoseconds.
    pub fetch_p99_ns: u64,
    /// Rewrites spent warming the cluster before load (== unique URLs).
    pub settle_rewrites: u64,
    /// Rewrites during the run proper — what migration is supposed to
    /// make (close to) zero.
    pub run_rewrites: u64,
    /// Cache entries moved by join migrations.
    pub migrated_keys: u64,
    /// Cache entries drained out of retiring shards.
    pub drained_keys: u64,
    /// Ring-sync pulls clients performed.
    pub client_ring_syncs: u64,
    /// Every invariant failure (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl ScaleReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A human summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scale run {}→{}→{} shards, epoch {}→{}: {}/{} fetches ok ({} failed), p50 {:.2}ms p99 {:.2}ms\n",
            self.shards_start,
            self.shards_peak,
            self.shards_end,
            self.epoch_start,
            self.epoch_end,
            self.fetches_ok,
            self.fetches_attempted,
            self.fetches_failed,
            self.fetch_p50_ns as f64 / 1e6,
            self.fetch_p99_ns as f64 / 1e6,
        );
        out.push_str(&format!(
            "migration: {} keys in (joins), {} keys drained (retires), {} run rewrites ({} settle), {} client ring syncs\n",
            self.migrated_keys,
            self.drained_keys,
            self.run_rewrites,
            self.settle_rewrites,
            self.client_ring_syncs,
        ));
        if self.violations.is_empty() {
            out.push_str("all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION {v}\n"));
            }
        }
        out
    }
}

struct ScaleOutcome {
    ok: u64,
    failed: u64,
    latencies_ns: Vec<u64>,
    mismatches: Vec<String>,
    ring_syncs: u64,
}

fn total_rewrites(plane: &MembershipPlane) -> u64 {
    (0..plane.cluster().len())
        .map(|i| plane.cluster().proxy(i).stats().rewrites)
        .sum()
}

/// Runs the grow-then-shrink scenario under concurrent client load.
/// `make_proxy` builds the proxy for each joining shard id (same
/// policy/signer substrate as the seed shards — e.g.
/// `Organization::shard_proxy_named`).
pub fn run_scale(
    plane: &mut MembershipPlane,
    make_proxy: &mut dyn FnMut(u32) -> Arc<Proxy>,
    urls: &[String],
    cfg: &ScaleConfig,
) -> ScaleReport {
    assert!(!urls.is_empty(), "a scale run needs at least one URL");
    let shards_start = plane.cluster().ring().shards().len();
    let epoch_start = plane.cluster().ring().epoch();
    let mut violations: Vec<Violation> = Vec::new();

    // Settle pass: serve every URL once, in-process, on its home shard.
    // This warms the starting shards (so run-phase rewrites measure
    // migration quality, not cold-start cost) and yields the oracle.
    let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
    for url in urls {
        let home = plane.cluster().ring().home(url).unwrap_or(0) as usize;
        let ctx = RequestContext {
            client: "scale-settle".into(),
            principal: cfg.hello.principal.clone(),
            url: url.clone(),
            trace: None,
        };
        let served = match plane
            .cluster()
            .proxy(home)
            .handle_request_detailed(url, &ctx)
        {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    invariant: "scale-settle",
                    detail: format!("settle fetch of {url} on shard {home} failed: {e}"),
                });
                continue;
            }
        };
        let payload = match &cfg.signer {
            Some(s) => match s.detach(&served.bytes) {
                (SignatureCheck::Valid, Some(p)) => p.to_vec(),
                other => {
                    violations.push(Violation {
                        invariant: "scale-settle",
                        detail: format!("settle signature on {url}: {:?}", other.0),
                    });
                    continue;
                }
            },
            None => served.bytes.to_vec(),
        };
        oracle.insert(url.clone(), payload);
    }
    let settle_rewrites = total_rewrites(plane);

    let start_addrs: Vec<std::net::SocketAddr> = plane.cluster().addrs()[..shards_start].to_vec();
    let start_ring = plane.cluster().ring().clone();
    let stop = AtomicBool::new(false);
    let mut client_cfg = cfg.client_config;
    client_cfg.ring_sync = true;

    let mut outcomes: Vec<ScaleOutcome> = Vec::new();
    let mut shards_peak = shards_start;
    let mut epoch_end = epoch_start;
    let mut migrated_keys = 0u64;
    let mut drained_keys = 0u64;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let start_addrs = start_addrs.clone();
                let start_ring = start_ring.clone();
                let oracle = &oracle;
                let stop = &stop;
                scope.spawn(move || {
                    let hello = Hello {
                        user: format!("{}{c}", cfg.hello.user),
                        ..cfg.hello.clone()
                    };
                    let mut provider = ClusterClassProvider::new(
                        start_addrs,
                        start_ring,
                        hello,
                        cfg.signer.clone(),
                        client_cfg,
                    );
                    let mut order: Vec<usize> = (0..urls.len()).collect();
                    let mut rng = SimRng::derive(cfg.seed, 0x5CA1E + c as u64);
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.next_below(i as u64 + 1) as usize);
                    }
                    let mut outcome = ScaleOutcome {
                        ok: 0,
                        failed: 0,
                        latencies_ns: Vec::new(),
                        mismatches: Vec::new(),
                        ring_syncs: 0,
                    };
                    // Passes run until the driver finishes its
                    // transitions, plus one final pass over the settled
                    // end-state ring; every pass boundary re-syncs the
                    // ring, which is how epoch adoption mid-flight gets
                    // exercised.
                    let mut final_pass_done = false;
                    loop {
                        let stopping = stop.load(Ordering::Acquire);
                        for (j, &u) in order.iter().enumerate() {
                            let url = &urls[u];
                            let started = Instant::now();
                            match provider.fetch(url) {
                                Ok((bytes, _)) => {
                                    outcome.ok += 1;
                                    outcome
                                        .latencies_ns
                                        .push(started.elapsed().as_nanos() as u64);
                                    if bytes != oracle[url] {
                                        outcome.mismatches.push(format!(
                                            "client {c} fetch {j} of {url}: payload diverged"
                                        ));
                                    }
                                }
                                Err(_) => outcome.failed += 1,
                            }
                        }
                        if provider.sync_ring() {
                            outcome.ring_syncs += 1;
                        }
                        if stopping {
                            if final_pass_done {
                                break;
                            }
                            final_pass_done = true;
                        }
                    }
                    provider.close();
                    outcome
                })
            })
            .collect();

        // The driver runs on this thread: grow, then shrink, with load
        // overlapping every transition.
        std::thread::sleep(cfg.transition_pause);
        while plane.cluster().ring().shards().len() < cfg.grow_to {
            let id = plane.cluster().len() as u32;
            let proxy = make_proxy(id);
            match plane.join(proxy) {
                Ok(report) => {
                    migrated_keys += report.migration.keys;
                    if !report.migration.complete {
                        violations.push(Violation {
                            invariant: "scale-join",
                            detail: format!(
                                "shard {} joined with an incomplete migration (failed sources {:?})",
                                report.shard, report.failed_sources
                            ),
                        });
                    }
                }
                Err(e) => {
                    violations.push(Violation {
                        invariant: "scale-join",
                        detail: format!("join of shard {id} failed: {e}"),
                    });
                    break;
                }
            }
            std::thread::sleep(cfg.transition_pause);
        }
        shards_peak = plane.cluster().ring().shards().len();

        let members: Vec<u32> = plane.cluster().ring().shards().to_vec();
        for s in members {
            if cfg.keep.contains(&s) {
                continue;
            }
            let report = plane.retire(s);
            drained_keys += report.drained.keys;
            if !report.drain_ok {
                violations.push(Violation {
                    invariant: "scale-retire",
                    detail: format!("shard {s} retired without a complete drain"),
                });
            }
            std::thread::sleep(cfg.transition_pause);
        }
        epoch_end = plane.cluster().ring().epoch();
        stop.store(true, Ordering::Release);

        for h in handles {
            match h.join() {
                Ok(o) => outcomes.push(o),
                Err(_) => violations.push(Violation {
                    invariant: "zero-failed-clients-across-epoch-change",
                    detail: "a client panicked".into(),
                }),
            }
        }
    });

    // --- zero-failed-clients-across-epoch-change ------------------------
    let fetches_ok: u64 = outcomes.iter().map(|o| o.ok).sum();
    let fetches_failed: u64 = outcomes.iter().map(|o| o.failed).sum();
    if fetches_failed > 0 {
        violations.push(Violation {
            invariant: "zero-failed-clients-across-epoch-change",
            detail: format!("{fetches_failed} fetches failed during the scale dance"),
        });
    }

    // --- payload-matches-oracle -----------------------------------------
    for o in &outcomes {
        for m in &o.mismatches {
            violations.push(Violation {
                invariant: "payload-matches-oracle",
                detail: m.clone(),
            });
        }
    }

    // --- bounded-re-rewrites --------------------------------------------
    // Every URL was rewritten once in the settle pass. Live migration
    // moved those rewrites with the keys, so the scale dance may
    // re-rewrite at most |urls| classes plus one racing fetch per
    // transition (the ring is published before the last chunk lands, so
    // a client can reach a key's new home just ahead of its migrated
    // copy) — never per-transition multiples of the moved set, which is
    // the signature of migration not carrying the cache at all.
    let transitions = epoch_end.saturating_sub(epoch_start);
    let run_rewrites = total_rewrites(plane).saturating_sub(settle_rewrites);
    if run_rewrites > urls.len() as u64 + transitions {
        violations.push(Violation {
            invariant: "bounded-re-rewrites",
            detail: format!(
                "{} re-rewrites for {} urls — migration is not carrying the cache",
                run_rewrites,
                urls.len()
            ),
        });
    }

    // --- epoch-advances --------------------------------------------------
    if epoch_end <= epoch_start {
        violations.push(Violation {
            invariant: "epoch-advances",
            detail: format!("epoch went {epoch_start} → {epoch_end} across the scale dance"),
        });
    }

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * p).round() as usize]
    };

    ScaleReport {
        seed: cfg.seed,
        shards_start,
        shards_peak,
        shards_end: plane.cluster().ring().shards().len(),
        epoch_start,
        epoch_end,
        fetches_attempted: fetches_ok + fetches_failed,
        fetches_ok,
        fetches_failed,
        fetch_p50_ns: pct(0.50),
        fetch_p99_ns: pct(0.99),
        settle_rewrites,
        run_rewrites,
        migrated_keys,
        drained_keys,
        client_ring_syncs: outcomes.iter().map(|o| o.ring_syncs).sum(),
        violations,
    }
}
