//! `dvm-chaos`: a deterministic fault-injection harness for the DVM's
//! network plane.
//!
//! The paper's proxy architecture puts every service behind the
//! network; this crate is how the reproduction earns the right to claim
//! the stack *survives* the network. Three pieces:
//!
//! - [`schedule`] — a seeded, scripted fault schedule with a textual
//!   grammar (`"<corrupt@p0.05 reset@n40 stall:200ms@once3"`). Every
//!   probabilistic decision draws from a [`dvm_netsim::SimRng`] stream
//!   derived from `(seed, connection, direction)`, so a schedule's fault
//!   placement is a pure function of one `u64` — replayable by pasting
//!   a seed, never by rerunning and hoping.
//! - [`link`] — [`ChaosLink`], a byte-level TCP man-in-the-middle that
//!   reassembles wire frames and injects the schedule: connection
//!   resets, half-closes, stalls, bounded delays, byte corruption,
//!   mid-frame truncation, bandwidth throttling.
//! - [`runner`] — [`ChaosRunner`], which drives M concurrent clients
//!   against a K-shard [`dvm_cluster::ProxyCluster`] through per-shard
//!   links (plus scheduled shard kills) and then checks named
//!   invariants: delivered payloads byte-match a fault-free oracle,
//!   every failure is a typed error, audit events are conserved,
//!   telemetry counters conserve, and circuit-breaker transition
//!   counters describe a realizable history. A failing run prints one
//!   `CHAOS REPLAY:` line with everything needed to reproduce it.
//!   [`ChaosRunner::run_restart`] extends the harness across a process
//!   lifetime: a faulted life over persistent shards, an unflushed
//!   "crash", and a warm second life checked against two more
//!   invariants (`warm-restart-serves-without-re-rewrite`,
//!   `no-post-recovery-corruption`).
//!
//! The in-server [`dvm_net::FaultPlan`] and this crate compose: the
//! plan injects faults *inside* the server (drops, delays, corrupt or
//! truncated replies at the source), the link injects them *on the
//! wire*, and the same invariants must hold under both.

pub mod brownout;
pub mod link;
pub mod runner;
pub mod scale;
pub mod schedule;

pub use brownout::{BrownoutConfig, BrownoutReport};
pub use link::{ChaosLink, FaultEvent, LinkStats};
pub use runner::{
    oracle_payloads, ChaosReport, ChaosRunner, RestartReport, RunnerConfig, ShardKill, Violation,
};
pub use scale::{run_scale, ScaleConfig, ScaleReport};
pub use schedule::{
    ChaosFault, ChaosRule, ChaosSchedule, Dir, FaultState, ParseError, Placement, Trigger,
};
