//! Chaos schedules: which faults hit which frames, as a pure function
//! of one `u64` seed.
//!
//! A [`ChaosSchedule`] is an ordered list of [`ChaosRule`]s, each pairing
//! a [`ChaosFault`] with a [`Trigger`] and a [`Dir`]ection filter. The
//! schedule has a textual grammar (see [`ChaosSchedule::parse`]) that
//! round-trips through `Display`, so a failing run can print the exact
//! schedule needed to replay it.
//!
//! Determinism is the whole point: every probabilistic trigger draws
//! from a [`SimRng`] stream derived from `(seed, connection, direction)`
//! and advanced exactly once per `(frame, rule)` pair, so fault
//! placement is a pure function of the seed and the per-connection frame
//! sequence — independent of thread scheduling, socket timing, or how
//! other connections interleave.

use std::fmt;
use std::time::Duration;

use dvm_netsim::SimRng;

/// One injectable fault at the byte/frame level of the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Abruptly close both directions of the connection (the frame being
    /// processed is discarded, not forwarded).
    Reset,
    /// Forward the frame, then shut down the write side toward the
    /// receiver — the TCP half-close case.
    HalfClose,
    /// Freeze this direction of the link for the given milliseconds
    /// before forwarding (read/write stall).
    Stall(u64),
    /// Bounded extra latency: sleep this many milliseconds, then forward
    /// normally.
    Delay(u64),
    /// Flip one byte of the frame body before forwarding. The offset is
    /// drawn deterministically and biased into the payload region, so
    /// corruption exercises signature verification rather than only the
    /// frame grammar.
    Corrupt,
    /// Forward only the first `n` bytes of the encoded frame, then
    /// reset: a truncation mid-frame.
    Truncate(usize),
    /// Cap this direction's bandwidth at the given bytes/second while
    /// forwarding this frame (a pacing sleep sized to the frame).
    Throttle(u64),
}

impl ChaosFault {
    /// A short stable name for stats and logs.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::Reset => "reset",
            ChaosFault::HalfClose => "halfclose",
            ChaosFault::Stall(_) => "stall",
            ChaosFault::Delay(_) => "delay",
            ChaosFault::Corrupt => "corrupt",
            ChaosFault::Truncate(_) => "trunc",
            ChaosFault::Throttle(_) => "throttle",
        }
    }
}

/// When a rule fires, as a function of the 1-based frame index on one
/// `(connection, direction)` stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every frame.
    Always,
    /// Every `n`-th frame.
    EveryNth(u64),
    /// Exactly the `n`-th frame.
    Once(u64),
    /// With probability `p`, drawn from the stream's seeded generator
    /// (one draw per frame per rule, fired or not).
    Prob(f64),
}

/// Which direction of the link a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server bytes only.
    ToServer,
    /// Server → client bytes only.
    ToClient,
    /// Both directions.
    Both,
}

impl Dir {
    fn matches(self, concrete: Dir) -> bool {
        self == Dir::Both || self == concrete
    }
}

/// One schedule entry: a fault, when it fires, and on which direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRule {
    /// The fault to inject.
    pub fault: ChaosFault,
    /// When it fires.
    pub trigger: Trigger,
    /// Which direction it applies to.
    pub dir: Dir,
}

/// An ordered fault schedule. See the module docs for semantics and
/// [`ChaosSchedule::parse`] for the grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    /// The rules, applied in order to every frame.
    pub rules: Vec<ChaosRule>,
}

/// A schedule string that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending token.
    pub token: String,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad schedule token {:?}: {}", self.token, self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err(token: &str, detail: impl Into<String>) -> ParseError {
    ParseError {
        token: token.to_owned(),
        detail: detail.into(),
    }
}

impl ChaosSchedule {
    /// Parses the schedule grammar: whitespace-separated rules, each
    ///
    /// ```text
    /// rule    := [dir] fault ['@' trigger]
    /// dir     := '>'              client→server only
    ///          | '<'              server→client only      (default: both)
    /// fault   := 'reset' | 'halfclose' | 'corrupt'
    ///          | 'stall:'  ms 'ms'
    ///          | 'delay:'  ms 'ms'
    ///          | 'trunc:'  bytes
    ///          | 'throttle:' bytes_per_sec
    /// trigger := 'p' probability   e.g. p0.05  (per frame)
    ///          | 'n' k             every k-th frame
    ///          | 'once' k          exactly frame k         (default: always)
    /// ```
    ///
    /// Example: `"<corrupt@p0.05 reset@n40 stall:200ms@once3"`.
    pub fn parse(text: &str) -> Result<ChaosSchedule, ParseError> {
        let mut rules = Vec::new();
        for token in text.split_whitespace() {
            rules.push(parse_rule(token)?);
        }
        Ok(ChaosSchedule { rules })
    }

    /// Builder: appends a rule.
    pub fn with(mut self, fault: ChaosFault, trigger: Trigger, dir: Dir) -> Self {
        self.rules.push(ChaosRule {
            fault,
            trigger,
            dir,
        });
        self
    }

    /// The complete fault placement for `conns` connections of
    /// `frames` frames each, in both directions, under `seed` — a pure
    /// function, used both to preview a run and to assert that two runs
    /// of the same `(seed, schedule)` place every fault identically.
    pub fn placements(&self, seed: u64, conns: u64, frames: u64) -> Vec<Placement> {
        let mut out = Vec::new();
        for conn in 0..conns {
            for dir in [Dir::ToServer, Dir::ToClient] {
                let mut state = FaultState::new(self, seed, conn, dir);
                for frame in 1..=frames {
                    for fault in state.decide(frame) {
                        out.push(Placement {
                            conn,
                            dir,
                            frame,
                            fault,
                        });
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for ChaosSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match r.dir {
                Dir::ToServer => f.write_str(">")?,
                Dir::ToClient => f.write_str("<")?,
                Dir::Both => {}
            }
            match r.fault {
                ChaosFault::Reset => f.write_str("reset")?,
                ChaosFault::HalfClose => f.write_str("halfclose")?,
                ChaosFault::Corrupt => f.write_str("corrupt")?,
                ChaosFault::Stall(ms) => write!(f, "stall:{ms}ms")?,
                ChaosFault::Delay(ms) => write!(f, "delay:{ms}ms")?,
                ChaosFault::Truncate(n) => write!(f, "trunc:{n}")?,
                ChaosFault::Throttle(bps) => write!(f, "throttle:{bps}")?,
            }
            match r.trigger {
                Trigger::Always => {}
                Trigger::EveryNth(n) => write!(f, "@n{n}")?,
                Trigger::Once(n) => write!(f, "@once{n}")?,
                Trigger::Prob(p) => write!(f, "@p{p}")?,
            }
        }
        Ok(())
    }
}

fn parse_rule(token: &str) -> Result<ChaosRule, ParseError> {
    let (dir, rest) = match token.as_bytes().first() {
        Some(b'>') => (Dir::ToServer, &token[1..]),
        Some(b'<') => (Dir::ToClient, &token[1..]),
        _ => (Dir::Both, token),
    };
    let (fault_text, trigger_text) = match rest.split_once('@') {
        Some((f, t)) => (f, Some(t)),
        None => (rest, None),
    };
    let fault = parse_fault(token, fault_text)?;
    let trigger = match trigger_text {
        None => Trigger::Always,
        Some(t) => parse_trigger(token, t)?,
    };
    Ok(ChaosRule {
        fault,
        trigger,
        dir,
    })
}

fn parse_fault(token: &str, text: &str) -> Result<ChaosFault, ParseError> {
    if let Some((name, arg)) = text.split_once(':') {
        return match name {
            "stall" | "delay" => {
                let ms = arg
                    .strip_suffix("ms")
                    .ok_or_else(|| err(token, "duration must end in `ms`"))?
                    .parse::<u64>()
                    .map_err(|_| err(token, "bad millisecond count"))?;
                Ok(if name == "stall" {
                    ChaosFault::Stall(ms)
                } else {
                    ChaosFault::Delay(ms)
                })
            }
            "trunc" => {
                let n = arg
                    .parse::<usize>()
                    .map_err(|_| err(token, "bad byte count"))?;
                Ok(ChaosFault::Truncate(n))
            }
            "throttle" => {
                let bps = arg
                    .parse::<u64>()
                    .map_err(|_| err(token, "bad bytes/sec"))?;
                if bps == 0 {
                    return Err(err(token, "throttle needs a non-zero rate"));
                }
                Ok(ChaosFault::Throttle(bps))
            }
            other => Err(err(token, format!("unknown fault `{other}`"))),
        };
    }
    match text {
        "reset" => Ok(ChaosFault::Reset),
        "halfclose" => Ok(ChaosFault::HalfClose),
        "corrupt" => Ok(ChaosFault::Corrupt),
        other => Err(err(token, format!("unknown fault `{other}`"))),
    }
}

fn parse_trigger(token: &str, text: &str) -> Result<Trigger, ParseError> {
    if let Some(k) = text.strip_prefix("once") {
        let n = k
            .parse::<u64>()
            .map_err(|_| err(token, "bad frame index"))?;
        if n == 0 {
            return Err(err(token, "frame indices are 1-based"));
        }
        return Ok(Trigger::Once(n));
    }
    if let Some(k) = text.strip_prefix('n') {
        let n = k
            .parse::<u64>()
            .map_err(|_| err(token, "bad frame stride"))?;
        if n == 0 {
            return Err(err(token, "stride must be non-zero"));
        }
        return Ok(Trigger::EveryNth(n));
    }
    if let Some(p) = text.strip_prefix('p') {
        let p = p
            .parse::<f64>()
            .map_err(|_| err(token, "bad probability"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(err(token, "probability outside [0, 1]"));
        }
        return Ok(Trigger::Prob(p));
    }
    Err(err(token, format!("unknown trigger `{text}`")))
}

/// One placed fault: connection `conn`, direction `dir`, frame `frame`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// 0-based connection index on the link.
    pub conn: u64,
    /// Concrete direction (never [`Dir::Both`]).
    pub dir: Dir,
    /// 1-based frame index on that `(conn, dir)` stream.
    pub frame: u64,
    /// The fault that fires there.
    pub fault: ChaosFault,
}

/// The per-`(connection, direction)` decision engine: owns the stream's
/// seeded generator and answers "which faults hit frame `i`?". The
/// runtime interposer and [`ChaosSchedule::placements`] share this type,
/// so what a run *does* and what the pure preview *says* cannot drift.
#[derive(Debug, Clone)]
pub struct FaultState {
    rules: Vec<ChaosRule>,
    rng: SimRng,
    /// Auxiliary draws (corruption offsets) come from their own stream
    /// so they cannot shift the trigger stream: `decide` must agree with
    /// [`ChaosSchedule::placements`] whether or not any fault's payload
    /// parameters were drawn.
    aux: SimRng,
}

/// Stream-index encoding for [`SimRng::derive`]: connection index in the
/// high bits, direction in bit 0.
fn stream_index(conn: u64, dir: Dir) -> u64 {
    (conn << 1) | u64::from(dir == Dir::ToClient)
}

impl FaultState {
    /// The decision stream for connection `conn`, direction `dir`, under
    /// `seed`. Rules not matching `dir` are dropped up front (they must
    /// not consume random draws meant for the other direction).
    pub fn new(schedule: &ChaosSchedule, seed: u64, conn: u64, dir: Dir) -> FaultState {
        assert!(dir != Dir::Both, "a stream has a concrete direction");
        FaultState {
            rules: schedule
                .rules
                .iter()
                .copied()
                .filter(|r| r.dir.matches(dir))
                .collect(),
            rng: SimRng::derive(seed, stream_index(conn, dir)),
            aux: SimRng::derive(seed, stream_index(conn, dir) | (1 << 63)),
        }
    }

    /// All faults firing on 1-based frame `frame_idx`, in rule order.
    /// Probabilistic rules draw exactly once per call whether or not
    /// they fire, keeping the stream aligned with frame indices.
    pub fn decide(&mut self, frame_idx: u64) -> Vec<ChaosFault> {
        let mut fired = Vec::new();
        for rule in &self.rules {
            let fires = match rule.trigger {
                Trigger::Always => true,
                Trigger::EveryNth(n) => frame_idx.is_multiple_of(n),
                Trigger::Once(n) => frame_idx == n,
                Trigger::Prob(p) => self.rng.next_f64() < p,
            };
            if fires {
                fired.push(rule.fault);
            }
        }
        fired
    }

    /// A deterministic draw in `[0, n)` from the auxiliary stream (used
    /// for corruption offsets, so the flipped byte replays too without
    /// perturbing the trigger stream).
    pub fn draw_below(&mut self, n: u64) -> u64 {
        self.aux.next_below(n)
    }
}

/// Convenience: a [`Duration`] from a schedule's millisecond argument.
pub fn ms(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let text = "<corrupt@p0.05 reset@n40 stall:200ms@once3 >delay:5ms trunc:12@p0.5 throttle:65536 halfclose@once9";
        let parsed = ChaosSchedule::parse(text).unwrap();
        assert_eq!(parsed.rules.len(), 7);
        let printed = parsed.to_string();
        assert_eq!(ChaosSchedule::parse(&printed).unwrap(), parsed);
        assert_eq!(printed, text);
    }

    #[test]
    fn bad_tokens_are_rejected_with_detail() {
        for bad in [
            "explode",
            "stall:20",        // missing ms suffix
            "trunc:x",         // not a number
            "corrupt@q5",      // unknown trigger
            "corrupt@p1.5",    // probability out of range
            "reset@n0",        // zero stride
            "delay:3ms@once0", // 1-based frames
            "throttle:0",      // zero rate
        ] {
            let e = ChaosSchedule::parse(bad).unwrap_err();
            assert_eq!(e.token, bad);
        }
    }

    #[test]
    fn placements_are_a_pure_function_of_the_seed() {
        let schedule = ChaosSchedule::parse("<corrupt@p0.2 reset@p0.1 stall:10ms@n7").unwrap();
        let a = schedule.placements(99, 4, 50);
        let b = schedule.placements(99, 4, 50);
        assert_eq!(a, b, "same seed must place identically");
        assert!(!a.is_empty(), "this schedule places faults at these sizes");
        let c = schedule.placements(100, 4, 50);
        assert_ne!(a, c, "different seed must place differently");
    }

    #[test]
    fn directions_have_independent_streams() {
        let schedule = ChaosSchedule::parse("corrupt@p0.5").unwrap();
        let mut to_server = FaultState::new(&schedule, 1, 0, Dir::ToServer);
        let mut to_client = FaultState::new(&schedule, 1, 0, Dir::ToClient);
        let a: Vec<bool> = (1..=64).map(|i| !to_server.decide(i).is_empty()).collect();
        let b: Vec<bool> = (1..=64).map(|i| !to_client.decide(i).is_empty()).collect();
        assert_ne!(a, b, "directions must not share a stream");
    }

    #[test]
    fn direction_filter_drops_rules_without_consuming_draws() {
        // A ToServer-only probabilistic rule ahead of a shared one must
        // not shift the shared rule's draws on the ToClient stream.
        let with_filtered = ChaosSchedule::parse(">reset@p0.5 corrupt@p0.3").unwrap();
        let alone = ChaosSchedule::parse("corrupt@p0.3").unwrap();
        let mut a = FaultState::new(&with_filtered, 7, 2, Dir::ToClient);
        let mut b = FaultState::new(&alone, 7, 2, Dir::ToClient);
        for i in 1..=128 {
            assert_eq!(a.decide(i), b.decide(i), "frame {i}");
        }
    }

    #[test]
    fn deterministic_triggers_fire_exactly_where_declared() {
        let schedule = ChaosSchedule::parse("reset@once5 corrupt@n3").unwrap();
        let mut s = FaultState::new(&schedule, 0, 0, Dir::ToServer);
        for i in 1..=12 {
            let fired = s.decide(i);
            assert_eq!(fired.contains(&ChaosFault::Reset), i == 5, "frame {i}");
            assert_eq!(
                fired.contains(&ChaosFault::Corrupt),
                i % 3 == 0,
                "frame {i}"
            );
        }
    }
}
