//! `ChaosRunner`: M concurrent clients against a K-shard cluster, every
//! byte funneled through per-shard [`ChaosLink`]s, with the run's
//! outcome checked against a fault-free oracle and a set of named
//! invariants.
//!
//! The runner's contract is the paper's safety argument under hostile
//! networks: whatever the transport does — resets, stalls, corruption,
//! truncation — a client either receives the exact bytes the organization
//! proxy would serve on a perfect network, or a *typed* error. Nothing
//! in between. A failed invariant produces a [`Violation`] carrying
//! enough context to replay the run from its seed.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ProxyCluster};
use dvm_monitor::{AuditSink, EventKind, SiteId};
use dvm_net::{Hello, ServerStats};
use dvm_netsim::SimRng;
use dvm_proxy::{Proxy, RequestContext, ServedFrom, SignatureCheck, Signer};
use dvm_telemetry::MetricsSnapshot;

use crate::link::{ChaosLink, LinkStats};
use crate::schedule::ChaosSchedule;

/// Kill shard `shard` roughly `after` into the run.
#[derive(Debug, Clone, Copy)]
pub struct ShardKill {
    /// Shard id to kill.
    pub shard: usize,
    /// Delay from run start.
    pub after: Duration,
}

/// Everything a chaos run needs besides the cluster itself.
#[derive(Clone)]
pub struct RunnerConfig {
    /// Master seed: link fault placement, client URL orders, and (via
    /// the jitter seeds) client backoff all derive from it.
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Fetches each client performs.
    pub fetches_per_client: usize,
    /// The fault schedule every link runs (per-link streams are
    /// decorrelated by shard id).
    pub schedule: ChaosSchedule,
    /// Cluster-client tuning shared by every client.
    pub client_config: ClusterClientConfig,
    /// Signature verification key; `None` disables verification (used
    /// deliberately to prove the harness catches corrupt deliveries).
    pub signer: Option<Signer>,
    /// Identity template; each client gets `user = "<user><i>"`.
    pub hello: Hello,
    /// Scheduled shard kills.
    pub kills: Vec<ShardKill>,
    /// Whether clients stream audit events through their link.
    pub audit: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            seed: 0,
            clients: 4,
            fetches_per_client: 8,
            schedule: ChaosSchedule::default(),
            client_config: ClusterClientConfig::default(),
            signer: None,
            hello: Hello {
                user: "chaos".into(),
                principal: "applets".into(),
                ..Hello::default()
            },
            kills: Vec::new(),
            audit: true,
        }
    }
}

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant's stable name (e.g. `payload-matches-oracle`).
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Master seed of the run.
    pub seed: u64,
    /// The schedule, in replayable grammar form.
    pub schedule: String,
    /// Client count.
    pub clients: usize,
    /// Shard count.
    pub shards: usize,
    /// Fetches attempted across all clients.
    pub fetches_attempted: u64,
    /// Fetches that delivered verified bytes.
    pub fetches_ok: u64,
    /// Fetches that failed with a typed error.
    pub fetches_failed: u64,
    /// Median successful-fetch latency in nanoseconds.
    pub fetch_p50_ns: u64,
    /// 99th-percentile successful-fetch latency in nanoseconds.
    pub fetch_p99_ns: u64,
    /// Per-link (== per-shard) interposer stats.
    pub link_stats: Vec<LinkStats>,
    /// Audit events the clients emitted / delivered / dropped.
    pub audit_emitted: u64,
    /// Audit events written to a socket.
    pub audit_sent: u64,
    /// Audit events abandoned after reconnect failure.
    pub audit_dropped: u64,
    /// Successful fetches the proxies satisfied by rewriting.
    pub serves_rewritten: u64,
    /// Successful fetches served from a shard's memory cache tier.
    pub serves_memory: u64,
    /// Successful fetches served from a shard's disk cache tier.
    pub serves_disk: u64,
    /// Successful fetches served via peer cache-fill.
    pub serves_peer: u64,
    /// Every invariant failure (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total faults the links injected.
    pub fn faults_injected(&self) -> u64 {
        self.link_stats.iter().map(|s| s.faults_total()).sum()
    }

    /// The one line to paste into a replay: everything that determines
    /// fault placement.
    pub fn replay_line(&self) -> String {
        format!(
            "CHAOS REPLAY: seed={} schedule={:?} clients={} shards={}",
            self.seed, self.schedule, self.clients, self.shards
        )
    }

    /// A human summary; violations come with the replay line attached.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos run: {}/{} fetches ok ({} typed failures), {} faults injected, p50 {:.2}ms p99 {:.2}ms\n",
            self.fetches_ok,
            self.fetches_attempted,
            self.fetches_failed,
            self.faults_injected(),
            self.fetch_p50_ns as f64 / 1e6,
            self.fetch_p99_ns as f64 / 1e6,
        );
        out.push_str(&format!(
            "audit: {} emitted, {} sent, {} dropped\n",
            self.audit_emitted, self.audit_sent, self.audit_dropped
        ));
        out.push_str(&format!(
            "served: {} rewritten, {} memory, {} disk, {} peer\n",
            self.serves_rewritten, self.serves_memory, self.serves_disk, self.serves_peer
        ));
        if self.violations.is_empty() {
            out.push_str("all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION {v}\n"));
            }
            out.push_str(&self.replay_line());
            out.push('\n');
        }
        out
    }
}

/// What one client thread brings home.
struct ClientOutcome {
    ok: u64,
    failed: u64,
    latencies_ns: Vec<u64>,
    payload_mismatches: Vec<String>,
    audit_emitted: u64,
    audit_sent: u64,
    audit_dropped: u64,
    serves_rewritten: u64,
    serves_memory: u64,
    serves_disk: u64,
    serves_peer: u64,
    snapshot: MetricsSnapshot,
}

/// The fault-free reference: what the organization's proxy serves for
/// each URL on a perfect network, post-verification. Any payload a
/// client accepts during the chaos run must be byte-identical to this.
pub fn oracle_payloads(
    proxy: &Proxy,
    signer: &Option<Signer>,
    hello: &Hello,
    urls: &[String],
) -> Result<HashMap<String, Vec<u8>>, String> {
    let mut oracle = HashMap::new();
    for url in urls {
        let ctx = RequestContext {
            client: "chaos-oracle".into(),
            principal: hello.principal.clone(),
            url: url.clone(),
            trace: None,
        };
        let served = proxy
            .handle_request_detailed(url, &ctx)
            .map_err(|e| format!("oracle fetch of {url} failed: {e}"))?;
        let payload = match signer {
            Some(s) => match s.detach(&served.bytes) {
                (SignatureCheck::Valid, Some(p)) => p.to_vec(),
                other => return Err(format!("oracle signature on {url}: {:?}", other.0)),
            },
            None => served.bytes.to_vec(),
        };
        oracle.insert(url.clone(), payload);
    }
    Ok(oracle)
}

/// The outcome of a kill-then-restart scenario: one faulted run, a
/// simulated crash (servers die, stores are *not* flushed), a rebuild
/// over the same data directories, and one clean run that must be
/// served warm.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// The faulted first life.
    pub first: ChaosReport,
    /// The clean second life over the recovered stores.
    pub second: ChaosReport,
    /// Records the restarted shards recovered from their logs.
    pub recovered_records: u64,
    /// Restart-specific invariant failures (the per-phase reports carry
    /// their own).
    pub violations: Vec<Violation>,
}

impl RestartReport {
    /// True when both phases and every restart invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.first.ok() && self.second.ok()
    }

    /// A human summary of both lives and the restart verdict.
    pub fn render(&self) -> String {
        let mut out = String::from("--- first life (faulted) ---\n");
        out.push_str(&self.first.render());
        out.push_str(&format!(
            "--- restart: {} records recovered ---\n",
            self.recovered_records
        ));
        out.push_str("--- second life (clean, warm) ---\n");
        out.push_str(&self.second.render());
        if self.violations.is_empty() {
            out.push_str("restart invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION {v}\n"));
            }
        }
        out
    }
}

/// The harness. See the module docs; [`ChaosRunner::run`] is the whole
/// API for single-life runs, [`ChaosRunner::run_restart`] for
/// crash-recovery scenarios.
pub struct ChaosRunner;

/// A report for a run that never got off the ground.
fn empty_report(cfg: &RunnerConfig, shards: usize, violations: Vec<Violation>) -> ChaosReport {
    ChaosReport {
        seed: cfg.seed,
        schedule: cfg.schedule.to_string(),
        clients: cfg.clients,
        shards,
        fetches_attempted: 0,
        fetches_ok: 0,
        fetches_failed: 0,
        fetch_p50_ns: 0,
        fetch_p99_ns: 0,
        link_stats: Vec::new(),
        audit_emitted: 0,
        audit_sent: 0,
        audit_dropped: 0,
        serves_rewritten: 0,
        serves_memory: 0,
        serves_disk: 0,
        serves_peer: 0,
        violations,
    }
}

impl ChaosRunner {
    /// Runs `cfg.clients` concurrent clients fetching `urls` through
    /// per-shard [`ChaosLink`]s under `cfg.schedule`, applying scheduled
    /// shard kills, then checks every invariant and reports.
    pub fn run(cluster: &mut ProxyCluster, urls: &[String], cfg: &RunnerConfig) -> ChaosReport {
        Self::run_inner(cluster, urls, cfg, None)
    }

    /// A full chaos run, optionally against a pre-computed oracle. The
    /// restart scenario passes one in so the second life's proxies see
    /// no traffic besides the clients' — their rewrite counters then
    /// measure exactly what the warm-restart invariant asserts on.
    fn run_inner(
        cluster: &mut ProxyCluster,
        urls: &[String],
        cfg: &RunnerConfig,
        oracle_override: Option<&HashMap<String, Vec<u8>>>,
    ) -> ChaosReport {
        let shards = cluster.len();
        assert!(!urls.is_empty(), "a chaos run needs at least one URL");

        let mut violations: Vec<Violation> = Vec::new();

        // The oracle is computed before any fault can fire, straight off
        // shard 0's proxy (rewriting is deterministic and signing uses
        // the organization key, so every shard serves these exact bytes).
        let oracle_owned;
        let oracle: &HashMap<String, Vec<u8>> = match oracle_override {
            Some(o) => o,
            None => match oracle_payloads(cluster.proxy(0), &cfg.signer, &cfg.hello, urls) {
                Ok(o) => {
                    oracle_owned = o;
                    &oracle_owned
                }
                Err(e) => {
                    return empty_report(
                        cfg,
                        shards,
                        vec![Violation {
                            invariant: "oracle",
                            detail: e,
                        }],
                    )
                }
            },
        };

        // Hold every shard's telemetry plane now: the Arcs stay valid
        // after a kill, so conservation can still be checked for shards
        // that died mid-run.
        let shard_telemetry: Vec<_> = (0..shards)
            .map(|i| {
                cluster
                    .shard_telemetry(i)
                    .expect("all shards alive at start")
            })
            .collect();

        // One interposer per shard, each with a decorrelated seed.
        let mut links = Vec::with_capacity(shards);
        let mut link_addrs: Vec<SocketAddr> = Vec::with_capacity(shards);
        for (i, &upstream) in cluster.addrs().to_vec().iter().enumerate() {
            let link_seed = SimRng::derive(cfg.seed, 0x1000 + i as u64).next_u64();
            let link = ChaosLink::start(upstream, cfg.schedule.clone(), link_seed)
                .expect("bind chaos link");
            link_addrs.push(link.addr());
            links.push(link);
        }

        let ring = cluster.ring().clone();
        let killed_stats: Mutex<Vec<(usize, ServerStats)>> = Mutex::new(Vec::new());
        let cluster_mx = Mutex::new(cluster);

        let mut outcomes: Vec<Option<ClientOutcome>> = Vec::with_capacity(cfg.clients);
        let mut panics: Vec<String> = Vec::new();

        std::thread::scope(|scope| {
            let killer = scope.spawn(|| {
                let start = Instant::now();
                let mut kills = cfg.kills.clone();
                kills.sort_by_key(|k| k.after);
                for kill in kills {
                    let elapsed = start.elapsed();
                    if kill.after > elapsed {
                        std::thread::sleep(kill.after - elapsed);
                    }
                    if let Some(stats) = cluster_mx.lock().kill_shard(kill.shard) {
                        killed_stats.lock().push((kill.shard, stats));
                    }
                }
            });

            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    let link_addrs = link_addrs.clone();
                    let ring = ring.clone();
                    scope.spawn(move || run_client(c, cfg, urls, oracle, link_addrs, ring, shards))
                })
                .collect();
            for (c, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => outcomes.push(Some(outcome)),
                    Err(panic) => {
                        outcomes.push(None);
                        panics.push(format!("client {c} panicked: {}", panic_message(&panic)));
                    }
                }
            }
            let _ = killer.join();
        });

        // --- failures-are-typed -----------------------------------------
        // Every failure a client observes must be a typed error surfaced
        // through Result; a panic anywhere in the client stack under
        // network faults is itself the bug this harness exists to catch.
        for p in panics {
            violations.push(Violation {
                invariant: "failures-are-typed",
                detail: p,
            });
        }

        // --- payload-matches-oracle -------------------------------------
        for outcome in outcomes.iter().flatten() {
            for m in &outcome.payload_mismatches {
                violations.push(Violation {
                    invariant: "payload-matches-oracle",
                    detail: m.clone(),
                });
            }
        }

        // --- audit-conservation -----------------------------------------
        // Per client: every emitted event was either written to a socket
        // or counted as dropped, and the drop count is mirrored into the
        // client's telemetry plane. (In-flight loss after a successful
        // write is the server's side of the ledger: received ≤ sent.)
        let mut audit_emitted = 0u64;
        let mut audit_sent = 0u64;
        let mut audit_dropped = 0u64;
        for (c, outcome) in outcomes.iter().enumerate() {
            let Some(o) = outcome else { continue };
            audit_emitted += o.audit_emitted;
            audit_sent += o.audit_sent;
            audit_dropped += o.audit_dropped;
            if o.audit_emitted != o.audit_sent + o.audit_dropped {
                violations.push(Violation {
                    invariant: "audit-conservation",
                    detail: format!(
                        "client {c}: emitted {} != sent {} + dropped {}",
                        o.audit_emitted, o.audit_sent, o.audit_dropped
                    ),
                });
            }
            let counted = o.snapshot.counter("audit_dropped_total");
            if counted != o.audit_dropped {
                violations.push(Violation {
                    invariant: "audit-conservation",
                    detail: format!(
                        "client {c}: audit_dropped_total {} != dropped {}",
                        counted, o.audit_dropped
                    ),
                });
            }
        }

        // --- breaker-consistency ----------------------------------------
        // Per client: the breaker's transition counters must describe a
        // realizable history — a circuit still open was opened; every
        // opened-and-no-longer-open circuit left through half-open or a
        // direct close; never more circuits open than shards exist.
        for (c, outcome) in outcomes.iter().enumerate() {
            let Some(o) = outcome else { continue };
            let opened = o.snapshot.counter("cluster.breaker.opened");
            let half_open = o.snapshot.counter("cluster.breaker.half_open");
            let closed = o.snapshot.counter("cluster.breaker.closed");
            let open_now = o.snapshot.gauge("cluster.breaker.open_now");
            if open_now < 0 || open_now as u64 > shards as u64 {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!("client {c}: open_now {open_now} outside [0, {shards}]"),
                });
            }
            let open_now = open_now.max(0) as u64;
            if open_now > opened {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!("client {c}: open_now {open_now} > opened {opened}"),
                });
            }
            if opened - open_now > half_open + closed {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!(
                        "client {c}: {} circuits left open state but only {} exits recorded",
                        opened - open_now,
                        half_open + closed
                    ),
                });
            }
        }

        // --- telemetry-conservation -------------------------------------
        // Per shard: every served request arrived in at least one frame,
        // whether the shard survived the run or was killed mid-way.
        let cluster = cluster_mx.into_inner();
        let killed: HashMap<usize, ServerStats> = killed_stats.into_inner().into_iter().collect();
        let mut server_audit_received = 0u64;
        for (i, telemetry) in shard_telemetry.iter().enumerate() {
            let stats = match killed.get(&i) {
                Some(s) => *s,
                None => match cluster.shard_stats(i) {
                    Some(s) => s,
                    None => continue,
                },
            };
            server_audit_received += stats.audit_events;
            let snap = telemetry.registry().snapshot();
            let frames_in = snap.counter("net.server.frames_in");
            if frames_in < stats.requests {
                violations.push(Violation {
                    invariant: "telemetry-conservation",
                    detail: format!(
                        "shard {i}: frames_in {} < requests served {}",
                        frames_in, stats.requests
                    ),
                });
            }
            if frames_in > 0 && snap.counter("net.server.bytes_in") == 0 {
                violations.push(Violation {
                    invariant: "telemetry-conservation",
                    detail: format!("shard {i}: {frames_in} frames but zero bytes counted"),
                });
            }
        }
        if server_audit_received > audit_sent {
            violations.push(Violation {
                invariant: "audit-conservation",
                detail: format!(
                    "servers received {server_audit_received} audit events but clients only sent {audit_sent}"
                ),
            });
        }

        let link_stats: Vec<LinkStats> = links.into_iter().map(|l| l.shutdown()).collect();

        let mut latencies: Vec<u64> = outcomes
            .iter()
            .flatten()
            .flat_map(|o| o.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let pct = |p: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx]
        };

        let fetches_ok: u64 = outcomes.iter().flatten().map(|o| o.ok).sum();
        let fetches_failed: u64 = outcomes.iter().flatten().map(|o| o.failed).sum();

        ChaosReport {
            seed: cfg.seed,
            schedule: cfg.schedule.to_string(),
            clients: cfg.clients,
            shards,
            fetches_attempted: fetches_ok + fetches_failed,
            fetches_ok,
            fetches_failed,
            fetch_p50_ns: pct(0.50),
            fetch_p99_ns: pct(0.99),
            link_stats,
            audit_emitted,
            audit_sent,
            audit_dropped,
            serves_rewritten: outcomes.iter().flatten().map(|o| o.serves_rewritten).sum(),
            serves_memory: outcomes.iter().flatten().map(|o| o.serves_memory).sum(),
            serves_disk: outcomes.iter().flatten().map(|o| o.serves_disk).sum(),
            serves_peer: outcomes.iter().flatten().map(|o| o.serves_peer).sum(),
            violations,
        }
    }

    /// The kill-then-restart scenario. `make_cluster` must build a
    /// cluster over a *persistent* data directory and is called twice:
    /// once for the faulted first life, once — over the same
    /// directories — for the clean second life.
    ///
    /// Before any fault fires, every URL is served once in-process on
    /// its home shard, so each home shard's store durably holds the
    /// rewrite (the settle pass also yields the oracle both lives are
    /// checked against). The first life then runs under `cfg` — faults,
    /// kills and all — and "crashes": its servers are shut down and no
    /// store is flushed, so recovery sees exactly what the append path
    /// already made durable. The second life must prove two invariants:
    ///
    /// * `warm-restart-serves-without-re-rewrite` — the restarted
    ///   shards recovered records, at least one client fetch is served
    ///   from the disk tier, and **zero** rewrites happen cluster-wide.
    /// * `no-post-recovery-corruption` — every second-life fetch
    ///   succeeds byte-identical to the oracle, and no shard's store
    ///   reports a rejected disk load or a corrupt read.
    pub fn run_restart<F>(mut make_cluster: F, urls: &[String], cfg: &RunnerConfig) -> RestartReport
    where
        F: FnMut() -> ProxyCluster,
    {
        let mut first_cluster = make_cluster();
        let shards = first_cluster.len();
        let mut violations: Vec<Violation> = Vec::new();

        // Settle pass: deterministic persistence. Routing in-process via
        // the ring puts each rewrite in its home shard's store exactly
        // where ring-routed clients will look for it after the restart.
        let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
        for url in urls {
            let home = first_cluster.ring().home(url).unwrap_or(0) as usize;
            let ctx = RequestContext {
                client: "chaos-restart-settle".into(),
                principal: cfg.hello.principal.clone(),
                url: url.clone(),
                trace: None,
            };
            let served = match first_cluster.proxy(home).handle_request_detailed(url, &ctx) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(Violation {
                        invariant: "restart-settle",
                        detail: format!("settle fetch of {url} on shard {home} failed: {e}"),
                    });
                    continue;
                }
            };
            let payload = match &cfg.signer {
                Some(s) => match s.detach(&served.bytes) {
                    (SignatureCheck::Valid, Some(p)) => p.to_vec(),
                    other => {
                        violations.push(Violation {
                            invariant: "restart-settle",
                            detail: format!("settle signature on {url}: {:?}", other.0),
                        });
                        continue;
                    }
                },
                None => served.bytes.to_vec(),
            };
            oracle.insert(url.clone(), payload);
        }
        if oracle.len() != urls.len() {
            let _ = first_cluster.shutdown();
            return RestartReport {
                first: empty_report(cfg, shards, Vec::new()),
                second: empty_report(cfg, shards, Vec::new()),
                recovered_records: 0,
                violations,
            };
        }

        let first = Self::run_inner(&mut first_cluster, urls, cfg, Some(&oracle));

        // The crash: servers die, stores are dropped *without* a flush.
        // Only what the append path already wrote to the logs survives
        // into the second life.
        let _ = first_cluster.shutdown();

        let mut second_cluster = make_cluster();
        let recovered_records: u64 = (0..second_cluster.len())
            .filter_map(|i| second_cluster.proxy(i).store_stats())
            .map(|s| s.recovered_records)
            .sum();

        // The second life is clean — no faults, no kills, a derived seed
        // so the clients walk different shuffles — and must be warm.
        let mut clean = cfg.clone();
        clean.seed = SimRng::derive(cfg.seed, 0x4000).next_u64();
        clean.schedule = ChaosSchedule::default();
        clean.kills.clear();
        let second = Self::run_inner(&mut second_cluster, urls, &clean, Some(&oracle));

        // --- warm-restart-serves-without-re-rewrite ---------------------
        if recovered_records == 0 {
            violations.push(Violation {
                invariant: "warm-restart-serves-without-re-rewrite",
                detail: "restarted shards recovered zero records — the restart was cold".into(),
            });
        }
        let rewrites: u64 = (0..second_cluster.len())
            .map(|i| second_cluster.proxy(i).stats().rewrites)
            .sum();
        if rewrites > 0 {
            violations.push(Violation {
                invariant: "warm-restart-serves-without-re-rewrite",
                detail: format!("second life re-rewrote {rewrites} classes"),
            });
        }
        if second.serves_disk == 0 {
            violations.push(Violation {
                invariant: "warm-restart-serves-without-re-rewrite",
                detail: "no second-life fetch was served from the disk tier".into(),
            });
        }

        // --- no-post-recovery-corruption --------------------------------
        if second.fetches_failed > 0 {
            violations.push(Violation {
                invariant: "no-post-recovery-corruption",
                detail: format!(
                    "{} second-life fetches failed on a fault-free network",
                    second.fetches_failed
                ),
            });
        }
        for v in &second.violations {
            if v.invariant == "payload-matches-oracle" {
                violations.push(Violation {
                    invariant: "no-post-recovery-corruption",
                    detail: format!("recovered payload diverged: {}", v.detail),
                });
            }
        }
        for i in 0..second_cluster.len() {
            let cache = second_cluster.proxy(i).cache_stats();
            if cache.disk_load_rejects > 0 {
                violations.push(Violation {
                    invariant: "no-post-recovery-corruption",
                    detail: format!(
                        "shard {i} rejected {} disk-tier loads after recovery",
                        cache.disk_load_rejects
                    ),
                });
            }
            if let Some(store) = second_cluster.proxy(i).store_stats() {
                if store.read_corruptions > 0 {
                    violations.push(Violation {
                        invariant: "no-post-recovery-corruption",
                        detail: format!(
                            "shard {i} hit {} corrupt store reads after recovery",
                            store.read_corruptions
                        ),
                    });
                }
            }
        }

        let _ = second_cluster.shutdown();

        RestartReport {
            first,
            second,
            recovered_records,
            violations,
        }
    }
}

/// One client's whole life: connect through the links, fetch a seeded
/// shuffle of the URL list, verify each payload against the oracle,
/// stream audit events, and account for everything.
fn run_client(
    c: usize,
    cfg: &RunnerConfig,
    urls: &[String],
    oracle: &HashMap<String, Vec<u8>>,
    link_addrs: Vec<SocketAddr>,
    ring: dvm_cluster::HashRing,
    shards: usize,
) -> ClientOutcome {
    let hello = Hello {
        user: format!("{}{c}", cfg.hello.user),
        ..cfg.hello.clone()
    };
    let mut provider = ClusterClassProvider::new(
        link_addrs.clone(),
        ring,
        hello.clone(),
        cfg.signer.clone(),
        cfg.client_config,
    );
    let telemetry = provider.telemetry();

    // The audit channel rides a link too (shard chosen round-robin), so
    // faults hit the fire-and-forget path as hard as the request path.
    let mut console = if cfg.audit {
        let mut net = cfg.client_config.net;
        net.jitter_seed = SimRng::derive(cfg.seed, 0x3000 + c as u64).next_u64();
        dvm_net::RemoteConsole::connect(link_addrs[c % shards], hello, net)
            .ok()
            .map(|mut con| {
                con.set_telemetry(telemetry.clone());
                con
            })
    } else {
        None
    };

    // Each client walks its own seeded shuffle of the URL list, so the
    // cluster sees interleaved, non-identical access patterns that are
    // still a pure function of the master seed.
    let mut order: Vec<usize> = (0..urls.len()).collect();
    let mut rng = SimRng::derive(cfg.seed, 0x2000 + c as u64);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.next_below(i as u64 + 1) as usize);
    }

    let mut outcome = ClientOutcome {
        ok: 0,
        failed: 0,
        latencies_ns: Vec::new(),
        payload_mismatches: Vec::new(),
        audit_emitted: 0,
        audit_sent: 0,
        audit_dropped: 0,
        serves_rewritten: 0,
        serves_memory: 0,
        serves_disk: 0,
        serves_peer: 0,
        snapshot: telemetry.registry().snapshot(),
    };

    for j in 0..cfg.fetches_per_client {
        let url = &urls[order[j % order.len()]];
        let started = Instant::now();
        match provider.fetch(url) {
            Ok((bytes, transfer)) => {
                outcome.ok += 1;
                match transfer.served_from {
                    ServedFrom::Rewritten => outcome.serves_rewritten += 1,
                    ServedFrom::MemoryCache => outcome.serves_memory += 1,
                    ServedFrom::DiskCache => outcome.serves_disk += 1,
                    ServedFrom::Peer => outcome.serves_peer += 1,
                }
                outcome
                    .latencies_ns
                    .push(started.elapsed().as_nanos() as u64);
                let expected = &oracle[url];
                if &bytes != expected {
                    outcome.payload_mismatches.push(format!(
                        "client {c} fetch {j} of {url}: {} bytes delivered, oracle has {} ({} bytes differ)",
                        bytes.len(),
                        expected.len(),
                        bytes
                            .iter()
                            .zip(expected.iter())
                            .filter(|(a, b)| a != b)
                            .count(),
                    ));
                }
                if let Some(con) = console.as_mut() {
                    con.record(SiteId(j as i32), EventKind::Event);
                    outcome.audit_emitted += 1;
                }
            }
            // Any Err here is by definition typed (it came through
            // Result); panics are caught at join instead.
            Err(_) => outcome.failed += 1,
        }
    }

    if let Some(mut con) = console.take() {
        outcome.audit_sent = con.sent();
        outcome.audit_dropped = con.dropped();
        con.close();
    }
    provider.close();
    outcome.snapshot = telemetry.registry().snapshot();
    outcome
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}
