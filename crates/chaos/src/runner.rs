//! `ChaosRunner`: M concurrent clients against a K-shard cluster, every
//! byte funneled through per-shard [`ChaosLink`]s, with the run's
//! outcome checked against a fault-free oracle and a set of named
//! invariants.
//!
//! The runner's contract is the paper's safety argument under hostile
//! networks: whatever the transport does — resets, stalls, corruption,
//! truncation — a client either receives the exact bytes the organization
//! proxy would serve on a perfect network, or a *typed* error. Nothing
//! in between. A failed invariant produces a [`Violation`] carrying
//! enough context to replay the run from its seed.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ProxyCluster};
use dvm_monitor::{AuditSink, EventKind, SiteId};
use dvm_net::{Hello, ServerStats};
use dvm_netsim::SimRng;
use dvm_proxy::{Proxy, RequestContext, SignatureCheck, Signer};
use dvm_telemetry::MetricsSnapshot;

use crate::link::{ChaosLink, LinkStats};
use crate::schedule::ChaosSchedule;

/// Kill shard `shard` roughly `after` into the run.
#[derive(Debug, Clone, Copy)]
pub struct ShardKill {
    /// Shard id to kill.
    pub shard: usize,
    /// Delay from run start.
    pub after: Duration,
}

/// Everything a chaos run needs besides the cluster itself.
#[derive(Clone)]
pub struct RunnerConfig {
    /// Master seed: link fault placement, client URL orders, and (via
    /// the jitter seeds) client backoff all derive from it.
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Fetches each client performs.
    pub fetches_per_client: usize,
    /// The fault schedule every link runs (per-link streams are
    /// decorrelated by shard id).
    pub schedule: ChaosSchedule,
    /// Cluster-client tuning shared by every client.
    pub client_config: ClusterClientConfig,
    /// Signature verification key; `None` disables verification (used
    /// deliberately to prove the harness catches corrupt deliveries).
    pub signer: Option<Signer>,
    /// Identity template; each client gets `user = "<user><i>"`.
    pub hello: Hello,
    /// Scheduled shard kills.
    pub kills: Vec<ShardKill>,
    /// Whether clients stream audit events through their link.
    pub audit: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            seed: 0,
            clients: 4,
            fetches_per_client: 8,
            schedule: ChaosSchedule::default(),
            client_config: ClusterClientConfig::default(),
            signer: None,
            hello: Hello {
                user: "chaos".into(),
                principal: "applets".into(),
                ..Hello::default()
            },
            kills: Vec::new(),
            audit: true,
        }
    }
}

/// One failed invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant's stable name (e.g. `payload-matches-oracle`).
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Master seed of the run.
    pub seed: u64,
    /// The schedule, in replayable grammar form.
    pub schedule: String,
    /// Client count.
    pub clients: usize,
    /// Shard count.
    pub shards: usize,
    /// Fetches attempted across all clients.
    pub fetches_attempted: u64,
    /// Fetches that delivered verified bytes.
    pub fetches_ok: u64,
    /// Fetches that failed with a typed error.
    pub fetches_failed: u64,
    /// Median successful-fetch latency in nanoseconds.
    pub fetch_p50_ns: u64,
    /// 99th-percentile successful-fetch latency in nanoseconds.
    pub fetch_p99_ns: u64,
    /// Per-link (== per-shard) interposer stats.
    pub link_stats: Vec<LinkStats>,
    /// Audit events the clients emitted / delivered / dropped.
    pub audit_emitted: u64,
    /// Audit events written to a socket.
    pub audit_sent: u64,
    /// Audit events abandoned after reconnect failure.
    pub audit_dropped: u64,
    /// Every invariant failure (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total faults the links injected.
    pub fn faults_injected(&self) -> u64 {
        self.link_stats.iter().map(|s| s.faults_total()).sum()
    }

    /// The one line to paste into a replay: everything that determines
    /// fault placement.
    pub fn replay_line(&self) -> String {
        format!(
            "CHAOS REPLAY: seed={} schedule={:?} clients={} shards={}",
            self.seed, self.schedule, self.clients, self.shards
        )
    }

    /// A human summary; violations come with the replay line attached.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos run: {}/{} fetches ok ({} typed failures), {} faults injected, p50 {:.2}ms p99 {:.2}ms\n",
            self.fetches_ok,
            self.fetches_attempted,
            self.fetches_failed,
            self.faults_injected(),
            self.fetch_p50_ns as f64 / 1e6,
            self.fetch_p99_ns as f64 / 1e6,
        );
        out.push_str(&format!(
            "audit: {} emitted, {} sent, {} dropped\n",
            self.audit_emitted, self.audit_sent, self.audit_dropped
        ));
        if self.violations.is_empty() {
            out.push_str("all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION {v}\n"));
            }
            out.push_str(&self.replay_line());
            out.push('\n');
        }
        out
    }
}

/// What one client thread brings home.
struct ClientOutcome {
    ok: u64,
    failed: u64,
    latencies_ns: Vec<u64>,
    payload_mismatches: Vec<String>,
    audit_emitted: u64,
    audit_sent: u64,
    audit_dropped: u64,
    snapshot: MetricsSnapshot,
}

/// The fault-free reference: what the organization's proxy serves for
/// each URL on a perfect network, post-verification. Any payload a
/// client accepts during the chaos run must be byte-identical to this.
pub fn oracle_payloads(
    proxy: &Proxy,
    signer: &Option<Signer>,
    hello: &Hello,
    urls: &[String],
) -> Result<HashMap<String, Vec<u8>>, String> {
    let mut oracle = HashMap::new();
    for url in urls {
        let ctx = RequestContext {
            client: "chaos-oracle".into(),
            principal: hello.principal.clone(),
            url: url.clone(),
            trace: None,
        };
        let served = proxy
            .handle_request_detailed(url, &ctx)
            .map_err(|e| format!("oracle fetch of {url} failed: {e}"))?;
        let payload = match signer {
            Some(s) => match s.detach(&served.bytes) {
                (SignatureCheck::Valid, Some(p)) => p.to_vec(),
                other => return Err(format!("oracle signature on {url}: {:?}", other.0)),
            },
            None => served.bytes,
        };
        oracle.insert(url.clone(), payload);
    }
    Ok(oracle)
}

/// The harness. See the module docs; [`ChaosRunner::run`] is the whole
/// API.
pub struct ChaosRunner;

impl ChaosRunner {
    /// Runs `cfg.clients` concurrent clients fetching `urls` through
    /// per-shard [`ChaosLink`]s under `cfg.schedule`, applying scheduled
    /// shard kills, then checks every invariant and reports.
    pub fn run(cluster: &mut ProxyCluster, urls: &[String], cfg: &RunnerConfig) -> ChaosReport {
        let shards = cluster.len();
        assert!(!urls.is_empty(), "a chaos run needs at least one URL");

        let mut violations: Vec<Violation> = Vec::new();

        // The oracle is computed before any fault can fire, straight off
        // shard 0's proxy (rewriting is deterministic and signing uses
        // the organization key, so every shard serves these exact bytes).
        let oracle = match oracle_payloads(cluster.proxy(0), &cfg.signer, &cfg.hello, urls) {
            Ok(o) => o,
            Err(e) => {
                return ChaosReport {
                    seed: cfg.seed,
                    schedule: cfg.schedule.to_string(),
                    clients: cfg.clients,
                    shards,
                    fetches_attempted: 0,
                    fetches_ok: 0,
                    fetches_failed: 0,
                    fetch_p50_ns: 0,
                    fetch_p99_ns: 0,
                    link_stats: Vec::new(),
                    audit_emitted: 0,
                    audit_sent: 0,
                    audit_dropped: 0,
                    violations: vec![Violation {
                        invariant: "oracle",
                        detail: e,
                    }],
                }
            }
        };

        // Hold every shard's telemetry plane now: the Arcs stay valid
        // after a kill, so conservation can still be checked for shards
        // that died mid-run.
        let shard_telemetry: Vec<_> = (0..shards)
            .map(|i| {
                cluster
                    .shard_telemetry(i)
                    .expect("all shards alive at start")
            })
            .collect();

        // One interposer per shard, each with a decorrelated seed.
        let mut links = Vec::with_capacity(shards);
        let mut link_addrs: Vec<SocketAddr> = Vec::with_capacity(shards);
        for (i, &upstream) in cluster.addrs().to_vec().iter().enumerate() {
            let link_seed = SimRng::derive(cfg.seed, 0x1000 + i as u64).next_u64();
            let link = ChaosLink::start(upstream, cfg.schedule.clone(), link_seed)
                .expect("bind chaos link");
            link_addrs.push(link.addr());
            links.push(link);
        }

        let ring = cluster.ring().clone();
        let killed_stats: Mutex<Vec<(usize, ServerStats)>> = Mutex::new(Vec::new());
        let cluster_mx = Mutex::new(cluster);

        let mut outcomes: Vec<Option<ClientOutcome>> = Vec::with_capacity(cfg.clients);
        let mut panics: Vec<String> = Vec::new();

        std::thread::scope(|scope| {
            let killer = scope.spawn(|| {
                let start = Instant::now();
                let mut kills = cfg.kills.clone();
                kills.sort_by_key(|k| k.after);
                for kill in kills {
                    let elapsed = start.elapsed();
                    if kill.after > elapsed {
                        std::thread::sleep(kill.after - elapsed);
                    }
                    if let Some(stats) = cluster_mx.lock().kill_shard(kill.shard) {
                        killed_stats.lock().push((kill.shard, stats));
                    }
                }
            });

            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    let link_addrs = link_addrs.clone();
                    let ring = ring.clone();
                    let oracle = &oracle;
                    scope.spawn(move || run_client(c, cfg, urls, oracle, link_addrs, ring, shards))
                })
                .collect();
            for (c, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => outcomes.push(Some(outcome)),
                    Err(panic) => {
                        outcomes.push(None);
                        panics.push(format!("client {c} panicked: {}", panic_message(&panic)));
                    }
                }
            }
            let _ = killer.join();
        });

        // --- failures-are-typed -----------------------------------------
        // Every failure a client observes must be a typed error surfaced
        // through Result; a panic anywhere in the client stack under
        // network faults is itself the bug this harness exists to catch.
        for p in panics {
            violations.push(Violation {
                invariant: "failures-are-typed",
                detail: p,
            });
        }

        // --- payload-matches-oracle -------------------------------------
        for outcome in outcomes.iter().flatten() {
            for m in &outcome.payload_mismatches {
                violations.push(Violation {
                    invariant: "payload-matches-oracle",
                    detail: m.clone(),
                });
            }
        }

        // --- audit-conservation -----------------------------------------
        // Per client: every emitted event was either written to a socket
        // or counted as dropped, and the drop count is mirrored into the
        // client's telemetry plane. (In-flight loss after a successful
        // write is the server's side of the ledger: received ≤ sent.)
        let mut audit_emitted = 0u64;
        let mut audit_sent = 0u64;
        let mut audit_dropped = 0u64;
        for (c, outcome) in outcomes.iter().enumerate() {
            let Some(o) = outcome else { continue };
            audit_emitted += o.audit_emitted;
            audit_sent += o.audit_sent;
            audit_dropped += o.audit_dropped;
            if o.audit_emitted != o.audit_sent + o.audit_dropped {
                violations.push(Violation {
                    invariant: "audit-conservation",
                    detail: format!(
                        "client {c}: emitted {} != sent {} + dropped {}",
                        o.audit_emitted, o.audit_sent, o.audit_dropped
                    ),
                });
            }
            let counted = o.snapshot.counter("audit_dropped_total");
            if counted != o.audit_dropped {
                violations.push(Violation {
                    invariant: "audit-conservation",
                    detail: format!(
                        "client {c}: audit_dropped_total {} != dropped {}",
                        counted, o.audit_dropped
                    ),
                });
            }
        }

        // --- breaker-consistency ----------------------------------------
        // Per client: the breaker's transition counters must describe a
        // realizable history — a circuit still open was opened; every
        // opened-and-no-longer-open circuit left through half-open or a
        // direct close; never more circuits open than shards exist.
        for (c, outcome) in outcomes.iter().enumerate() {
            let Some(o) = outcome else { continue };
            let opened = o.snapshot.counter("cluster.breaker.opened");
            let half_open = o.snapshot.counter("cluster.breaker.half_open");
            let closed = o.snapshot.counter("cluster.breaker.closed");
            let open_now = o.snapshot.gauge("cluster.breaker.open_now");
            if open_now < 0 || open_now as u64 > shards as u64 {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!("client {c}: open_now {open_now} outside [0, {shards}]"),
                });
            }
            let open_now = open_now.max(0) as u64;
            if open_now > opened {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!("client {c}: open_now {open_now} > opened {opened}"),
                });
            }
            if opened - open_now > half_open + closed {
                violations.push(Violation {
                    invariant: "breaker-consistency",
                    detail: format!(
                        "client {c}: {} circuits left open state but only {} exits recorded",
                        opened - open_now,
                        half_open + closed
                    ),
                });
            }
        }

        // --- telemetry-conservation -------------------------------------
        // Per shard: every served request arrived in at least one frame,
        // whether the shard survived the run or was killed mid-way.
        let cluster = cluster_mx.into_inner();
        let killed: HashMap<usize, ServerStats> = killed_stats.into_inner().into_iter().collect();
        let mut server_audit_received = 0u64;
        for (i, telemetry) in shard_telemetry.iter().enumerate() {
            let stats = match killed.get(&i) {
                Some(s) => *s,
                None => match cluster.shard_stats(i) {
                    Some(s) => s,
                    None => continue,
                },
            };
            server_audit_received += stats.audit_events;
            let snap = telemetry.registry().snapshot();
            let frames_in = snap.counter("net.server.frames_in");
            if frames_in < stats.requests {
                violations.push(Violation {
                    invariant: "telemetry-conservation",
                    detail: format!(
                        "shard {i}: frames_in {} < requests served {}",
                        frames_in, stats.requests
                    ),
                });
            }
            if frames_in > 0 && snap.counter("net.server.bytes_in") == 0 {
                violations.push(Violation {
                    invariant: "telemetry-conservation",
                    detail: format!("shard {i}: {frames_in} frames but zero bytes counted"),
                });
            }
        }
        if server_audit_received > audit_sent {
            violations.push(Violation {
                invariant: "audit-conservation",
                detail: format!(
                    "servers received {server_audit_received} audit events but clients only sent {audit_sent}"
                ),
            });
        }

        let link_stats: Vec<LinkStats> = links.into_iter().map(|l| l.shutdown()).collect();

        let mut latencies: Vec<u64> = outcomes
            .iter()
            .flatten()
            .flat_map(|o| o.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let pct = |p: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
            latencies[idx]
        };

        let fetches_ok: u64 = outcomes.iter().flatten().map(|o| o.ok).sum();
        let fetches_failed: u64 = outcomes.iter().flatten().map(|o| o.failed).sum();

        ChaosReport {
            seed: cfg.seed,
            schedule: cfg.schedule.to_string(),
            clients: cfg.clients,
            shards,
            fetches_attempted: fetches_ok + fetches_failed,
            fetches_ok,
            fetches_failed,
            fetch_p50_ns: pct(0.50),
            fetch_p99_ns: pct(0.99),
            link_stats,
            audit_emitted,
            audit_sent,
            audit_dropped,
            violations,
        }
    }
}

/// One client's whole life: connect through the links, fetch a seeded
/// shuffle of the URL list, verify each payload against the oracle,
/// stream audit events, and account for everything.
fn run_client(
    c: usize,
    cfg: &RunnerConfig,
    urls: &[String],
    oracle: &HashMap<String, Vec<u8>>,
    link_addrs: Vec<SocketAddr>,
    ring: dvm_cluster::HashRing,
    shards: usize,
) -> ClientOutcome {
    let hello = Hello {
        user: format!("{}{c}", cfg.hello.user),
        ..cfg.hello.clone()
    };
    let mut provider = ClusterClassProvider::new(
        link_addrs.clone(),
        ring,
        hello.clone(),
        cfg.signer.clone(),
        cfg.client_config,
    );
    let telemetry = provider.telemetry();

    // The audit channel rides a link too (shard chosen round-robin), so
    // faults hit the fire-and-forget path as hard as the request path.
    let mut console = if cfg.audit {
        let mut net = cfg.client_config.net;
        net.jitter_seed = SimRng::derive(cfg.seed, 0x3000 + c as u64).next_u64();
        dvm_net::RemoteConsole::connect(link_addrs[c % shards], hello, net)
            .ok()
            .map(|mut con| {
                con.set_telemetry(telemetry.clone());
                con
            })
    } else {
        None
    };

    // Each client walks its own seeded shuffle of the URL list, so the
    // cluster sees interleaved, non-identical access patterns that are
    // still a pure function of the master seed.
    let mut order: Vec<usize> = (0..urls.len()).collect();
    let mut rng = SimRng::derive(cfg.seed, 0x2000 + c as u64);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.next_below(i as u64 + 1) as usize);
    }

    let mut outcome = ClientOutcome {
        ok: 0,
        failed: 0,
        latencies_ns: Vec::new(),
        payload_mismatches: Vec::new(),
        audit_emitted: 0,
        audit_sent: 0,
        audit_dropped: 0,
        snapshot: telemetry.registry().snapshot(),
    };

    for j in 0..cfg.fetches_per_client {
        let url = &urls[order[j % order.len()]];
        let started = Instant::now();
        match provider.fetch(url) {
            Ok((bytes, _)) => {
                outcome.ok += 1;
                outcome
                    .latencies_ns
                    .push(started.elapsed().as_nanos() as u64);
                let expected = &oracle[url];
                if &bytes != expected {
                    outcome.payload_mismatches.push(format!(
                        "client {c} fetch {j} of {url}: {} bytes delivered, oracle has {} ({} bytes differ)",
                        bytes.len(),
                        expected.len(),
                        bytes
                            .iter()
                            .zip(expected.iter())
                            .filter(|(a, b)| a != b)
                            .count(),
                    ));
                }
                if let Some(con) = console.as_mut() {
                    con.record(SiteId(j as i32), EventKind::Event);
                    outcome.audit_emitted += 1;
                }
            }
            // Any Err here is by definition typed (it came through
            // Result); panics are caught at join instead.
            Err(_) => outcome.failed += 1,
        }
    }

    if let Some(mut con) = console.take() {
        outcome.audit_sent = con.sent();
        outcome.audit_dropped = con.dropped();
        con.close();
    }
    provider.close();
    outcome.snapshot = telemetry.registry().snapshot();
    outcome
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}
