//! The induced-brownout scenario: drive a healthy cluster into a
//! full outage and back out, and assert the *observability plane* saw
//! it — the error-ratio SLO alert must fire during the fault window
//! and resolve after it.
//!
//! Where [`crate::runner`] checks that the data plane survives faults,
//! this scenario checks that `dvm-watch` notices them. The clock is
//! synthetic (one tick per batch), so the alert state machine's walk
//! through ok → firing → resolved is a pure function of the phase
//! lengths and the error budget — replayable like every other chaos
//! run.

use std::sync::Arc;

use dvm_cluster::{ClusterClassProvider, ClusterClientConfig, ProxyCluster};
use dvm_net::Hello;
use dvm_proxy::Signer;
use dvm_telemetry::events::{ALERT_FIRING, ALERT_OK, ALERT_RESOLVED};
use dvm_telemetry::{JournalKind, Telemetry};
use dvm_watch::{Objective, Watch, WatchConfig};

use crate::runner::Violation;

const SEC: u64 = 1_000_000_000;

/// Tuning for [`ChaosRunner::run_brownout`](crate::ChaosRunner).
#[derive(Clone)]
pub struct BrownoutConfig {
    /// Fetches per batch (one batch == one synthetic second).
    pub fetches_per_batch: usize,
    /// Healthy batches before the fault window.
    pub healthy_batches: usize,
    /// Batches with every shard down (the brownout).
    pub brownout_batches: usize,
    /// Clean batches after the shards come back.
    pub recovery_batches: usize,
    /// Error-ratio budget for the objective (e.g. `0.1` = 10%).
    pub error_budget: f64,
    /// Client tuning; should fail fast so the fault window stays short.
    pub client_config: ClusterClientConfig,
    /// Signature verification key.
    pub signer: Option<Signer>,
    /// Client identity.
    pub hello: Hello,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            fetches_per_batch: 4,
            // Fast window 2 ticks, slow window 6: six bad batches are
            // enough to burn both, twelve clean ones to clear them.
            healthy_batches: 3,
            brownout_batches: 6,
            recovery_batches: 12,
            error_budget: 0.1,
            client_config: ClusterClientConfig::default(),
            signer: None,
            hello: Hello {
                user: "brownout".into(),
                principal: "applets".into(),
                ..Hello::default()
            },
        }
    }
}

/// What the brownout run observed.
#[derive(Debug, Clone)]
pub struct BrownoutReport {
    /// Every alert transition the journal recorded, in order
    /// (`from`, `to` as [`dvm_telemetry::events`] `ALERT_*` values).
    pub transitions: Vec<(u8, u8)>,
    /// Alert state at the end of the fault window.
    pub state_during_fault: u8,
    /// Alert state after the recovery batches.
    pub state_after_recovery: u8,
    /// Successful fetches across all phases.
    pub fetches_ok: u64,
    /// Failed fetches across all phases.
    pub fetches_failed: u64,
    /// Scenario invariant failures (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl BrownoutReport {
    /// True when the alert fired inside the fault window and resolved
    /// after it.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl crate::ChaosRunner {
    /// Drives `cluster` through three phases — healthy traffic, a full
    /// brownout (every shard killed), and recovery (shards restarted,
    /// clean traffic) — while a client-side [`Watch`] evaluates an
    /// error-ratio objective over the run's own fetch counters on a
    /// synthetic one-second-per-batch clock. Checks three invariants:
    ///
    /// * `brownout-alert-quiet-while-healthy` — the alert is still ok
    ///   when the fault window opens;
    /// * `brownout-alert-fires` — it is firing by the end of the fault
    ///   window, and the journal holds the transition;
    /// * `brownout-alert-resolves` — after recovery it walked through
    ///   resolved back to ok, all of it in the journal.
    pub fn run_brownout(
        cluster: &mut ProxyCluster,
        urls: &[String],
        cfg: &BrownoutConfig,
    ) -> BrownoutReport {
        assert!(!urls.is_empty(), "a brownout run needs at least one URL");
        let telemetry = Arc::new(Telemetry::new("brownout-client"));
        let errors = telemetry.registry().counter("chaos.fetch.errors");
        let total = telemetry.registry().counter("chaos.fetch.total");
        let watch = Watch::new(
            telemetry.clone(),
            WatchConfig {
                objectives: vec![Objective::error_ratio(
                    "brownout-error-ratio",
                    "chaos.fetch.errors",
                    "chaos.fetch.total",
                    cfg.error_budget,
                    2 * SEC,
                    6 * SEC,
                )],
                ..WatchConfig::default()
            },
        );

        let mut now = 0u64;
        watch.tick_at(now);
        let mut fetches_ok = 0u64;
        let mut fetches_failed = 0u64;
        let mut violations = Vec::new();

        // One batch: every URL round-robined into `fetches_per_batch`
        // attempts, outcomes counted, then one synthetic second passes.
        let run_batches = |provider: &mut ClusterClassProvider,
                           batches: usize,
                           ok: &mut u64,
                           failed: &mut u64,
                           now: &mut u64| {
            for _ in 0..batches {
                for j in 0..cfg.fetches_per_batch {
                    let url = &urls[j % urls.len()];
                    total.inc();
                    match provider.fetch(url) {
                        Ok(_) => *ok += 1,
                        Err(_) => {
                            errors.inc();
                            *failed += 1;
                        }
                    }
                }
                *now += SEC;
                watch.tick_at(*now);
            }
        };

        // Phase 1: healthy traffic.
        let mut provider = ClusterClassProvider::new(
            cluster.addrs().to_vec(),
            cluster.ring().clone(),
            cfg.hello.clone(),
            cfg.signer.clone(),
            cfg.client_config,
        );
        run_batches(
            &mut provider,
            cfg.healthy_batches,
            &mut fetches_ok,
            &mut fetches_failed,
            &mut now,
        );
        let healthy_state = watch.alerts()[0].state.as_u8();
        if healthy_state != ALERT_OK {
            violations.push(Violation {
                invariant: "brownout-alert-quiet-while-healthy",
                detail: format!("alert state {healthy_state} before any fault"),
            });
        }

        // Phase 2: the brownout — every live shard goes down at once.
        let downed: Vec<usize> = (0..cluster.len())
            .filter(|&i| cluster.is_alive(i))
            .collect();
        for &i in &downed {
            let _ = cluster.kill_shard(i);
        }
        run_batches(
            &mut provider,
            cfg.brownout_batches,
            &mut fetches_ok,
            &mut fetches_failed,
            &mut now,
        );
        provider.close();
        let state_during_fault = watch.alerts()[0].state.as_u8();
        if state_during_fault != ALERT_FIRING {
            violations.push(Violation {
                invariant: "brownout-alert-fires",
                detail: format!(
                    "alert state {state_during_fault} at the end of the fault window, expected firing"
                ),
            });
        }

        // Phase 3: recovery. Restarted shards rebind to new sockets, so
        // the recovery traffic uses a fresh provider over the new
        // address book — exactly what a ring-refreshing client would do.
        for &i in &downed {
            let _ = cluster.restart_shard(i);
        }
        let mut provider = ClusterClassProvider::new(
            cluster.addrs().to_vec(),
            cluster.ring().clone(),
            cfg.hello.clone(),
            cfg.signer.clone(),
            cfg.client_config,
        );
        run_batches(
            &mut provider,
            cfg.recovery_batches,
            &mut fetches_ok,
            &mut fetches_failed,
            &mut now,
        );
        provider.close();
        let state_after_recovery = watch.alerts()[0].state.as_u8();

        let transitions: Vec<(u8, u8)> = telemetry
            .journal()
            .events_after(0, 10_000)
            .into_iter()
            .filter_map(|e| match e.kind {
                JournalKind::AlertTransition { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        if !transitions.iter().any(|&(_, to)| to == ALERT_FIRING) {
            violations.push(Violation {
                invariant: "brownout-alert-fires",
                detail: "journal holds no transition into firing".into(),
            });
        }
        if !transitions.contains(&(ALERT_FIRING, ALERT_RESOLVED)) {
            violations.push(Violation {
                invariant: "brownout-alert-resolves",
                detail: format!("journal transitions {transitions:?} never left firing"),
            });
        }
        if state_after_recovery != ALERT_OK {
            violations.push(Violation {
                invariant: "brownout-alert-resolves",
                detail: format!("alert state {state_after_recovery} after recovery, expected ok"),
            });
        }

        BrownoutReport {
            transitions,
            state_during_fault,
            state_after_recovery,
            fetches_ok,
            fetches_failed,
            violations,
        }
    }
}
