//! Field and method descriptor parsing.
//!
//! Descriptors are the JVM's compact type signatures, e.g. `I` for `int`,
//! `Ljava/lang/String;` for a class type, `[J` for `long[]`, and
//! `(ILjava/lang/String;)V` for a method taking an `int` and a `String` and
//! returning `void`. The verifier, interpreter, compiler, and rewriting
//! services all depend on these.

use std::fmt;

use crate::error::{ClassFileError, Result};

/// A parsed field type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// `B` — signed byte.
    Byte,
    /// `C` — UTF-16 code unit.
    Char,
    /// `D` — double-precision float.
    Double,
    /// `F` — single-precision float.
    Float,
    /// `I` — 32-bit int.
    Int,
    /// `J` — 64-bit long.
    Long,
    /// `S` — signed short.
    Short,
    /// `Z` — boolean.
    Boolean,
    /// `L<name>;` — a class or interface instance, by internal name.
    Object(String),
    /// `[<type>` — an array with the given element type.
    Array(Box<FieldType>),
}

impl FieldType {
    /// Number of operand-stack / local-variable slots this type occupies
    /// (2 for `long` and `double`, 1 otherwise).
    pub fn slot_width(&self) -> u16 {
        match self {
            FieldType::Long | FieldType::Double => 2,
            _ => 1,
        }
    }

    /// Returns `true` for reference (object or array) types.
    pub fn is_reference(&self) -> bool {
        matches!(self, FieldType::Object(_) | FieldType::Array(_))
    }

    /// Returns `true` for types stored as `int` on the operand stack
    /// (`boolean`, `byte`, `char`, `short`, `int`).
    pub fn is_int_like(&self) -> bool {
        matches!(
            self,
            FieldType::Boolean
                | FieldType::Byte
                | FieldType::Char
                | FieldType::Short
                | FieldType::Int
        )
    }

    /// Parses a field type from the front of `s`, returning the type and the
    /// number of characters consumed.
    pub fn parse_prefix(s: &str) -> Result<(FieldType, usize)> {
        let bytes = s.as_bytes();
        let bad = || ClassFileError::BadDescriptor(s.to_owned());
        match bytes.first().ok_or_else(bad)? {
            b'B' => Ok((FieldType::Byte, 1)),
            b'C' => Ok((FieldType::Char, 1)),
            b'D' => Ok((FieldType::Double, 1)),
            b'F' => Ok((FieldType::Float, 1)),
            b'I' => Ok((FieldType::Int, 1)),
            b'J' => Ok((FieldType::Long, 1)),
            b'S' => Ok((FieldType::Short, 1)),
            b'Z' => Ok((FieldType::Boolean, 1)),
            b'L' => {
                let end = s.find(';').ok_or_else(bad)?;
                if end == 1 {
                    return Err(bad());
                }
                Ok((FieldType::Object(s[1..end].to_owned()), end + 1))
            }
            b'[' => {
                dvm_fuzz::cov!("descriptor.array");
                let (inner, used) = FieldType::parse_prefix(&s[1..])?;
                Ok((FieldType::Array(Box::new(inner)), used + 1))
            }
            _ => {
                dvm_fuzz::cov!("descriptor.bad");
                Err(bad())
            }
        }
    }

    /// Parses a complete field descriptor (the whole string must be one type).
    pub fn parse(s: &str) -> Result<FieldType> {
        let (t, used) = FieldType::parse_prefix(s)?;
        if used != s.len() {
            return Err(ClassFileError::BadDescriptor(s.to_owned()));
        }
        Ok(t)
    }

    /// Writes the descriptor form of this type into `out`.
    pub fn write_descriptor(&self, out: &mut String) {
        match self {
            FieldType::Byte => out.push('B'),
            FieldType::Char => out.push('C'),
            FieldType::Double => out.push('D'),
            FieldType::Float => out.push('F'),
            FieldType::Int => out.push('I'),
            FieldType::Long => out.push('J'),
            FieldType::Short => out.push('S'),
            FieldType::Boolean => out.push('Z'),
            FieldType::Object(name) => {
                out.push('L');
                out.push_str(name);
                out.push(';');
            }
            FieldType::Array(inner) => {
                out.push('[');
                inner.write_descriptor(out);
            }
        }
    }

    /// Returns the descriptor string for this type.
    pub fn descriptor(&self) -> String {
        let mut s = String::new();
        self.write_descriptor(&mut s);
        s
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Byte => write!(f, "byte"),
            FieldType::Char => write!(f, "char"),
            FieldType::Double => write!(f, "double"),
            FieldType::Float => write!(f, "float"),
            FieldType::Int => write!(f, "int"),
            FieldType::Long => write!(f, "long"),
            FieldType::Short => write!(f, "short"),
            FieldType::Boolean => write!(f, "boolean"),
            FieldType::Object(name) => write!(f, "{}", name.replace('/', ".")),
            FieldType::Array(inner) => write!(f, "{inner}[]"),
        }
    }
}

/// A parsed method descriptor: parameter types and return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodDescriptor {
    /// Parameter types in declaration order.
    pub params: Vec<FieldType>,
    /// Return type, or `None` for `void`.
    pub ret: Option<FieldType>,
}

impl MethodDescriptor {
    /// Parses a method descriptor such as `(ILjava/lang/String;)V`.
    pub fn parse(s: &str) -> Result<MethodDescriptor> {
        let bad = || ClassFileError::BadDescriptor(s.to_owned());
        let rest = s.strip_prefix('(').ok_or_else(bad)?;
        let close = rest.find(')').ok_or_else(bad)?;
        let (params_str, ret_str) = (&rest[..close], &rest[close + 1..]);
        let mut params = Vec::new();
        let mut cursor = params_str;
        while !cursor.is_empty() {
            let (t, used) = FieldType::parse_prefix(cursor)?;
            params.push(t);
            cursor = &cursor[used..];
        }
        let ret = if ret_str == "V" {
            None
        } else {
            Some(FieldType::parse(ret_str)?)
        };
        Ok(MethodDescriptor { params, ret })
    }

    /// Total number of local-variable slots the parameters occupy, counting
    /// `long`/`double` as two. Does not include the `this` slot.
    pub fn param_slots(&self) -> u16 {
        self.params.iter().map(|p| p.slot_width()).sum()
    }

    /// Number of operand-stack slots the return value occupies.
    pub fn return_slots(&self) -> u16 {
        self.ret.as_ref().map_or(0, |t| t.slot_width())
    }

    /// Returns the descriptor string.
    pub fn descriptor(&self) -> String {
        let mut s = String::from("(");
        for p in &self.params {
            p.write_descriptor(&mut s);
        }
        s.push(')');
        match &self.ret {
            None => s.push('V'),
            Some(t) => t.write_descriptor(&mut s),
        }
        s
    }
}

impl fmt::Display for MethodDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> ")?;
        match &self.ret {
            None => write!(f, "void"),
            Some(t) => write!(f, "{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_primitives() {
        assert_eq!(FieldType::parse("I").unwrap(), FieldType::Int);
        assert_eq!(FieldType::parse("J").unwrap(), FieldType::Long);
        assert_eq!(FieldType::parse("Z").unwrap(), FieldType::Boolean);
    }

    #[test]
    fn parses_objects_and_arrays() {
        assert_eq!(
            FieldType::parse("Ljava/lang/String;").unwrap(),
            FieldType::Object("java/lang/String".into())
        );
        assert_eq!(
            FieldType::parse("[[I").unwrap(),
            FieldType::Array(Box::new(FieldType::Array(Box::new(FieldType::Int))))
        );
    }

    #[test]
    fn rejects_malformed_field_types() {
        assert!(FieldType::parse("").is_err());
        assert!(FieldType::parse("L;").is_err());
        assert!(FieldType::parse("Q").is_err());
        assert!(FieldType::parse("II").is_err());
        assert!(FieldType::parse("Ljava/lang/String").is_err());
    }

    #[test]
    fn parses_method_descriptors() {
        let d = MethodDescriptor::parse("(ILjava/lang/String;[J)D").unwrap();
        assert_eq!(d.params.len(), 3);
        assert_eq!(d.ret, Some(FieldType::Double));
        assert_eq!(d.param_slots(), 3); // int=1, String=1, long[]=1 (array ref)
        assert_eq!(d.return_slots(), 2);
        assert_eq!(d.descriptor(), "(ILjava/lang/String;[J)D");
    }

    #[test]
    fn void_return_and_wide_params() {
        let d = MethodDescriptor::parse("(JD)V").unwrap();
        assert_eq!(d.param_slots(), 4);
        assert_eq!(d.return_slots(), 0);
        assert!(d.ret.is_none());
    }

    #[test]
    fn rejects_malformed_method_descriptors() {
        assert!(MethodDescriptor::parse("()").is_err());
        assert!(MethodDescriptor::parse("I").is_err());
        assert!(MethodDescriptor::parse("(I").is_err());
        assert!(MethodDescriptor::parse("(I)VV").is_err());
    }

    #[test]
    fn display_is_human_readable() {
        let d = MethodDescriptor::parse("(ILjava/lang/String;)V").unwrap();
        assert_eq!(d.to_string(), "(int, java.lang.String) -> void");
    }
}
