//! Field and method structures.

use crate::access::AccessFlags;
use crate::attributes::{parse_attributes, write_attributes, Attribute, CodeAttribute};
use crate::error::Result;
use crate::pool::ConstPool;
use crate::reader::Reader;
use crate::writer::Writer;

/// A field or method as stored in the class file (they share a layout).
#[derive(Debug, Clone, PartialEq)]
pub struct MemberInfo {
    /// Access and property flags.
    pub access: AccessFlags,
    /// Constant-pool index of the `Utf8` simple name.
    pub name_index: u16,
    /// Constant-pool index of the `Utf8` descriptor.
    pub descriptor_index: u16,
    /// Attributes (for methods, usually a `Code` attribute).
    pub attributes: Vec<Attribute>,
}

impl MemberInfo {
    /// Parses one member from `r`.
    pub fn parse(r: &mut Reader<'_>, pool: &ConstPool) -> Result<MemberInfo> {
        dvm_fuzz::cov!("member.parse");
        let access = AccessFlags(r.u16("member access flags")?);
        let name_index = r.u16("member name index")?;
        let descriptor_index = r.u16("member descriptor index")?;
        let attributes = parse_attributes(r, pool)?;
        Ok(MemberInfo {
            access,
            name_index,
            descriptor_index,
            attributes,
        })
    }

    /// Serializes this member to `w`.
    pub fn write(&self, w: &mut Writer, pool: &mut ConstPool) -> Result<()> {
        w.u16(self.access.0);
        w.u16(self.name_index);
        w.u16(self.descriptor_index);
        write_attributes(&self.attributes, w, pool)
    }

    /// Resolves the member's simple name through `pool`.
    pub fn name<'p>(&self, pool: &'p ConstPool) -> Result<&'p str> {
        pool.get_utf8(self.name_index)
    }

    /// Resolves the member's descriptor through `pool`.
    pub fn descriptor<'p>(&self, pool: &'p ConstPool) -> Result<&'p str> {
        pool.get_utf8(self.descriptor_index)
    }

    /// Returns the member's `Code` attribute, if any.
    pub fn code(&self) -> Option<&CodeAttribute> {
        self.attributes.iter().find_map(|a| match a {
            Attribute::Code(c) => Some(c),
            _ => None,
        })
    }

    /// Returns a mutable reference to the member's `Code` attribute, if any.
    pub fn code_mut(&mut self) -> Option<&mut CodeAttribute> {
        self.attributes.iter_mut().find_map(|a| match a {
            Attribute::Code(c) => Some(c),
            _ => None,
        })
    }

    /// Replaces the member's `Code` attribute (or appends one if missing).
    pub fn set_code(&mut self, code: CodeAttribute) {
        for a in &mut self.attributes {
            if matches!(a, Attribute::Code(_)) {
                *a = Attribute::Code(code);
                return;
            }
        }
        self.attributes.push(Attribute::Code(code));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_round_trip() {
        let mut pool = ConstPool::new();
        let name = pool.utf8("compute").unwrap();
        let desc = pool.utf8("(I)I").unwrap();
        let member = MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: name,
            descriptor_index: desc,
            attributes: vec![Attribute::Code(CodeAttribute {
                max_stack: 1,
                max_locals: 1,
                code: vec![0x1A, 0xAC], // iload_0; ireturn
                exception_table: vec![],
                attributes: vec![],
            })],
        };
        let mut w = Writer::new();
        member.write(&mut w, &mut pool).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let parsed = MemberInfo::parse(&mut r, &pool).unwrap();
        assert_eq!(parsed, member);
        assert_eq!(parsed.name(&pool).unwrap(), "compute");
        assert_eq!(parsed.descriptor(&pool).unwrap(), "(I)I");
        assert!(parsed.code().is_some());
    }

    #[test]
    fn set_code_replaces_existing() {
        let mut pool = ConstPool::new();
        let name = pool.utf8("m").unwrap();
        let desc = pool.utf8("()V").unwrap();
        let mut member = MemberInfo {
            access: AccessFlags::PUBLIC,
            name_index: name,
            descriptor_index: desc,
            attributes: vec![Attribute::Code(CodeAttribute::default())],
        };
        member.set_code(CodeAttribute {
            max_stack: 5,
            ..CodeAttribute::default()
        });
        assert_eq!(member.attributes.len(), 1);
        assert_eq!(member.code().unwrap().max_stack, 5);
    }
}
