//! Big-endian byte-stream writer used by the class-file serializer.

/// An append-only buffer that writes big-endian primitives.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_big_endian() {
        let mut w = Writer::new();
        w.u8(1);
        w.u16(0x0203);
        w.u32(0x0405_0607);
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn round_trips_through_reader() {
        let mut w = Writer::new();
        w.u64(0xDEAD_BEEF_0BAD_F00D);
        w.bytes(b"xy");
        let bytes = w.into_bytes();
        let mut r = crate::reader::Reader::new(&bytes);
        assert_eq!(r.u64("l").unwrap(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(r.bytes(2, "t").unwrap(), b"xy");
    }
}
