//! The top-level class-file structure.

use crate::access::AccessFlags;
use crate::attributes::{parse_attributes, write_attributes, Attribute};
use crate::error::{ClassFileError, Result};
use crate::member::MemberInfo;
use crate::pool::ConstPool;
use crate::reader::Reader;
use crate::writer::Writer;

/// The class-file magic number.
pub const MAGIC: u32 = 0xCAFE_BABE;

/// Default major version we emit (45 = JDK 1.0.2/1.1 era, 46 = 1.2).
pub const MAJOR_VERSION: u16 = 46;

/// Default minor version we emit.
pub const MINOR_VERSION: u16 = 0;

/// A parsed (or synthesized) Java class file.
#[derive(Debug, Clone)]
pub struct ClassFile {
    /// Minor version from the header.
    pub minor_version: u16,
    /// Major version from the header.
    pub major_version: u16,
    /// The constant pool.
    pub pool: ConstPool,
    /// Class-level access flags.
    pub access: AccessFlags,
    /// Constant-pool index of this class's `Class` entry.
    pub this_class: u16,
    /// Constant-pool index of the superclass's `Class` entry (0 only for
    /// `java/lang/Object`).
    pub super_class: u16,
    /// Constant-pool indices of implemented interfaces.
    pub interfaces: Vec<u16>,
    /// Declared fields.
    pub fields: Vec<MemberInfo>,
    /// Declared methods.
    pub methods: Vec<MemberInfo>,
    /// Class-level attributes.
    pub attributes: Vec<Attribute>,
}

impl ClassFile {
    /// Parses a class file from raw bytes.
    ///
    /// Rejects bad magic, truncated input, and trailing garbage; accepts
    /// major versions 45–48 (the 1.0–1.4 era covered by the paper).
    pub fn parse(bytes: &[u8]) -> Result<ClassFile> {
        let mut r = Reader::new(bytes);
        let magic = r.u32("magic")?;
        if magic != MAGIC {
            dvm_fuzz::cov!("classfile.bad_magic");
            return Err(ClassFileError::BadMagic(magic));
        }
        dvm_fuzz::cov!("classfile.magic_ok");
        let minor_version = r.u16("minor version")?;
        let major_version = r.u16("major version")?;
        if !(45..=48).contains(&major_version) {
            dvm_fuzz::cov!("classfile.bad_version");
            return Err(ClassFileError::UnsupportedVersion {
                major: major_version,
                minor: minor_version,
            });
        }
        dvm_fuzz::cov!("classfile.version_ok");
        let pool = ConstPool::parse(&mut r)?;
        let access = AccessFlags(r.u16("class access flags")?);
        let this_class = r.u16("this_class")?;
        let super_class = r.u16("super_class")?;
        dvm_fuzz::cov!("classfile.pool_ok");
        let n_ifaces = r.u16("interface count")?;
        let mut interfaces = Vec::with_capacity(n_ifaces as usize);
        for _ in 0..n_ifaces {
            interfaces.push(r.u16("interface index")?);
        }
        let n_fields = r.u16("field count")?;
        let mut fields = Vec::with_capacity(n_fields as usize);
        for _ in 0..n_fields {
            fields.push(MemberInfo::parse(&mut r, &pool)?);
        }
        let n_methods = r.u16("method count")?;
        let mut methods = Vec::with_capacity(n_methods as usize);
        for _ in 0..n_methods {
            methods.push(MemberInfo::parse(&mut r, &pool)?);
        }
        dvm_fuzz::cov!("classfile.members_ok");
        let attributes = parse_attributes(&mut r, &pool)?;
        if !r.is_empty() {
            dvm_fuzz::cov!("classfile.trailing");
            return Err(ClassFileError::Malformed(format!(
                "{} trailing bytes after class file",
                r.remaining()
            )));
        }
        dvm_fuzz::cov!("classfile.parse_ok");
        Ok(ClassFile {
            minor_version,
            major_version,
            pool,
            access,
            this_class,
            super_class,
            interfaces,
            fields,
            methods,
            attributes,
        })
    }

    /// Serializes the class file to bytes.
    ///
    /// Serialization may intern additional `Utf8` constants (attribute
    /// names), which is why it takes `&mut self`.
    pub fn to_bytes(&mut self) -> Result<Vec<u8>> {
        // Attribute names must be interned before the pool is written, so
        // serialize the tail (everything after the pool) into a side buffer
        // first, then assemble header + pool + tail.
        let mut tail = Writer::new();
        tail.u16(self.access.0);
        tail.u16(self.this_class);
        tail.u16(self.super_class);
        tail.u16(self.interfaces.len() as u16);
        for i in &self.interfaces {
            tail.u16(*i);
        }
        tail.u16(self.fields.len() as u16);
        for f in &self.fields {
            f.write(&mut tail, &mut self.pool)?;
        }
        tail.u16(self.methods.len() as u16);
        for m in &self.methods {
            m.write(&mut tail, &mut self.pool)?;
        }
        write_attributes(&self.attributes, &mut tail, &mut self.pool)?;

        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u16(self.minor_version);
        w.u16(self.major_version);
        self.pool.write(&mut w);
        w.bytes(&tail.into_bytes());
        Ok(w.into_bytes())
    }

    /// Returns this class's internal name (e.g. `java/lang/String`).
    pub fn name(&self) -> Result<&str> {
        self.pool.get_class_name(this_index(self)?)
    }

    /// Returns the superclass's internal name, or `None` for
    /// `java/lang/Object`.
    pub fn super_name(&self) -> Result<Option<&str>> {
        if self.super_class == 0 {
            Ok(None)
        } else {
            Ok(Some(self.pool.get_class_name(self.super_class)?))
        }
    }

    /// Returns the internal names of implemented interfaces.
    pub fn interface_names(&self) -> Result<Vec<&str>> {
        self.interfaces
            .iter()
            .map(|&i| self.pool.get_class_name(i))
            .collect()
    }

    /// Finds a declared method by name and descriptor.
    pub fn find_method(&self, name: &str, descriptor: &str) -> Option<&MemberInfo> {
        self.methods.iter().find(|m| {
            m.name(&self.pool).map(|n| n == name).unwrap_or(false)
                && m.descriptor(&self.pool)
                    .map(|d| d == descriptor)
                    .unwrap_or(false)
        })
    }

    /// Finds a declared method mutably by name and descriptor.
    pub fn find_method_mut(&mut self, name: &str, descriptor: &str) -> Option<&mut MemberInfo> {
        let pool = &self.pool;
        let idx = self.methods.iter().position(|m| {
            m.name(pool).map(|n| n == name).unwrap_or(false)
                && m.descriptor(pool).map(|d| d == descriptor).unwrap_or(false)
        })?;
        Some(&mut self.methods[idx])
    }

    /// Finds a declared field by name.
    pub fn find_field(&self, name: &str) -> Option<&MemberInfo> {
        self.fields
            .iter()
            .find(|f| f.name(&self.pool).map(|n| n == name).unwrap_or(false))
    }

    /// Returns the class-level attribute with the given name, if present.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name() == name)
    }
}

fn this_index(c: &ClassFile) -> Result<u16> {
    if c.this_class == 0 {
        Err(ClassFileError::Malformed("this_class is zero".into()))
    } else {
        Ok(c.this_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClassBuilder;

    #[test]
    fn build_parse_round_trip() {
        let mut cf = ClassBuilder::new("demo/Widget")
            .super_class("java/lang/Object")
            .access(AccessFlags::PUBLIC)
            .build();
        let bytes = cf.to_bytes().unwrap();
        let parsed = ClassFile::parse(&bytes).unwrap();
        assert_eq!(parsed.name().unwrap(), "demo/Widget");
        assert_eq!(parsed.super_name().unwrap(), Some("java/lang/Object"));
        assert!(parsed.access.is_public());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = vec![0u8; 16];
        assert!(matches!(
            ClassFile::parse(&bytes),
            Err(ClassFileError::BadMagic(0))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut cf = ClassBuilder::new("demo/T").build();
        let mut bytes = cf.to_bytes().unwrap();
        bytes.push(0xFF);
        assert!(matches!(
            ClassFile::parse(&bytes),
            Err(ClassFileError::Malformed(_))
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut cf = ClassBuilder::new("demo/T").build();
        cf.major_version = 99;
        let bytes = cf.to_bytes().unwrap();
        assert!(matches!(
            ClassFile::parse(&bytes),
            Err(ClassFileError::UnsupportedVersion { major: 99, .. })
        ));
    }
}
