//! Class, field, method, and code attributes.
//!
//! Besides the standard JVM attributes this module defines the
//! `DvmSelfDescribing` attribute: the reflection attribute described in the
//! paper's §4.3, added by the proxy so that injected service code can look up
//! exported members without the slow client reflection path.

use crate::error::{ClassFileError, Result};
use crate::pool::ConstPool;
use crate::reader::Reader;
use crate::writer::Writer;

/// One entry of a `Code` attribute's exception table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionTableEntry {
    /// Start (inclusive) of the protected range, as a code offset.
    pub start_pc: u16,
    /// End (exclusive) of the protected range.
    pub end_pc: u16,
    /// Code offset of the handler.
    pub handler_pc: u16,
    /// Constant-pool index of the caught class, or 0 for catch-all.
    pub catch_type: u16,
}

/// The body of a `Code` attribute.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeAttribute {
    /// Maximum operand-stack depth.
    pub max_stack: u16,
    /// Number of local-variable slots.
    pub max_locals: u16,
    /// Raw bytecode.
    pub code: Vec<u8>,
    /// Exception handlers, in order of decreasing precedence.
    pub exception_table: Vec<ExceptionTableEntry>,
    /// Nested attributes (line numbers etc.; preserved but uninterpreted).
    pub attributes: Vec<Attribute>,
}

/// One exported member recorded in a `DvmSelfDescribing` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedMember {
    /// Simple member name.
    pub name: String,
    /// Field or method descriptor.
    pub descriptor: String,
    /// Raw access flags.
    pub access: u16,
    /// `true` for methods, `false` for fields.
    pub is_method: bool,
}

/// A parsed attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Method bytecode plus its metadata.
    Code(CodeAttribute),
    /// A `final` field's constant value (constant-pool index).
    ConstantValue(u16),
    /// Checked exceptions a method declares (constant-pool `Class` indices).
    Exceptions(Vec<u16>),
    /// Source file name (constant-pool `Utf8` index).
    SourceFile(u16),
    /// Marks compiler- or service-generated members.
    Synthetic,
    /// Marks members that should not be used (paper-era `Deprecated`).
    Deprecated,
    /// The DVM reflection attribute (§4.3): a self-describing digest of the
    /// class's exported members, attached by the proxy so injected checks can
    /// avoid the slow reflection path.
    DvmSelfDescribing(Vec<ExportedMember>),
    /// Any attribute this crate does not interpret; preserved verbatim.
    Unknown {
        /// Attribute name.
        name: String,
        /// Raw attribute payload.
        data: Vec<u8>,
    },
}

impl Attribute {
    /// The attribute's name as written in the class file.
    pub fn name(&self) -> &str {
        match self {
            Attribute::Code(_) => "Code",
            Attribute::ConstantValue(_) => "ConstantValue",
            Attribute::Exceptions(_) => "Exceptions",
            Attribute::SourceFile(_) => "SourceFile",
            Attribute::Synthetic => "Synthetic",
            Attribute::Deprecated => "Deprecated",
            Attribute::DvmSelfDescribing(_) => "DvmSelfDescribing",
            Attribute::Unknown { name, .. } => name,
        }
    }

    /// Parses one attribute from `r`, resolving its name through `pool`.
    pub fn parse(r: &mut Reader<'_>, pool: &ConstPool) -> Result<Attribute> {
        let name_index = r.u16("attribute name index")?;
        let name = pool.get_utf8(name_index)?.to_owned();
        let len = r.u32("attribute length")? as usize;
        let data = r.bytes(len, "attribute data")?;
        let mut inner = Reader::new(data);
        let attr = match name.as_str() {
            "Code" => {
                dvm_fuzz::cov!("attr.code");
                let max_stack = inner.u16("max_stack")?;
                let max_locals = inner.u16("max_locals")?;
                let code_len = inner.u32("code length")? as usize;
                let code = inner.bytes(code_len, "code")?.to_vec();
                let et_len = inner.u16("exception table length")?;
                let mut exception_table = Vec::with_capacity(et_len as usize);
                for _ in 0..et_len {
                    exception_table.push(ExceptionTableEntry {
                        start_pc: inner.u16("start_pc")?,
                        end_pc: inner.u16("end_pc")?,
                        handler_pc: inner.u16("handler_pc")?,
                        catch_type: inner.u16("catch_type")?,
                    });
                }
                let n_attrs = inner.u16("code attribute count")?;
                let mut attributes = Vec::with_capacity(n_attrs as usize);
                for _ in 0..n_attrs {
                    attributes.push(Attribute::parse(&mut inner, pool)?);
                }
                Attribute::Code(CodeAttribute {
                    max_stack,
                    max_locals,
                    code,
                    exception_table,
                    attributes,
                })
            }
            "ConstantValue" => {
                dvm_fuzz::cov!("attr.constant_value");
                Attribute::ConstantValue(inner.u16("constantvalue index")?)
            }
            "Exceptions" => {
                dvm_fuzz::cov!("attr.exceptions");
                let n = inner.u16("exception count")?;
                let mut v = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    v.push(inner.u16("exception class index")?);
                }
                Attribute::Exceptions(v)
            }
            "SourceFile" => {
                dvm_fuzz::cov!("attr.source_file");
                Attribute::SourceFile(inner.u16("sourcefile index")?)
            }
            "Synthetic" => {
                dvm_fuzz::cov!("attr.synthetic");
                Attribute::Synthetic
            }
            "Deprecated" => {
                dvm_fuzz::cov!("attr.deprecated");
                Attribute::Deprecated
            }
            "DvmSelfDescribing" => {
                dvm_fuzz::cov!("attr.self_describing");
                let n = inner.u16("exported member count")?;
                let mut members = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let name_idx = inner.u16("member name")?;
                    let desc_idx = inner.u16("member descriptor")?;
                    let access = inner.u16("member access")?;
                    let is_method = inner.u8("member kind")? != 0;
                    members.push(ExportedMember {
                        name: pool.get_utf8(name_idx)?.to_owned(),
                        descriptor: pool.get_utf8(desc_idx)?.to_owned(),
                        access,
                        is_method,
                    });
                }
                Attribute::DvmSelfDescribing(members)
            }
            _ => {
                dvm_fuzz::cov!("attr.unknown");
                Attribute::Unknown {
                    name: name.clone(),
                    data: data.to_vec(),
                }
            }
        };
        // Unknown attributes keep their payload verbatim and never advance
        // `inner`, so the exact-length check applies only to parsed kinds.
        if !matches!(attr, Attribute::Unknown { .. }) && !inner.is_empty() {
            dvm_fuzz::cov!("attr.length_mismatch");
            return Err(ClassFileError::BadAttributeLength {
                name,
                declared: len as u32,
                actual: inner.position() as u32,
            });
        }
        Ok(attr)
    }

    /// Serializes this attribute, interning any names it needs into `pool`.
    pub fn write(&self, w: &mut Writer, pool: &mut ConstPool) -> Result<()> {
        let name_index = pool.utf8(self.name())?;
        w.u16(name_index);
        let mut body = Writer::new();
        match self {
            Attribute::Code(c) => {
                body.u16(c.max_stack);
                body.u16(c.max_locals);
                body.u32(c.code.len() as u32);
                body.bytes(&c.code);
                body.u16(c.exception_table.len() as u16);
                for e in &c.exception_table {
                    body.u16(e.start_pc);
                    body.u16(e.end_pc);
                    body.u16(e.handler_pc);
                    body.u16(e.catch_type);
                }
                body.u16(c.attributes.len() as u16);
                for a in &c.attributes {
                    a.write(&mut body, pool)?;
                }
            }
            Attribute::ConstantValue(idx) => body.u16(*idx),
            Attribute::Exceptions(v) => {
                body.u16(v.len() as u16);
                for idx in v {
                    body.u16(*idx);
                }
            }
            Attribute::SourceFile(idx) => body.u16(*idx),
            Attribute::Synthetic | Attribute::Deprecated => {}
            Attribute::DvmSelfDescribing(members) => {
                body.u16(members.len() as u16);
                for m in members {
                    let n = pool.utf8(&m.name)?;
                    let d = pool.utf8(&m.descriptor)?;
                    body.u16(n);
                    body.u16(d);
                    body.u16(m.access);
                    body.u8(if m.is_method { 1 } else { 0 });
                }
            }
            Attribute::Unknown { data, .. } => body.bytes(data),
        }
        let bytes = body.into_bytes();
        w.u32(bytes.len() as u32);
        w.bytes(&bytes);
        Ok(())
    }
}

/// Parses an attribute list preceded by its `u16` count.
pub fn parse_attributes(r: &mut Reader<'_>, pool: &ConstPool) -> Result<Vec<Attribute>> {
    let n = r.u16("attribute count")?;
    let mut v = Vec::with_capacity(n as usize);
    for _ in 0..n {
        v.push(Attribute::parse(r, pool)?);
    }
    Ok(v)
}

/// Writes an attribute list preceded by its `u16` count.
pub fn write_attributes(attrs: &[Attribute], w: &mut Writer, pool: &mut ConstPool) -> Result<()> {
    w.u16(attrs.len() as u16);
    for a in attrs {
        a.write(w, pool)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(attr: Attribute) -> Attribute {
        let mut pool = ConstPool::new();
        // Pre-intern so indices in the attribute are resolvable if needed.
        let mut w = Writer::new();
        attr.write(&mut w, &mut pool).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        Attribute::parse(&mut r, &pool).unwrap()
    }

    #[test]
    fn code_attribute_round_trip() {
        let code = CodeAttribute {
            max_stack: 3,
            max_locals: 2,
            code: vec![0x03, 0xAC], // iconst_0; ireturn
            exception_table: vec![ExceptionTableEntry {
                start_pc: 0,
                end_pc: 2,
                handler_pc: 2,
                catch_type: 0,
            }],
            attributes: vec![],
        };
        let attr = Attribute::Code(code.clone());
        match round_trip(attr) {
            Attribute::Code(c) => assert_eq!(c, code),
            other => panic!("expected Code, got {other:?}"),
        }
    }

    #[test]
    fn self_describing_round_trip() {
        let members = vec![
            ExportedMember {
                name: "out".into(),
                descriptor: "Ljava/io/PrintStream;".into(),
                access: 0x0009,
                is_method: false,
            },
            ExportedMember {
                name: "println".into(),
                descriptor: "(Ljava/lang/String;)V".into(),
                access: 0x0001,
                is_method: true,
            },
        ];
        let attr = Attribute::DvmSelfDescribing(members.clone());
        match round_trip(attr) {
            Attribute::DvmSelfDescribing(m) => assert_eq!(m, members),
            other => panic!("expected DvmSelfDescribing, got {other:?}"),
        }
    }

    #[test]
    fn unknown_attribute_preserved_verbatim() {
        let attr = Attribute::Unknown {
            name: "Custom".into(),
            data: vec![1, 2, 3, 4],
        };
        assert_eq!(round_trip(attr.clone()), attr);
    }

    #[test]
    fn flag_attributes_have_empty_bodies() {
        assert_eq!(round_trip(Attribute::Synthetic), Attribute::Synthetic);
        assert_eq!(round_trip(Attribute::Deprecated), Attribute::Deprecated);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Hand-craft a ConstantValue attribute with a 4-byte body.
        let mut pool = ConstPool::new();
        let name = pool.utf8("ConstantValue").unwrap();
        let mut w = Writer::new();
        w.u16(name);
        w.u32(4);
        w.u32(0xAABB_CCDD);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Attribute::parse(&mut r, &pool),
            Err(ClassFileError::BadAttributeLength { .. })
        ));
    }
}
