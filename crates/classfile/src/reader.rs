//! Big-endian byte-stream reader used by the class-file parser.

use crate::error::{ClassFileError, Result};

/// A cursor over an input byte slice that reads big-endian primitives.
///
/// All class-file quantities are big-endian per the JVM specification.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Returns the current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns the number of bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns `true` when the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn need(&self, n: usize, context: &'static str) -> Result<()> {
        if self.remaining() < n {
            Err(ClassFileError::UnexpectedEof {
                offset: self.pos,
                context,
            })
        } else {
            Ok(())
        }
    }

    /// Reads one unsigned byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        self.need(1, context)?;
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16> {
        self.need(2, context)?;
        let v = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        self.need(4, context)?;
        let v = u32::from_be_bytes([
            self.data[self.pos],
            self.data[self.pos + 1],
            self.data[self.pos + 2],
            self.data[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        let hi = self.u32(context)? as u64;
        let lo = self.u32(context)? as u64;
        Ok((hi << 32) | lo)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        self.need(n, context)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_primitives_big_endian() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut r = Reader::new(&data);
        assert_eq!(r.u8("b").unwrap(), 0x01);
        assert_eq!(r.u16("h").unwrap(), 0x0203);
        assert_eq!(r.u32("w").unwrap(), 0x0405_0607);
        assert!(r.is_empty());
    }

    #[test]
    fn eof_reports_offset_and_context() {
        let mut r = Reader::new(&[0xAA]);
        r.u8("first").unwrap();
        let err = r.u16("second").unwrap_err();
        assert_eq!(
            err,
            ClassFileError::UnexpectedEof {
                offset: 1,
                context: "second"
            }
        );
    }

    #[test]
    fn reads_u64_and_slices() {
        let data = [0, 0, 0, 1, 0, 0, 0, 2, 9, 9];
        let mut r = Reader::new(&data);
        assert_eq!(r.u64("l").unwrap(), 0x0000_0001_0000_0002);
        assert_eq!(r.bytes(2, "tail").unwrap(), &[9, 9]);
        assert_eq!(r.position(), 10);
    }
}
