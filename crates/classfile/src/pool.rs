//! The class-file constant pool.
//!
//! The pool is 1-indexed; `Long` and `Double` entries occupy two slots, with
//! the second slot unusable (represented here as [`Constant::Unusable`]).
//! [`ConstPool`] provides deduplicating insertion helpers used by the builder
//! and by binary-rewriting services when they add references to injected
//! runtime components.

use std::collections::HashMap;

use crate::error::{ClassFileError, Result};
use crate::reader::Reader;
use crate::writer::Writer;

/// Constant-pool tags defined by the JVM specification (Java 1.2 era).
pub mod tag {
    /// `CONSTANT_Utf8`.
    pub const UTF8: u8 = 1;
    /// `CONSTANT_Integer`.
    pub const INTEGER: u8 = 3;
    /// `CONSTANT_Float`.
    pub const FLOAT: u8 = 4;
    /// `CONSTANT_Long`.
    pub const LONG: u8 = 5;
    /// `CONSTANT_Double`.
    pub const DOUBLE: u8 = 6;
    /// `CONSTANT_Class`.
    pub const CLASS: u8 = 7;
    /// `CONSTANT_String`.
    pub const STRING: u8 = 8;
    /// `CONSTANT_Fieldref`.
    pub const FIELDREF: u8 = 9;
    /// `CONSTANT_Methodref`.
    pub const METHODREF: u8 = 10;
    /// `CONSTANT_InterfaceMethodref`.
    pub const INTERFACE_METHODREF: u8 = 11;
    /// `CONSTANT_NameAndType`.
    pub const NAME_AND_TYPE: u8 = 12;
}

/// One constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// A modified-UTF-8 string (we require valid UTF-8, which covers all
    /// strings this system generates).
    Utf8(String),
    /// A 32-bit integer constant.
    Integer(i32),
    /// A 32-bit float constant.
    Float(f32),
    /// A 64-bit long constant (occupies two slots).
    Long(i64),
    /// A 64-bit double constant (occupies two slots).
    Double(f64),
    /// A class reference; the index points at a `Utf8` internal name.
    Class {
        /// Index of the `Utf8` entry holding the internal class name.
        name: u16,
    },
    /// A string literal; the index points at a `Utf8` entry.
    String {
        /// Index of the `Utf8` entry holding the string's contents.
        string: u16,
    },
    /// A field reference.
    Fieldref {
        /// Index of the `Class` entry naming the declaring class.
        class: u16,
        /// Index of the `NameAndType` entry.
        name_and_type: u16,
    },
    /// A method reference.
    Methodref {
        /// Index of the `Class` entry naming the declaring class.
        class: u16,
        /// Index of the `NameAndType` entry.
        name_and_type: u16,
    },
    /// An interface-method reference.
    InterfaceMethodref {
        /// Index of the `Class` entry naming the declaring interface.
        class: u16,
        /// Index of the `NameAndType` entry.
        name_and_type: u16,
    },
    /// A name-and-descriptor pair.
    NameAndType {
        /// Index of the `Utf8` entry holding the simple name.
        name: u16,
        /// Index of the `Utf8` entry holding the descriptor.
        descriptor: u16,
    },
    /// The unusable second slot of a `Long` or `Double` entry.
    Unusable,
}

impl Constant {
    /// Returns `true` for entries that occupy two pool slots.
    pub fn is_wide(&self) -> bool {
        matches!(self, Constant::Long(_) | Constant::Double(_))
    }

    /// Returns the short kind name used in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Constant::Utf8(_) => "Utf8",
            Constant::Integer(_) => "Integer",
            Constant::Float(_) => "Float",
            Constant::Long(_) => "Long",
            Constant::Double(_) => "Double",
            Constant::Class { .. } => "Class",
            Constant::String { .. } => "String",
            Constant::Fieldref { .. } => "Fieldref",
            Constant::Methodref { .. } => "Methodref",
            Constant::InterfaceMethodref { .. } => "InterfaceMethodref",
            Constant::NameAndType { .. } => "NameAndType",
            Constant::Unusable => "Unusable",
        }
    }
}

/// Hashable dedup key for constants (floats keyed by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Utf8(String),
    Integer(i32),
    Float(u32),
    Long(i64),
    Double(u64),
    Class(u16),
    String(u16),
    Fieldref(u16, u16),
    Methodref(u16, u16),
    InterfaceMethodref(u16, u16),
    NameAndType(u16, u16),
}

impl Key {
    fn of(c: &Constant) -> Option<Key> {
        Some(match c {
            Constant::Utf8(s) => Key::Utf8(s.clone()),
            Constant::Integer(v) => Key::Integer(*v),
            Constant::Float(v) => Key::Float(v.to_bits()),
            Constant::Long(v) => Key::Long(*v),
            Constant::Double(v) => Key::Double(v.to_bits()),
            Constant::Class { name } => Key::Class(*name),
            Constant::String { string } => Key::String(*string),
            Constant::Fieldref {
                class,
                name_and_type,
            } => Key::Fieldref(*class, *name_and_type),
            Constant::Methodref {
                class,
                name_and_type,
            } => Key::Methodref(*class, *name_and_type),
            Constant::InterfaceMethodref {
                class,
                name_and_type,
            } => Key::InterfaceMethodref(*class, *name_and_type),
            Constant::NameAndType { name, descriptor } => Key::NameAndType(*name, *descriptor),
            Constant::Unusable => return None,
        })
    }
}

/// The constant pool of a class file.
///
/// Indices are 1-based as in the on-disk format; index 0 is invalid.
#[derive(Debug, Clone, Default)]
pub struct ConstPool {
    entries: Vec<Constant>,
    dedup: HashMap<Key, u16>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ConstPool::default()
    }

    /// Number of pool *slots* plus one; this is the `constant_pool_count`
    /// value written to the header.
    pub fn count(&self) -> u16 {
        self.entries.len() as u16 + 1
    }

    /// Number of logical entries, counting wide constants once and including
    /// their unusable slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the pool has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the entry at 1-based `index`.
    pub fn get(&self, index: u16) -> Result<&Constant> {
        if index == 0 || index as usize > self.entries.len() {
            return Err(ClassFileError::BadConstantIndex {
                index,
                expected: "entry",
            });
        }
        Ok(&self.entries[index as usize - 1])
    }

    /// Iterates `(index, entry)` pairs over usable slots.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Constant)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c, Constant::Unusable))
            .map(|(i, c)| (i as u16 + 1, c))
    }

    /// Appends an entry, returning its index. Deduplicates structurally
    /// identical entries.
    pub fn push(&mut self, c: Constant) -> Result<u16> {
        if let Some(key) = Key::of(&c) {
            if let Some(&idx) = self.dedup.get(&key) {
                return Ok(idx);
            }
            let wide = c.is_wide();
            let next = self.entries.len() + 1 + if wide { 1 } else { 0 };
            if next > u16::MAX as usize - 1 {
                return Err(ClassFileError::Overflow("constant-pool entries"));
            }
            self.entries.push(c);
            let idx = self.entries.len() as u16;
            if wide {
                self.entries.push(Constant::Unusable);
            }
            self.dedup.insert(key, idx);
            Ok(idx)
        } else {
            Err(ClassFileError::Malformed(
                "cannot push an Unusable slot".into(),
            ))
        }
    }

    /// Interns a UTF-8 string, returning its index.
    pub fn utf8(&mut self, s: &str) -> Result<u16> {
        self.push(Constant::Utf8(s.to_owned()))
    }

    /// Interns a `Class` entry for the given internal name.
    pub fn class(&mut self, internal_name: &str) -> Result<u16> {
        let name = self.utf8(internal_name)?;
        self.push(Constant::Class { name })
    }

    /// Interns a `String` literal entry.
    pub fn string(&mut self, value: &str) -> Result<u16> {
        let string = self.utf8(value)?;
        self.push(Constant::String { string })
    }

    /// Interns an `Integer` constant.
    pub fn integer(&mut self, v: i32) -> Result<u16> {
        self.push(Constant::Integer(v))
    }

    /// Interns a `Long` constant.
    pub fn long(&mut self, v: i64) -> Result<u16> {
        self.push(Constant::Long(v))
    }

    /// Interns a `Float` constant.
    pub fn float(&mut self, v: f32) -> Result<u16> {
        self.push(Constant::Float(v))
    }

    /// Interns a `Double` constant.
    pub fn double(&mut self, v: f64) -> Result<u16> {
        self.push(Constant::Double(v))
    }

    /// Interns a `NameAndType` entry.
    pub fn name_and_type(&mut self, name: &str, descriptor: &str) -> Result<u16> {
        let n = self.utf8(name)?;
        let d = self.utf8(descriptor)?;
        self.push(Constant::NameAndType {
            name: n,
            descriptor: d,
        })
    }

    /// Interns a `Fieldref` entry.
    pub fn fieldref(&mut self, class: &str, name: &str, descriptor: &str) -> Result<u16> {
        let c = self.class(class)?;
        let nt = self.name_and_type(name, descriptor)?;
        self.push(Constant::Fieldref {
            class: c,
            name_and_type: nt,
        })
    }

    /// Interns a `Methodref` entry.
    pub fn methodref(&mut self, class: &str, name: &str, descriptor: &str) -> Result<u16> {
        let c = self.class(class)?;
        let nt = self.name_and_type(name, descriptor)?;
        self.push(Constant::Methodref {
            class: c,
            name_and_type: nt,
        })
    }

    /// Interns an `InterfaceMethodref` entry.
    pub fn interface_methodref(
        &mut self,
        class: &str,
        name: &str,
        descriptor: &str,
    ) -> Result<u16> {
        let c = self.class(class)?;
        let nt = self.name_and_type(name, descriptor)?;
        self.push(Constant::InterfaceMethodref {
            class: c,
            name_and_type: nt,
        })
    }

    // ---- Typed accessors --------------------------------------------------

    /// Reads the `Utf8` string at `index`.
    pub fn get_utf8(&self, index: u16) -> Result<&str> {
        match self.get(index)? {
            Constant::Utf8(s) => Ok(s),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "Utf8",
            }),
        }
    }

    /// Resolves the `Class` entry at `index` to its internal name.
    pub fn get_class_name(&self, index: u16) -> Result<&str> {
        match self.get(index)? {
            Constant::Class { name } => self.get_utf8(*name),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "Class",
            }),
        }
    }

    /// Resolves the `String` entry at `index` to its contents.
    pub fn get_string(&self, index: u16) -> Result<&str> {
        match self.get(index)? {
            Constant::String { string } => self.get_utf8(*string),
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "String",
            }),
        }
    }

    /// Resolves the `NameAndType` entry at `index` to `(name, descriptor)`.
    pub fn get_name_and_type(&self, index: u16) -> Result<(&str, &str)> {
        match self.get(index)? {
            Constant::NameAndType { name, descriptor } => {
                Ok((self.get_utf8(*name)?, self.get_utf8(*descriptor)?))
            }
            _ => Err(ClassFileError::BadConstantIndex {
                index,
                expected: "NameAndType",
            }),
        }
    }

    /// Resolves any member reference (field, method, or interface method) at
    /// `index` to `(class_name, member_name, descriptor)`.
    pub fn get_member_ref(&self, index: u16) -> Result<(&str, &str, &str)> {
        let (class, nt) = match self.get(index)? {
            Constant::Fieldref {
                class,
                name_and_type,
            }
            | Constant::Methodref {
                class,
                name_and_type,
            }
            | Constant::InterfaceMethodref {
                class,
                name_and_type,
            } => (*class, *name_and_type),
            _ => {
                return Err(ClassFileError::BadConstantIndex {
                    index,
                    expected: "member ref",
                });
            }
        };
        let cname = self.get_class_name(class)?;
        let (name, desc) = self.get_name_and_type(nt)?;
        Ok((cname, name, desc))
    }

    // ---- Parsing and serialization ----------------------------------------

    /// Parses `constant_pool_count` and the pool entries from `r`.
    pub fn parse(r: &mut Reader<'_>) -> Result<ConstPool> {
        let count = r.u16("constant_pool_count")?;
        let mut pool = ConstPool::new();
        let mut i = 1u16;
        while i < count {
            let tag = r.u8("constant tag")?;
            let c = match tag {
                tag::UTF8 => {
                    dvm_fuzz::cov!("pool.tag.utf8");
                    let len = r.u16("utf8 length")? as usize;
                    let bytes = r.bytes(len, "utf8 bytes")?;
                    let s = std::str::from_utf8(bytes).map_err(|_| {
                        dvm_fuzz::cov!("pool.utf8.invalid");
                        ClassFileError::BadUtf8 { index: i }
                    })?;
                    Constant::Utf8(s.to_owned())
                }
                tag::INTEGER => {
                    dvm_fuzz::cov!("pool.tag.integer");
                    Constant::Integer(r.u32("integer")? as i32)
                }
                tag::FLOAT => {
                    dvm_fuzz::cov!("pool.tag.float");
                    Constant::Float(f32::from_bits(r.u32("float")?))
                }
                tag::LONG => {
                    dvm_fuzz::cov!("pool.tag.long");
                    Constant::Long(r.u64("long")? as i64)
                }
                tag::DOUBLE => {
                    dvm_fuzz::cov!("pool.tag.double");
                    Constant::Double(f64::from_bits(r.u64("double")?))
                }
                tag::CLASS => {
                    dvm_fuzz::cov!("pool.tag.class");
                    Constant::Class {
                        name: r.u16("class name index")?,
                    }
                }
                tag::STRING => {
                    dvm_fuzz::cov!("pool.tag.string");
                    Constant::String {
                        string: r.u16("string index")?,
                    }
                }
                tag::FIELDREF => {
                    dvm_fuzz::cov!("pool.tag.fieldref");
                    Constant::Fieldref {
                        class: r.u16("fieldref class")?,
                        name_and_type: r.u16("fieldref nat")?,
                    }
                }
                tag::METHODREF => {
                    dvm_fuzz::cov!("pool.tag.methodref");
                    Constant::Methodref {
                        class: r.u16("methodref class")?,
                        name_and_type: r.u16("methodref nat")?,
                    }
                }
                tag::INTERFACE_METHODREF => {
                    dvm_fuzz::cov!("pool.tag.imethodref");
                    Constant::InterfaceMethodref {
                        class: r.u16("imethodref class")?,
                        name_and_type: r.u16("imethodref nat")?,
                    }
                }
                tag::NAME_AND_TYPE => {
                    dvm_fuzz::cov!("pool.tag.nat");
                    Constant::NameAndType {
                        name: r.u16("nat name")?,
                        descriptor: r.u16("nat descriptor")?,
                    }
                }
                other => {
                    dvm_fuzz::cov!("pool.tag.bad");
                    return Err(ClassFileError::BadConstantTag(other));
                }
            };
            let wide = c.is_wide();
            // Parsing must preserve indices exactly, so bypass dedup.
            if let Some(key) = Key::of(&c) {
                pool.dedup
                    .entry(key)
                    .or_insert(pool.entries.len() as u16 + 1);
            }
            pool.entries.push(c);
            if wide {
                pool.entries.push(Constant::Unusable);
                i += 1;
            }
            i += 1;
        }
        Ok(pool)
    }

    /// Serializes `constant_pool_count` and the entries to `w`.
    pub fn write(&self, w: &mut Writer) {
        w.u16(self.count());
        for entry in &self.entries {
            match entry {
                Constant::Utf8(s) => {
                    w.u8(tag::UTF8);
                    w.u16(s.len() as u16);
                    w.bytes(s.as_bytes());
                }
                Constant::Integer(v) => {
                    w.u8(tag::INTEGER);
                    w.u32(*v as u32);
                }
                Constant::Float(v) => {
                    w.u8(tag::FLOAT);
                    w.u32(v.to_bits());
                }
                Constant::Long(v) => {
                    w.u8(tag::LONG);
                    w.u64(*v as u64);
                }
                Constant::Double(v) => {
                    w.u8(tag::DOUBLE);
                    w.u64(v.to_bits());
                }
                Constant::Class { name } => {
                    w.u8(tag::CLASS);
                    w.u16(*name);
                }
                Constant::String { string } => {
                    w.u8(tag::STRING);
                    w.u16(*string);
                }
                Constant::Fieldref {
                    class,
                    name_and_type,
                } => {
                    w.u8(tag::FIELDREF);
                    w.u16(*class);
                    w.u16(*name_and_type);
                }
                Constant::Methodref {
                    class,
                    name_and_type,
                } => {
                    w.u8(tag::METHODREF);
                    w.u16(*class);
                    w.u16(*name_and_type);
                }
                Constant::InterfaceMethodref {
                    class,
                    name_and_type,
                } => {
                    w.u8(tag::INTERFACE_METHODREF);
                    w.u16(*class);
                    w.u16(*name_and_type);
                }
                Constant::NameAndType { name, descriptor } => {
                    w.u8(tag::NAME_AND_TYPE);
                    w.u16(*name);
                    w.u16(*descriptor);
                }
                Constant::Unusable => {}
            }
        }
    }

    /// Verifies that every cross-reference inside the pool points at an entry
    /// of the right kind (phase-1 structural checking uses this).
    pub fn check_structure(&self) -> Result<()> {
        for (idx, entry) in self.iter() {
            match entry {
                Constant::Class { name } => {
                    self.get_utf8(*name)
                        .map_err(|_| ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "Class.name -> Utf8",
                        })?;
                }
                Constant::String { string } => {
                    self.get_utf8(*string)
                        .map_err(|_| ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "String.string -> Utf8",
                        })?;
                }
                Constant::Fieldref {
                    class,
                    name_and_type,
                }
                | Constant::Methodref {
                    class,
                    name_and_type,
                }
                | Constant::InterfaceMethodref {
                    class,
                    name_and_type,
                } => {
                    self.get_class_name(*class)
                        .map_err(|_| ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "ref.class -> Class",
                        })?;
                    self.get_name_and_type(*name_and_type).map_err(|_| {
                        ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "ref.name_and_type -> NameAndType",
                        }
                    })?;
                }
                Constant::NameAndType { name, descriptor } => {
                    self.get_utf8(*name)
                        .map_err(|_| ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "NameAndType.name -> Utf8",
                        })?;
                    self.get_utf8(*descriptor)
                        .map_err(|_| ClassFileError::BadConstantIndex {
                            index: idx,
                            expected: "NameAndType.descriptor -> Utf8",
                        })?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut p = ConstPool::new();
        let a = p.utf8("hello").unwrap();
        let b = p.utf8("hello").unwrap();
        assert_eq!(a, b);
        let c = p.class("java/lang/Object").unwrap();
        let d = p.class("java/lang/Object").unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn wide_constants_occupy_two_slots() {
        let mut p = ConstPool::new();
        let l = p.long(42).unwrap();
        let next = p.utf8("after").unwrap();
        assert_eq!(l, 1);
        assert_eq!(next, 3);
        assert!(matches!(p.get(2).unwrap(), Constant::Unusable));
    }

    #[test]
    fn member_ref_resolution() {
        let mut p = ConstPool::new();
        let m = p
            .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        let (c, n, d) = p.get_member_ref(m).unwrap();
        assert_eq!(c, "java/io/PrintStream");
        assert_eq!(n, "println");
        assert_eq!(d, "(Ljava/lang/String;)V");
    }

    #[test]
    fn parse_write_round_trip() {
        let mut p = ConstPool::new();
        p.utf8("abc").unwrap();
        p.integer(-7).unwrap();
        p.float(1.5).unwrap();
        p.long(1 << 40).unwrap();
        p.double(-2.25).unwrap();
        p.class("Foo").unwrap();
        p.string("bar").unwrap();
        p.fieldref("Foo", "f", "I").unwrap();
        p.methodref("Foo", "m", "()V").unwrap();
        p.interface_methodref("IFoo", "n", "()I").unwrap();

        let mut w = Writer::new();
        p.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let q = ConstPool::parse(&mut r).unwrap();
        assert_eq!(p.count(), q.count());
        for (i, c) in p.iter() {
            assert_eq!(q.get(i).unwrap(), c, "entry {i}");
        }
        q.check_structure().unwrap();
    }

    #[test]
    fn structural_check_catches_dangling_reference() {
        let mut p = ConstPool::new();
        // A Class entry whose name index points past the pool.
        p.push(Constant::Class { name: 99 }).unwrap();
        assert!(p.check_structure().is_err());
    }

    #[test]
    fn zero_index_is_rejected() {
        let p = ConstPool::new();
        assert!(p.get(0).is_err());
    }
}
