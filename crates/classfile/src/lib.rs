//! Java class-file format: parsing, serialization, and a builder API.
//!
//! This crate is the substrate every DVM service stands on. The paper's
//! proxy "parses JVM bytecodes and generates the instrumented program in the
//! appropriate binary format" exactly once for all static services (§3);
//! [`ClassFile::parse`] and [`ClassFile::to_bytes`] are that parse and
//! generate step, and [`builder::ClassBuilder`] is how services and the
//! workload generator synthesize new classes.
//!
//! # Examples
//!
//! ```
//! use dvm_classfile::access::AccessFlags;
//! use dvm_classfile::attributes::CodeAttribute;
//! use dvm_classfile::builder::ClassBuilder;
//! use dvm_classfile::class::ClassFile;
//!
//! let mut class = ClassBuilder::new("hello/Hello")
//!     .method(
//!         AccessFlags::PUBLIC | AccessFlags::STATIC,
//!         "zero",
//!         "()I",
//!         CodeAttribute {
//!             max_stack: 1,
//!             max_locals: 0,
//!             code: vec![0x03, 0xAC], // iconst_0; ireturn
//!             ..Default::default()
//!         },
//!     )
//!     .build();
//! let bytes = class.to_bytes().unwrap();
//! let parsed = ClassFile::parse(&bytes).unwrap();
//! assert_eq!(parsed.name().unwrap(), "hello/Hello");
//! ```

pub mod access;
pub mod attributes;
pub mod builder;
pub mod class;
pub mod descriptor;
pub mod error;
pub mod member;
pub mod pool;
pub mod reader;
pub mod writer;

pub use access::AccessFlags;
pub use attributes::{Attribute, CodeAttribute, ExceptionTableEntry};
pub use builder::ClassBuilder;
pub use class::ClassFile;
pub use descriptor::{FieldType, MethodDescriptor};
pub use error::{ClassFileError, Result};
pub use member::MemberInfo;
pub use pool::{ConstPool, Constant};
