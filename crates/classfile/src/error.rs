//! Error type shared by the class-file parser and serializer.

use std::fmt;

/// Errors produced while reading, validating, or writing a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassFileError {
    /// The input ended before a complete structure could be read.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
        /// What the parser was trying to read.
        context: &'static str,
    },
    /// The leading magic number was not `0xCAFEBABE`.
    BadMagic(u32),
    /// The class-file version is outside the supported range.
    UnsupportedVersion {
        /// Major version found in the header.
        major: u16,
        /// Minor version found in the header.
        minor: u16,
    },
    /// A constant-pool entry had an unknown tag byte.
    BadConstantTag(u8),
    /// A constant-pool index was zero, out of range, or pointed at an entry
    /// of the wrong kind.
    BadConstantIndex {
        /// The offending index.
        index: u16,
        /// The entry kind that was expected at that index.
        expected: &'static str,
    },
    /// A UTF-8 constant contained invalid byte sequences.
    BadUtf8 {
        /// Constant-pool index of the offending entry.
        index: u16,
    },
    /// A field or method descriptor string was malformed.
    BadDescriptor(String),
    /// An attribute's declared length did not match its content.
    BadAttributeLength {
        /// Attribute name.
        name: String,
        /// Declared length in bytes.
        declared: u32,
        /// Bytes actually consumed.
        actual: u32,
    },
    /// A structural rule of the format was violated.
    Malformed(String),
    /// A value did not fit in the field that must encode it (e.g. more than
    /// 65535 constants).
    Overflow(&'static str),
}

impl fmt::Display for ClassFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassFileError::UnexpectedEof { offset, context } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} while reading {context}"
                )
            }
            ClassFileError::BadMagic(m) => write!(f, "bad magic number {m:#010x}"),
            ClassFileError::UnsupportedVersion { major, minor } => {
                write!(f, "unsupported class-file version {major}.{minor}")
            }
            ClassFileError::BadConstantTag(t) => write!(f, "unknown constant-pool tag {t}"),
            ClassFileError::BadConstantIndex { index, expected } => {
                write!(f, "constant-pool index {index} is not a valid {expected}")
            }
            ClassFileError::BadUtf8 { index } => {
                write!(f, "constant-pool entry {index} is not valid UTF-8")
            }
            ClassFileError::BadDescriptor(d) => write!(f, "malformed descriptor {d:?}"),
            ClassFileError::BadAttributeLength {
                name,
                declared,
                actual,
            } => write!(
                f,
                "attribute {name:?} declared {declared} bytes but contained {actual}"
            ),
            ClassFileError::Malformed(msg) => write!(f, "malformed class file: {msg}"),
            ClassFileError::Overflow(what) => write!(f, "too many {what} to encode"),
        }
    }
}

impl std::error::Error for ClassFileError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ClassFileError>;
