//! A builder for synthesizing class files programmatically.
//!
//! The workload generator and the rewriting services both construct classes
//! through this API. Method bodies are supplied as raw bytecode; the
//! `dvm-bytecode` crate layers an instruction-level assembler on top.

use crate::access::AccessFlags;
use crate::attributes::{Attribute, CodeAttribute};
use crate::class::{ClassFile, MAJOR_VERSION, MINOR_VERSION};
use crate::error::Result;
use crate::member::MemberInfo;
use crate::pool::ConstPool;

/// Fluent builder producing a [`ClassFile`].
#[derive(Debug)]
pub struct ClassBuilder {
    name: String,
    super_name: Option<String>,
    interfaces: Vec<String>,
    access: AccessFlags,
    fields: Vec<PendingField>,
    methods: Vec<PendingMethod>,
    attributes: Vec<Attribute>,
}

#[derive(Debug)]
struct PendingField {
    access: AccessFlags,
    name: String,
    descriptor: String,
    attributes: Vec<Attribute>,
}

#[derive(Debug)]
struct PendingMethod {
    access: AccessFlags,
    name: String,
    descriptor: String,
    code: Option<CodeAttribute>,
    attributes: Vec<Attribute>,
}

impl ClassBuilder {
    /// Starts a builder for a class with the given internal name.
    ///
    /// The superclass defaults to `java/lang/Object` and the access flags to
    /// `public`.
    pub fn new(name: &str) -> ClassBuilder {
        ClassBuilder {
            name: name.to_owned(),
            super_name: Some("java/lang/Object".to_owned()),
            interfaces: Vec::new(),
            access: AccessFlags::PUBLIC | AccessFlags::SUPER_OR_SYNCHRONIZED,
            fields: Vec::new(),
            methods: Vec::new(),
            attributes: Vec::new(),
        }
    }

    /// Sets the superclass by internal name.
    pub fn super_class(mut self, name: &str) -> Self {
        self.super_name = Some(name.to_owned());
        self
    }

    /// Marks the class as having no superclass (only valid for
    /// `java/lang/Object`).
    pub fn no_super_class(mut self) -> Self {
        self.super_name = None;
        self
    }

    /// Replaces the class access flags.
    pub fn access(mut self, access: AccessFlags) -> Self {
        self.access = access | AccessFlags::SUPER_OR_SYNCHRONIZED;
        self
    }

    /// Adds an implemented interface by internal name.
    pub fn interface(mut self, name: &str) -> Self {
        self.interfaces.push(name.to_owned());
        self
    }

    /// Adds a field.
    pub fn field(mut self, access: AccessFlags, name: &str, descriptor: &str) -> Self {
        self.fields.push(PendingField {
            access,
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            attributes: Vec::new(),
        });
        self
    }

    /// Adds a method with a bytecode body.
    pub fn method(
        mut self,
        access: AccessFlags,
        name: &str,
        descriptor: &str,
        code: CodeAttribute,
    ) -> Self {
        self.methods.push(PendingMethod {
            access,
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            code: Some(code),
            attributes: Vec::new(),
        });
        self
    }

    /// Adds a method without a body (`abstract` or `native`).
    pub fn bodyless_method(mut self, access: AccessFlags, name: &str, descriptor: &str) -> Self {
        self.methods.push(PendingMethod {
            access,
            name: name.to_owned(),
            descriptor: descriptor.to_owned(),
            code: None,
            attributes: Vec::new(),
        });
        self
    }

    /// Adds a class-level attribute.
    pub fn attribute(mut self, attr: Attribute) -> Self {
        self.attributes.push(attr);
        self
    }

    /// Builds the [`ClassFile`].
    ///
    /// # Panics
    ///
    /// Panics only if the class exceeds format limits (more than 65534
    /// constants), which generated workloads never approach; use
    /// [`ClassBuilder::try_build`] when synthesizing untrusted sizes.
    pub fn build(self) -> ClassFile {
        self.try_build()
            .expect("class exceeds class-file format limits")
    }

    /// Builds the [`ClassFile`], reporting format-limit overflows as errors.
    pub fn try_build(self) -> Result<ClassFile> {
        let mut pool = ConstPool::new();
        let this_class = pool.class(&self.name)?;
        let super_class = match &self.super_name {
            Some(n) => pool.class(n)?,
            None => 0,
        };
        let mut interfaces = Vec::with_capacity(self.interfaces.len());
        for i in &self.interfaces {
            interfaces.push(pool.class(i)?);
        }
        let mut fields = Vec::with_capacity(self.fields.len());
        for f in self.fields {
            let name_index = pool.utf8(&f.name)?;
            let descriptor_index = pool.utf8(&f.descriptor)?;
            fields.push(MemberInfo {
                access: f.access,
                name_index,
                descriptor_index,
                attributes: f.attributes,
            });
        }
        let mut methods = Vec::with_capacity(self.methods.len());
        for m in self.methods {
            let name_index = pool.utf8(&m.name)?;
            let descriptor_index = pool.utf8(&m.descriptor)?;
            let mut attributes = m.attributes;
            if let Some(code) = m.code {
                attributes.push(Attribute::Code(code));
            }
            methods.push(MemberInfo {
                access: m.access,
                name_index,
                descriptor_index,
                attributes,
            });
        }
        Ok(ClassFile {
            minor_version: MINOR_VERSION,
            major_version: MAJOR_VERSION,
            pool,
            access: self.access,
            this_class,
            super_class,
            interfaces,
            fields,
            methods,
            attributes: self.attributes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_fields_and_methods() {
        let cf = ClassBuilder::new("demo/Point")
            .field(AccessFlags::PRIVATE, "x", "I")
            .field(AccessFlags::PRIVATE, "y", "I")
            .method(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "origin",
                "()Ldemo/Point;",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    code: vec![0x01, 0xB0],
                    ..Default::default()
                },
            )
            .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "hash", "()I")
            .build();
        assert_eq!(cf.fields.len(), 2);
        assert_eq!(cf.methods.len(), 2);
        assert!(cf.find_field("x").is_some());
        assert!(cf.find_method("origin", "()Ldemo/Point;").is_some());
        assert!(cf.find_method("hash", "()I").unwrap().code().is_none());
    }

    #[test]
    fn interfaces_are_recorded() {
        let cf = ClassBuilder::new("demo/Impl")
            .interface("demo/IFace")
            .interface("demo/Other")
            .build();
        assert_eq!(
            cf.interface_names().unwrap(),
            vec!["demo/IFace", "demo/Other"]
        );
    }

    #[test]
    fn full_round_trip_with_members() {
        let mut cf = ClassBuilder::new("demo/Rt")
            .field(AccessFlags::PUBLIC | AccessFlags::STATIC, "count", "J")
            .method(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "zero",
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    code: vec![0x03, 0xAC],
                    ..Default::default()
                },
            )
            .build();
        let bytes = cf.to_bytes().unwrap();
        let parsed = crate::class::ClassFile::parse(&bytes).unwrap();
        assert_eq!(parsed.name().unwrap(), "demo/Rt");
        let m = parsed.find_method("zero", "()I").unwrap();
        assert_eq!(m.code().unwrap().code, vec![0x03, 0xAC]);
    }
}
