//! The security server and the client-side enforcement manager.
//!
//! The server holds the organization policy and answers access queries;
//! each client runs a small enforcement manager that caches results. A
//! cache-invalidation protocol lets the server propagate policy changes:
//! every grant/revoke clears the registered client caches (§3.2).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::policy::{PermissionId, Policy, SecurityId};

/// Simulated cycles for downloading the relevant policy portion on the
/// first check (the paper's "download" column in Figure 9: ~5 ms at
/// 200 MHz).
pub const POLICY_DOWNLOAD_CYCLES: u64 = 1_000_000;

/// Simulated cycles for a warm enforcement-manager cache hit (~7 µs).
pub const CACHE_HIT_CYCLES: u64 = 1_440;

/// Simulated cycles for a post-download cache miss answered by the server
/// over the LAN.
pub const SERVER_QUERY_CYCLES: u64 = 36_000;

/// Server-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Access queries answered.
    pub queries: u64,
    /// Policy updates applied.
    pub updates: u64,
    /// Cache invalidations pushed to clients.
    pub invalidations_sent: u64,
}

type CacheCell = Mutex<HashMap<(SecurityId, PermissionId), bool>>;

/// The centralized security service.
#[derive(Debug)]
pub struct SecurityServer {
    policy: Policy,
    clients: Vec<Arc<CacheCell>>,
    /// Statistics.
    pub stats: ServerStats,
}

impl SecurityServer {
    /// Creates a server around a policy.
    pub fn new(policy: Policy) -> SecurityServer {
        SecurityServer {
            policy,
            clients: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Read access to the policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Answers one access query.
    pub fn query(&mut self, sid: SecurityId, perm: PermissionId) -> bool {
        self.stats.queries += 1;
        self.policy.allows(sid, perm)
    }

    /// Grants a permission and invalidates client caches.
    pub fn grant(&mut self, sid: SecurityId, perm: PermissionId) {
        self.policy.grant(sid, perm);
        self.invalidate_clients();
    }

    /// Revokes a permission and invalidates client caches.
    pub fn revoke(&mut self, sid: SecurityId, perm: PermissionId) {
        self.policy.revoke(sid, perm);
        self.invalidate_clients();
    }

    fn invalidate_clients(&mut self) {
        self.stats.updates += 1;
        for c in &self.clients {
            c.lock().clear();
            self.stats.invalidations_sent += 1;
        }
    }

    fn register(&mut self) -> Arc<CacheCell> {
        let cell = Arc::new(Mutex::new(HashMap::new()));
        self.clients.push(cell.clone());
        cell
    }
}

/// Client-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnforcementStats {
    /// Checks answered from the local cache.
    pub cache_hits: u64,
    /// Checks that queried the server.
    pub cache_misses: u64,
    /// Policy-portion downloads performed (first check).
    pub downloads: u64,
    /// Checks denied.
    pub denials: u64,
}

/// The enforcement manager: the dynamic component of the security service,
/// resident on each client.
#[derive(Debug)]
pub struct EnforcementManager {
    server: Arc<Mutex<SecurityServer>>,
    cache: Arc<CacheCell>,
    downloaded: bool,
    /// Statistics.
    pub stats: EnforcementStats,
}

impl EnforcementManager {
    /// Registers a new client with `server`.
    pub fn register(server: Arc<Mutex<SecurityServer>>) -> EnforcementManager {
        let cache = server.lock().register();
        EnforcementManager {
            server,
            cache,
            downloaded: false,
            stats: EnforcementStats::default(),
        }
    }

    /// Performs an access check, returning the decision and its simulated
    /// cycle cost.
    pub fn check(&mut self, sid: SecurityId, perm: PermissionId) -> (bool, u64) {
        if let Some(&allowed) = self.cache.lock().get(&(sid, perm)) {
            self.stats.cache_hits += 1;
            if !allowed {
                self.stats.denials += 1;
            }
            return (allowed, CACHE_HIT_CYCLES);
        }
        let cost = if self.downloaded {
            self.stats.cache_misses += 1;
            SERVER_QUERY_CYCLES
        } else {
            // First check ever: fetch the relevant portion of the global
            // policy from the server.
            self.downloaded = true;
            self.stats.downloads += 1;
            POLICY_DOWNLOAD_CYCLES
        };
        let allowed = self.server.lock().query(sid, perm);
        self.cache.lock().insert((sid, perm), allowed);
        if !allowed {
            self.stats.denials += 1;
        }
        (allowed, cost)
    }

    /// Returns `true` when the cache currently holds an entry for the pair
    /// (used by the cache-invalidation tests and ablation bench).
    pub fn is_cached(&self, sid: SecurityId, perm: PermissionId) -> bool {
        self.cache.lock().contains_key(&(sid, perm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::example_policy;

    fn setup() -> (
        Arc<Mutex<SecurityServer>>,
        EnforcementManager,
        SecurityId,
        PermissionId,
    ) {
        let policy = Policy::parse(example_policy()).unwrap();
        let sid = policy.principals["applets"];
        let perm = policy.permissions["file.read"];
        let server = Arc::new(Mutex::new(SecurityServer::new(policy)));
        let em = EnforcementManager::register(server.clone());
        (server, em, sid, perm)
    }

    #[test]
    fn first_check_downloads_then_hits_cache() {
        let (_server, mut em, sid, perm) = setup();
        let (ok, cost) = em.check(sid, perm);
        assert!(ok);
        assert_eq!(cost, POLICY_DOWNLOAD_CYCLES);
        let (ok, cost) = em.check(sid, perm);
        assert!(ok);
        assert_eq!(cost, CACHE_HIT_CYCLES);
        assert_eq!(em.stats.downloads, 1);
        assert_eq!(em.stats.cache_hits, 1);
    }

    #[test]
    fn revocation_invalidates_client_caches() {
        let (server, mut em, sid, perm) = setup();
        em.check(sid, perm);
        assert!(em.is_cached(sid, perm));
        server.lock().revoke(sid, perm);
        assert!(
            !em.is_cached(sid, perm),
            "invalidation must clear the cache"
        );
        let (ok, _) = em.check(sid, perm);
        assert!(!ok, "revoked permission must now be denied");
        assert_eq!(em.stats.denials, 1);
    }

    #[test]
    fn grant_propagates_to_clients() {
        let (server, mut em, sid, _) = setup();
        let new_perm = PermissionId(99);
        let (ok, _) = em.check(sid, new_perm);
        assert!(!ok);
        server.lock().grant(sid, new_perm);
        let (ok, _) = em.check(sid, new_perm);
        assert!(ok);
    }

    #[test]
    fn multiple_clients_all_invalidate() {
        let (server, mut em1, sid, perm) = setup();
        let mut em2 = EnforcementManager::register(server.clone());
        em1.check(sid, perm);
        em2.check(sid, perm);
        server.lock().revoke(sid, perm);
        assert!(!em1.is_cached(sid, perm));
        assert!(!em2.is_cached(sid, perm));
        assert_eq!(server.lock().stats.invalidations_sent, 2);
    }
}
