//! The security rewriter: the static component of the security service.
//!
//! Given the organization policy and the principal an application runs as,
//! the rewriter scans every method body for call sites that match a policy
//! operation and inserts `dvm/rt/Enforcer.check(sid, perm)` immediately
//! before them (§3.2: "inserting calls to the enforcement manager at method
//! and constructor boundaries so that resource accesses are preceded by the
//! appropriate access checks").

use dvm_bytecode::insn::Insn;
use dvm_bytecode::{Code, CodeEditor};
use dvm_classfile::ClassFile;

use crate::policy::{Policy, SecurityId};

/// Statistics from a rewriting pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecurityRewriteStats {
    /// Call sites instrumented.
    pub checks_inserted: u64,
    /// Methods whose bodies were modified.
    pub methods_instrumented: u64,
    /// Instructions examined (the policy in §4.1 "forces the DVM services
    /// to parse every class and examine every instruction").
    pub instructions_examined: u64,
}

/// Error from the rewriting pass (malformed method bodies).
pub type RewriteError = dvm_bytecode::BytecodeError;

/// Rewrites `cf` so that every protected call site checks `sid`'s
/// permission first.
pub fn secure_class(
    cf: &mut ClassFile,
    policy: &Policy,
    sid: SecurityId,
) -> Result<SecurityRewriteStats, RewriteError> {
    let mut stats = SecurityRewriteStats::default();
    let enforcer = cf.pool.methodref("dvm/rt/Enforcer", "check", "(II)V")?;

    // Pre-resolve the member refs of instrumentable call sites once per
    // class: map pool index -> required permission.
    let mut protected: Vec<(u16, u32)> = Vec::new();
    for (idx, _) in cf.pool.clone().iter() {
        if let Ok((class, name, _)) = cf.pool.get_member_ref(idx) {
            if let Some(perm) = policy.operation_permission(class, name) {
                protected.push((idx, perm.0));
            }
        }
    }

    let pool_snapshot = cf.pool.clone();
    for m in &mut cf.methods {
        let Some(attr) = m.code() else { continue };
        let code = Code::decode(attr)?;
        stats.instructions_examined += code.insns.len() as u64;
        let mut inserted = 0u64;
        let mut ed = CodeEditor::new(code);
        ed.insert_before_matching(
            |insn| match insn {
                Insn::InvokeVirtual(i)
                | Insn::InvokeSpecial(i)
                | Insn::InvokeStatic(i)
                | Insn::InvokeInterface(i) => protected.iter().any(|(p, _)| p == i),
                _ => false,
            },
            |_, insn| {
                let idx = match insn {
                    Insn::InvokeVirtual(i)
                    | Insn::InvokeSpecial(i)
                    | Insn::InvokeStatic(i)
                    | Insn::InvokeInterface(i) => *i,
                    _ => unreachable!("matched above"),
                };
                let perm = protected
                    .iter()
                    .find(|(p, _)| *p == idx)
                    .map(|(_, perm)| *perm)
                    .expect("matched above");
                inserted += 1;
                vec![
                    Insn::IConst(sid.0 as i32),
                    Insn::IConst(perm as i32),
                    Insn::InvokeStatic(enforcer),
                ]
            },
        );
        if inserted > 0 {
            stats.checks_inserted += inserted;
            stats.methods_instrumented += 1;
            let new_attr = ed.into_code().encode(&pool_snapshot)?;
            m.set_code(new_attr);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::example_policy;
    use dvm_bytecode::asm::Asm;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn app() -> ClassFile {
        let mut cf = ClassBuilder::new("t/App").build();
        let getprop = cf
            .pool
            .methodref(
                "java/lang/System",
                "getProperty",
                "(Ljava/lang/String;)Ljava/lang/String;",
            )
            .unwrap();
        let key = cf.pool.string("os.name").unwrap();
        let mut a = Asm::new(0);
        a.ldc(key).invokestatic(getprop).pop().ret();
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("main").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf
    }

    #[test]
    fn protected_call_sites_get_checks() {
        let policy = Policy::parse(example_policy()).unwrap();
        let mut cf = app();
        let stats = secure_class(&mut cf, &policy, SecurityId(1)).unwrap();
        assert_eq!(stats.checks_inserted, 1);
        assert_eq!(stats.methods_instrumented, 1);
        let m = cf.find_method("main", "()V").unwrap();
        let code = Code::decode(m.code().unwrap()).unwrap();
        // Original: [ldc, invokestatic getprop, pop, return]
        // Rewritten: [ldc, iconst sid, iconst perm, check, getprop, pop,
        // return] — the check sits immediately before the protected call.
        assert_eq!(code.insns.len(), 7);
        assert!(matches!(code.insns[0], Insn::Ldc(_)));
        assert_eq!(code.insns[1], Insn::IConst(1));
        assert_eq!(code.insns[2], Insn::IConst(10));
        assert!(matches!(code.insns[3], Insn::InvokeStatic(_)));
    }

    #[test]
    fn unprotected_classes_are_untouched() {
        let policy = Policy::parse(example_policy()).unwrap();
        let mut cf = ClassBuilder::new("t/Plain").build();
        let mut a = Asm::new(0);
        a.ret();
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        let stats = secure_class(&mut cf, &policy, SecurityId(1)).unwrap();
        assert_eq!(stats.checks_inserted, 0);
        assert_eq!(stats.methods_instrumented, 0);
        assert!(stats.instructions_examined > 0);
    }
}
