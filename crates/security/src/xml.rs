//! A from-scratch parser for the XML subset the policy language needs.
//!
//! Supports nested elements, attributes with double-quoted values,
//! self-closing tags, comments, and an optional XML declaration. Text
//! content is ignored (the policy language is attribute-based), entity
//! references in attribute values are limited to the five predefined ones.

use std::fmt;

/// A parsed element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
}

impl Element {
    /// Returns the value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// XML parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub at: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find_from(self.input, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return self.err("unterminated comment"),
                }
            } else if self.starts_with("<?") {
                match find_from(self.input, self.pos + 2, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => return self.err("unterminated declaration"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'-' | b'_' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn attr_value(&mut self) -> Result<String, XmlError> {
        if self.peek() != Some(b'"') {
            return self.err("expected '\"'");
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(unescape(&raw));
            }
            self.pos += 1;
        }
        self.err("unterminated attribute value")
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return self.err("expected '<'");
        }
        self.pos += 1;
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return self.err("expected '>' after '/'");
                    }
                    self.pos += 1;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return self.err("expected '='");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    attributes.push((aname, value));
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // Children until the closing tag.
        let mut children = Vec::new();
        loop {
            // Skip text content and misc.
            while let Some(c) = self.peek() {
                if c == b'<' {
                    break;
                }
                self.pos += 1;
            }
            if self.peek().is_none() {
                return self.err(format!("missing closing tag for <{name}>"));
            }
            if self.starts_with("<!--") || self.starts_with("<?") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let closing = self.name()?;
                if closing != name {
                    return self.err(format!("mismatched closing tag </{closing}> for <{name}>"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.err("expected '>'");
                }
                self.pos += 1;
                return Ok(Element {
                    name,
                    attributes,
                    children,
                });
            }
            children.push(self.element()?);
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    haystack[from..]
        .windows(n.len())
        .position(|w| w == n)
        .map(|p| p + from)
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a document, returning its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return p.err("trailing content after root element");
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a policy -->
            <policy version="2">
                <principal name="applets" sid="1"/>
                <allow principal="applets" permission="file.read">
                </allow>
            </policy>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "policy");
        assert_eq!(root.attr("version"), Some("2"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "principal");
        assert_eq!(root.children[0].attr("sid"), Some("1"));
        assert_eq!(root.children_named("allow").count(), 1);
    }

    #[test]
    fn entities_in_attributes() {
        let root = parse(r#"<op method="&lt;init&gt;" amp="&amp;"/>"#).unwrap();
        assert_eq!(root.attr("method"), Some("<init>"));
        assert_eq!(root.attr("amp"), Some("&"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_attribute() {
        assert!(parse(r#"<a x="y/>"#).is_err());
    }

    #[test]
    fn text_content_is_ignored() {
        let root = parse("<a>some text <b/> more</a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }
}
