//! The monolithic baseline: JDK 1.2-style stack-introspection access
//! control.
//!
//! In the Sun JDK 1.2 model every stack frame carries a protection domain;
//! `checkPermission` walks the call stack and requires every domain to
//! grant the permission. The cost therefore scales with stack depth, and
//! checks exist only at the code sites the JDK developers anticipated —
//! the paper's Figure 9 notes that file *reads* have no check at all
//! ("N/A"), which is the flexibility gap the DVM security service closes.

use std::collections::{HashMap, HashSet};

use crate::policy::PermissionId;

/// Simulated cycles per stack frame examined during introspection.
pub const PER_FRAME_CYCLES: u64 = 1_800;

/// Simulated fixed cost of entering the security manager.
pub const BASE_CHECK_CYCLES: u64 = 1_400;

/// A protection domain: the set of permissions granted to code from one
/// source.
#[derive(Debug, Clone, Default)]
pub struct ProtectionDomain {
    grants: HashSet<PermissionId>,
}

impl ProtectionDomain {
    /// Creates a domain granting the given permissions.
    pub fn new(grants: impl IntoIterator<Item = PermissionId>) -> ProtectionDomain {
        ProtectionDomain {
            grants: grants.into_iter().collect(),
        }
    }

    /// Returns `true` when this domain grants `perm`.
    pub fn implies(&self, perm: PermissionId) -> bool {
        self.grants.contains(&perm)
    }
}

/// The monolithic security manager.
#[derive(Debug, Default)]
pub struct StackIntrospection {
    /// Permissions whose checks carry extra constant cost in the JDK
    /// (e.g. `FilePermission` canonicalizes paths and consults the policy
    /// file, which dominates the paper's OpenFile row).
    pub per_permission_extra: HashMap<PermissionId, u64>,
    /// Set of permissions the JDK actually checks; operations outside this
    /// set are unprotected (Figure 9's "N/A" row).
    pub anticipated: HashSet<PermissionId>,
}

impl StackIntrospection {
    /// Creates a manager that anticipates the given permissions.
    pub fn new(anticipated: impl IntoIterator<Item = PermissionId>) -> StackIntrospection {
        StackIntrospection {
            per_permission_extra: HashMap::new(),
            anticipated: anticipated.into_iter().collect(),
        }
    }

    /// Declares an extra constant cost for checking `perm`.
    pub fn set_extra_cost(&mut self, perm: PermissionId, cycles: u64) {
        self.per_permission_extra.insert(perm, cycles);
    }

    /// Performs `checkPermission` over the given domain stack.
    ///
    /// Returns `None` when the operation has no check at all (not
    /// anticipated by the system developers), otherwise
    /// `Some((allowed, cost_cycles))`.
    pub fn check_permission(
        &self,
        stack: &[&ProtectionDomain],
        perm: PermissionId,
    ) -> Option<(bool, u64)> {
        if !self.anticipated.contains(&perm) {
            return None;
        }
        let mut cost =
            BASE_CHECK_CYCLES + self.per_permission_extra.get(&perm).copied().unwrap_or(0);
        let mut allowed = true;
        for d in stack {
            cost += PER_FRAME_CYCLES;
            if !d.implies(perm) {
                allowed = false;
                break;
            }
        }
        Some((allowed, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_must_grant() {
        let p = PermissionId(1);
        let trusted = ProtectionDomain::new([p]);
        let untrusted = ProtectionDomain::new([]);
        let sm = StackIntrospection::new([p]);
        let (ok, _) = sm.check_permission(&[&trusted, &trusted], p).unwrap();
        assert!(ok);
        let (ok, _) = sm.check_permission(&[&trusted, &untrusted], p).unwrap();
        assert!(!ok);
    }

    #[test]
    fn cost_scales_with_stack_depth() {
        let p = PermissionId(1);
        let d = ProtectionDomain::new([p]);
        let sm = StackIntrospection::new([p]);
        let (_, shallow) = sm.check_permission(&[&d], p).unwrap();
        let stack: Vec<&ProtectionDomain> = std::iter::repeat_n(&d, 10).collect();
        let (_, deep) = sm.check_permission(&stack, p).unwrap();
        assert!(deep > shallow);
        assert_eq!(deep - shallow, 9 * PER_FRAME_CYCLES);
    }

    #[test]
    fn unanticipated_operations_have_no_check() {
        let sm = StackIntrospection::new([PermissionId(1)]);
        assert!(sm.check_permission(&[], PermissionId(2)).is_none());
    }

    #[test]
    fn extra_cost_is_applied() {
        let p = PermissionId(1);
        let d = ProtectionDomain::new([p]);
        let mut sm = StackIntrospection::new([p]);
        sm.set_extra_cost(p, 1_000_000);
        let (_, cost) = sm.check_permission(&[&d], p).unwrap();
        assert!(cost > 1_000_000);
    }
}
