//! The organization-wide security policy.
//!
//! Derived from DTOS (§3.2): security identifiers represent protection
//! domains, permissions represent the right to perform an operation, and an
//! access matrix relates the two. The policy also maps named resources to
//! security identifiers and maps security-relevant operations to the code
//! sites where checks must be inserted. Policies are written in a
//! high-level XML language and parsed here.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::xml;

/// A security identifier (protection domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SecurityId(pub u32);

/// A permission identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PermissionId(pub u32);

/// Where a permission's check is inserted: before calls to
/// `class.method`, matched on the callee.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OperationSite {
    /// Callee class internal name (exact match).
    pub class: String,
    /// Callee method name (exact match, `*` matches any).
    pub method: String,
}

/// Policy load error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError(pub String);

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy error: {}", self.0)
    }
}

impl std::error::Error for PolicyError {}

/// The parsed organization-wide policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Principal name → SID.
    pub principals: HashMap<String, SecurityId>,
    /// Permission name → id.
    pub permissions: HashMap<String, PermissionId>,
    /// The access matrix: which SIDs hold which permissions.
    pub matrix: HashSet<(SecurityId, PermissionId)>,
    /// Resource path prefixes mapped to the SID allowed to use them.
    pub resources: Vec<(String, SecurityId)>,
    /// Operation sites mapped to the permission they require.
    pub operations: Vec<(OperationSite, PermissionId)>,
    /// Monotonically increasing version, bumped on every change.
    pub version: u64,
}

impl Policy {
    /// Parses a policy from its XML form.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let root = xml::parse(text).map_err(|e| PolicyError(e.to_string()))?;
        if root.name != "policy" {
            return Err(PolicyError(format!(
                "root element is <{}>, expected <policy>",
                root.name
            )));
        }
        let mut p = Policy::default();
        let need = |e: &xml::Element, a: &str| -> Result<String, PolicyError> {
            e.attr(a)
                .map(str::to_owned)
                .ok_or_else(|| PolicyError(format!("<{}> missing attribute {a:?}", e.name)))
        };
        for child in &root.children {
            match child.name.as_str() {
                "principal" => {
                    let name = need(child, "name")?;
                    let sid: u32 = need(child, "sid")?
                        .parse()
                        .map_err(|_| PolicyError("sid must be an integer".into()))?;
                    p.principals.insert(name, SecurityId(sid));
                }
                "permission" => {
                    let name = need(child, "name")?;
                    let id: u32 = need(child, "id")?
                        .parse()
                        .map_err(|_| PolicyError("permission id must be an integer".into()))?;
                    p.permissions.insert(name, PermissionId(id));
                }
                "allow" => {
                    let principal = need(child, "principal")?;
                    let permission = need(child, "permission")?;
                    let sid = *p
                        .principals
                        .get(&principal)
                        .ok_or_else(|| PolicyError(format!("unknown principal {principal:?}")))?;
                    let perm = *p
                        .permissions
                        .get(&permission)
                        .ok_or_else(|| PolicyError(format!("unknown permission {permission:?}")))?;
                    p.matrix.insert((sid, perm));
                }
                "resource" => {
                    let path = need(child, "path")?;
                    let principal = need(child, "principal")?;
                    let sid = *p
                        .principals
                        .get(&principal)
                        .ok_or_else(|| PolicyError(format!("unknown principal {principal:?}")))?;
                    p.resources.push((path, sid));
                }
                "operation" => {
                    let class = need(child, "class")?;
                    let method = need(child, "method")?;
                    let permission = need(child, "permission")?;
                    let perm = *p
                        .permissions
                        .get(&permission)
                        .ok_or_else(|| PolicyError(format!("unknown permission {permission:?}")))?;
                    p.operations.push((OperationSite { class, method }, perm));
                }
                other => {
                    return Err(PolicyError(format!("unknown policy element <{other}>")));
                }
            }
        }
        Ok(p)
    }

    /// Returns `true` when `sid` holds `perm`.
    pub fn allows(&self, sid: SecurityId, perm: PermissionId) -> bool {
        self.matrix.contains(&(sid, perm))
    }

    /// Returns the permission required to invoke `class.method`, if any.
    pub fn operation_permission(&self, class: &str, method: &str) -> Option<PermissionId> {
        self.operations
            .iter()
            .find(|(site, _)| site.class == class && (site.method == "*" || site.method == method))
            .map(|(_, p)| *p)
    }

    /// Grants `perm` to `sid`, bumping the version (used by the remote
    /// administration console).
    pub fn grant(&mut self, sid: SecurityId, perm: PermissionId) {
        self.matrix.insert((sid, perm));
        self.version += 1;
    }

    /// Revokes `perm` from `sid`, bumping the version.
    pub fn revoke(&mut self, sid: SecurityId, perm: PermissionId) {
        self.matrix.remove(&(sid, perm));
        self.version += 1;
    }
}

/// A permissive example policy exercising every feature; used by tests and
/// the quickstart example.
pub fn example_policy() -> &'static str {
    r#"<?xml version="1.0"?>
<!-- Organization-wide DVM security policy -->
<policy version="1">
    <principal name="applets" sid="1"/>
    <principal name="trusted" sid="2"/>
    <permission name="prop.read" id="10"/>
    <permission name="file.open" id="11"/>
    <permission name="file.read" id="12"/>
    <permission name="thread.priority" id="13"/>
    <allow principal="applets" permission="prop.read"/>
    <allow principal="applets" permission="file.open"/>
    <allow principal="applets" permission="file.read"/>
    <allow principal="applets" permission="thread.priority"/>
    <allow principal="trusted" permission="prop.read"/>
    <allow principal="trusted" permission="file.open"/>
    <allow principal="trusted" permission="file.read"/>
    <allow principal="trusted" permission="thread.priority"/>
    <resource path="/data/" principal="applets"/>
    <operation class="java/lang/System" method="getProperty" permission="prop.read"/>
    <operation class="java/io/FileInputStream" method="&lt;init&gt;" permission="file.open"/>
    <operation class="java/io/FileInputStream" method="read" permission="file.read"/>
    <operation class="java/lang/Thread" method="setPriority" permission="thread.priority"/>
</policy>"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_policy() {
        let p = Policy::parse(example_policy()).unwrap();
        assert_eq!(p.principals.len(), 2);
        assert_eq!(p.permissions.len(), 4);
        let applets = p.principals["applets"];
        let file_read = p.permissions["file.read"];
        assert!(p.allows(applets, file_read));
        assert_eq!(
            p.operation_permission("java/io/FileInputStream", "<init>"),
            Some(p.permissions["file.open"])
        );
        assert_eq!(
            p.operation_permission("java/io/FileInputStream", "skip"),
            None
        );
    }

    #[test]
    fn grant_and_revoke_bump_version() {
        let mut p = Policy::parse(example_policy()).unwrap();
        let sid = p.principals["applets"];
        let perm = p.permissions["file.read"];
        let v0 = p.version;
        p.revoke(sid, perm);
        assert!(!p.allows(sid, perm));
        assert!(p.version > v0);
        p.grant(sid, perm);
        assert!(p.allows(sid, perm));
    }

    #[test]
    fn unknown_principal_is_rejected() {
        let bad = r#"<policy><allow principal="ghost" permission="x"/></policy>"#;
        assert!(Policy::parse(bad).is_err());
    }

    #[test]
    fn wildcard_method_matches() {
        let text = r#"<policy>
            <permission name="all" id="1"/>
            <operation class="a/B" method="*" permission="all"/>
        </policy>"#;
        let p = Policy::parse(text).unwrap();
        assert!(p.operation_permission("a/B", "anything").is_some());
    }
}
