//! The DVM security service (§3.2 of the paper).
//!
//! A DTOS-derived model: security identifiers (protection domains) relate
//! to permissions through an access matrix specified in an organization-
//! wide XML policy. The *static* component ([`rewriter::secure_class`])
//! rewrites incoming applications so every protected call site invokes the
//! enforcement manager first; the *dynamic* component
//! ([`enforcement::EnforcementManager`]) resolves those checks against the
//! centralized [`enforcement::SecurityServer`] with client-side caching and
//! server-pushed invalidation. [`introspection`] implements the JDK 1.2
//! stack-introspection baseline the paper compares against in Figure 9.

pub mod enforcement;
pub mod introspection;
pub mod policy;
pub mod rewriter;
pub mod xml;

pub use enforcement::{EnforcementManager, SecurityServer};
pub use introspection::{ProtectionDomain, StackIntrospection};
pub use policy::{OperationSite, PermissionId, Policy, PolicyError, SecurityId};
pub use rewriter::{secure_class, SecurityRewriteStats};
