//! Phase 2: instruction integrity.
//!
//! Decodes every method body (which already validates opcode well-formedness
//! and branch alignment), then checks local-variable bounds, constant-pool
//! operand kinds, exception-table sanity, and operand-stack depth
//! consistency.

use dvm_bytecode::insn::Insn;
use dvm_bytecode::Code;
use dvm_classfile::pool::Constant;
use dvm_classfile::ClassFile;

use crate::error::{Result, VerifyFailure};

fn fail(class: &str, method: &str, at: Option<usize>, reason: String) -> VerifyFailure {
    dvm_fuzz::cov!("verify.phase2.fail");
    VerifyFailure {
        phase: 2,
        class: class.to_owned(),
        method: Some(method.to_owned()),
        at,
        reason,
    }
}

/// Runs phase 2 over every method with a body. Returns
/// `(checks_performed, decoded bodies)` so phase 3 can reuse the decode.
pub fn check(cf: &ClassFile) -> Result<(u64, Vec<(usize, Code)>)> {
    dvm_fuzz::cov!("verify.phase2");
    let class = cf.name()?.to_owned();
    let mut checks = 0u64;
    let mut bodies = Vec::new();

    for (mi, m) in cf.methods.iter().enumerate() {
        let Some(attr) = m.code() else { continue };
        let mname = m.name(&cf.pool)?.to_owned();

        // Decode validates opcodes, operand lengths, branch alignment.
        let code = Code::decode(attr).map_err(|e| fail(&class, &mname, None, e.to_string()))?;
        checks += code.insns.len() as u64;

        // Per-instruction operand validation.
        for (i, insn) in code.insns.iter().enumerate() {
            match insn {
                Insn::Load(kind, slot) | Insn::Store(kind, slot) => {
                    checks += 1;
                    let width = kind.width();
                    if *slot as u32 + width as u32 > attr.max_locals as u32 {
                        return Err(fail(
                            &class,
                            &mname,
                            Some(i),
                            format!("local {slot} exceeds max_locals {}", attr.max_locals),
                        ));
                    }
                }
                Insn::IInc(slot, _) | Insn::Ret(slot) => {
                    checks += 1;
                    if *slot >= attr.max_locals {
                        return Err(fail(
                            &class,
                            &mname,
                            Some(i),
                            format!("local {slot} exceeds max_locals {}", attr.max_locals),
                        ));
                    }
                }
                Insn::Ldc(idx) => {
                    checks += 1;
                    match cf.pool.get(*idx) {
                        Ok(Constant::Integer(_) | Constant::Float(_) | Constant::String { .. }) => {
                        }
                        Ok(other) => {
                            return Err(fail(
                                &class,
                                &mname,
                                Some(i),
                                format!("ldc of {} constant", other.kind()),
                            ))
                        }
                        Err(e) => return Err(fail(&class, &mname, Some(i), e.to_string())),
                    }
                }
                Insn::Ldc2(idx) => {
                    checks += 1;
                    match cf.pool.get(*idx) {
                        Ok(Constant::Long(_) | Constant::Double(_)) => {}
                        Ok(other) => {
                            return Err(fail(
                                &class,
                                &mname,
                                Some(i),
                                format!("ldc2_w of {} constant", other.kind()),
                            ))
                        }
                        Err(e) => return Err(fail(&class, &mname, Some(i), e.to_string())),
                    }
                }
                Insn::GetStatic(idx)
                | Insn::PutStatic(idx)
                | Insn::GetField(idx)
                | Insn::PutField(idx) => {
                    checks += 1;
                    let (_, _, d) = cf
                        .pool
                        .get_member_ref(*idx)
                        .map_err(|e| fail(&class, &mname, Some(i), e.to_string()))?;
                    dvm_classfile::FieldType::parse(d)
                        .map_err(|e| fail(&class, &mname, Some(i), e.to_string()))?;
                }
                Insn::InvokeVirtual(idx)
                | Insn::InvokeSpecial(idx)
                | Insn::InvokeStatic(idx)
                | Insn::InvokeInterface(idx) => {
                    checks += 1;
                    let (_, n, d) = cf
                        .pool
                        .get_member_ref(*idx)
                        .map_err(|e| fail(&class, &mname, Some(i), e.to_string()))?;
                    dvm_classfile::MethodDescriptor::parse(d)
                        .map_err(|e| fail(&class, &mname, Some(i), e.to_string()))?;
                    if n == "<init>" && !matches!(insn, Insn::InvokeSpecial(_)) {
                        return Err(fail(
                            &class,
                            &mname,
                            Some(i),
                            "constructors may only be invoked via invokespecial".into(),
                        ));
                    }
                }
                Insn::New(idx)
                | Insn::ANewArray(idx)
                | Insn::CheckCast(idx)
                | Insn::InstanceOf(idx)
                | Insn::MultiANewArray(idx, _) => {
                    checks += 1;
                    cf.pool
                        .get_class_name(*idx)
                        .map_err(|e| fail(&class, &mname, Some(i), e.to_string()))?;
                    if let Insn::MultiANewArray(_, dims) = insn {
                        if *dims == 0 {
                            return Err(fail(
                                &class,
                                &mname,
                                Some(i),
                                "multianewarray with zero dimensions".into(),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }

        // Exception-table sanity (index form after decode).
        for h in &code.handlers {
            checks += 1;
            if h.start >= h.end {
                return Err(fail(
                    &class,
                    &mname,
                    None,
                    format!("empty handler range [{}, {})", h.start, h.end),
                ));
            }
            if h.catch_type != 0 {
                cf.pool
                    .get_class_name(h.catch_type)
                    .map_err(|e| fail(&class, &mname, None, e.to_string()))?;
            }
        }

        // Stack-depth dataflow (underflow + merge consistency + max_stack).
        checks += 1;
        let computed = code
            .compute_max_stack(&cf.pool)
            .map_err(|e| fail(&class, &mname, None, e.to_string()))?;
        if computed > attr.max_stack {
            return Err(fail(
                &class,
                &mname,
                None,
                format!("max_stack {} but depth reaches {computed}", attr.max_stack),
            ));
        }

        // The last instruction must not fall off the end.
        checks += 1;
        if let Some(last) = code.insns.last() {
            if last.can_fall_through() {
                return Err(fail(&class, &mname, None, "code falls off the end".into()));
            }
        } else {
            return Err(fail(&class, &mname, None, "empty code".into()));
        }

        bodies.push((mi, code));
    }
    Ok((checks, bodies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::attributes::CodeAttribute;
    use dvm_classfile::{AccessFlags, ClassBuilder};

    fn ps() -> AccessFlags {
        AccessFlags::PUBLIC | AccessFlags::STATIC
    }

    #[test]
    fn accepts_simple_method() {
        let cf = ClassBuilder::new("t/Ok")
            .method(
                ps(),
                "f",
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    code: vec![0x03, 0xAC],
                    ..Default::default()
                },
            )
            .build();
        let (checks, bodies) = check(&cf).unwrap();
        assert!(checks > 0);
        assert_eq!(bodies.len(), 1);
    }

    #[test]
    fn rejects_local_out_of_range() {
        // iload 9 with max_locals 1.
        let cf = ClassBuilder::new("t/Bad")
            .method(
                ps(),
                "f",
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 1,
                    code: vec![0x15, 9, 0xAC],
                    ..Default::default()
                },
            )
            .build();
        let err = check(&cf).unwrap_err();
        assert_eq!(err.phase, 2);
        assert!(err.reason.contains("max_locals"));
    }

    #[test]
    fn rejects_understated_max_stack() {
        // Two pushes with declared max_stack 1.
        let cf = ClassBuilder::new("t/Deep")
            .method(
                ps(),
                "f",
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    code: vec![0x03, 0x04, 0x60, 0xAC], // iconst_0 iconst_1 iadd ireturn
                    ..Default::default()
                },
            )
            .build();
        let err = check(&cf).unwrap_err();
        assert!(err.reason.contains("max_stack"));
    }

    #[test]
    fn rejects_falling_off_the_end() {
        let cf = ClassBuilder::new("t/Fall")
            .method(
                ps(),
                "f",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    code: vec![0x03, 0x57],
                    ..Default::default()
                },
            )
            .build();
        let err = check(&cf).unwrap_err();
        assert!(err.reason.contains("falls off"));
    }

    #[test]
    fn rejects_truncated_instruction() {
        let cf = ClassBuilder::new("t/Trunc")
            .method(
                ps(),
                "f",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    code: vec![0x10],
                    ..Default::default()
                },
            )
            .build();
        let err = check(&cf).unwrap_err();
        assert!(err.reason.contains("truncated"));
    }

    #[test]
    fn rejects_invokevirtual_of_constructor() {
        let mut cf = ClassBuilder::new("t/CtorCall").build();
        let m = cf.pool.methodref("t/X", "<init>", "()V").unwrap();
        let mut code = vec![0xB6]; // invokevirtual
        code.extend_from_slice(&m.to_be_bytes());
        code.push(0xB1); // return
        let attr = CodeAttribute {
            max_stack: 1,
            max_locals: 1,
            code,
            ..Default::default()
        };
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(dvm_classfile::MemberInfo {
            access: ps(),
            name_index: n,
            descriptor_index: d,
            attributes: vec![dvm_classfile::Attribute::Code(attr)],
        });
        let err = check(&cf).unwrap_err();
        assert!(err.reason.contains("invokespecial"));
    }
}
