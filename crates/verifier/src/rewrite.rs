//! Phase 4 static/dynamic split: discharge assumptions against the
//! environment and compile the rest into injected runtime checks.
//!
//! This is the Figure 3 transformation: each instrumented method gets a
//! synthetic `__dvmChecked$N` flag and a prologue that runs the deferred
//! `dvm/rt/RTVerifier` checks exactly once; class-scope assumptions go into
//! `<clinit>` so they run before any use of the class.

use dvm_bytecode::insn::{ICond, Insn};
use dvm_bytecode::{Code, CodeEditor};
use dvm_classfile::attributes::CodeAttribute;
use dvm_classfile::{AccessFlags, Attribute, ClassFile, MemberInfo};

use crate::assumptions::{Assumption, Scope, ScopedAssumption};
use crate::env::SignatureEnvironment;
use crate::error::{Result, VerifyFailure};

/// Result of the split.
#[derive(Debug)]
pub struct RewriteOutput {
    /// The rewritten, self-verifying class.
    pub class: ClassFile,
    /// Runtime checks injected (the dynamic side of Figure 8).
    pub injected_checks: u64,
    /// Assumptions proven statically against the environment.
    pub discharged: u64,
}

const RT: &str = "dvm/rt/RTVerifier";
const CHECK_MEMBER_DESC: &str = "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;)V";
const CHECK_CLASS_DESC: &str = "(Ljava/lang/String;Ljava/lang/String;)V";

/// Splits `assumptions` into statically-discharged and runtime-deferred
/// sets, rewriting `cf` to carry the deferred checks.
pub fn split_and_rewrite(
    mut cf: ClassFile,
    assumptions: &[ScopedAssumption],
    env: &dyn SignatureEnvironment,
) -> Result<RewriteOutput> {
    let class_name = cf.name()?.to_owned();
    let mut discharged = 0u64;
    let mut deferred_class: Vec<Assumption> = Vec::new();
    let mut deferred_method: Vec<(String, String, Assumption)> = Vec::new();

    for sa in assumptions {
        match env.check(&sa.assumption) {
            Some(true) => discharged += 1,
            Some(false) => {
                return Err(VerifyFailure {
                    phase: 4,
                    class: class_name,
                    method: sa.method.as_ref().map(|(n, _)| n.clone()),
                    at: None,
                    reason: format!("link assumption violated: {:?}", sa.assumption),
                });
            }
            None => match (&sa.scope, &sa.method) {
                (Scope::Class, _) | (_, None) => deferred_class.push(sa.assumption.clone()),
                (Scope::Method, Some((n, d))) => {
                    deferred_method.push((n.clone(), d.clone(), sa.assumption.clone()))
                }
            },
        }
    }

    let mut injected = 0u64;

    // Class-scope checks go into <clinit> (created if missing).
    if !deferred_class.is_empty() {
        injected += deferred_class.len() as u64;
        inject_clinit_checks(&mut cf, &deferred_class)?;
    }

    // Method-scope checks get a guarded prologue.
    let mut flag_counter = 0usize;
    // Group assumptions per method.
    let mut grouped: Vec<((String, String), Vec<Assumption>)> = Vec::new();
    for (n, d, a) in deferred_method {
        match grouped
            .iter_mut()
            .find(|((gn, gd), _)| gn == &n && gd == &d)
        {
            Some((_, v)) => v.push(a),
            None => grouped.push(((n, d), vec![a])),
        }
    }
    for ((mname, mdesc), checks) in grouped {
        injected += checks.len() as u64;
        inject_method_checks(&mut cf, &mname, &mdesc, &checks, &mut flag_counter)?;
    }

    Ok(RewriteOutput {
        class: cf,
        injected_checks: injected,
        discharged,
    })
}

/// Builds the instruction block performing `checks`, with pool interning.
fn check_block(cf: &mut ClassFile, checks: &[Assumption]) -> Result<Vec<Insn>> {
    let check_member = |cf: &mut ClassFile, which: &str| -> Result<u16> {
        Ok(cf.pool.methodref(RT, which, CHECK_MEMBER_DESC)?)
    };
    let mut insns = Vec::new();
    for a in checks {
        match a {
            Assumption::FieldExists {
                class,
                name,
                descriptor,
            } => {
                let c = cf.pool.string(class)?;
                let n = cf.pool.string(name)?;
                let d = cf.pool.string(descriptor)?;
                let m = check_member(cf, "checkField")?;
                insns.extend([
                    Insn::Ldc(c),
                    Insn::Ldc(n),
                    Insn::Ldc(d),
                    Insn::InvokeStatic(m),
                ]);
            }
            Assumption::MethodExists {
                class,
                name,
                descriptor,
            } => {
                let c = cf.pool.string(class)?;
                let n = cf.pool.string(name)?;
                let d = cf.pool.string(descriptor)?;
                let m = check_member(cf, "checkMethod")?;
                insns.extend([
                    Insn::Ldc(c),
                    Insn::Ldc(n),
                    Insn::Ldc(d),
                    Insn::InvokeStatic(m),
                ]);
            }
            Assumption::Extends { class, superclass } => {
                let c = cf.pool.string(class)?;
                let s = cf.pool.string(superclass)?;
                let m = cf.pool.methodref(RT, "checkClass", CHECK_CLASS_DESC)?;
                insns.extend([Insn::Ldc(c), Insn::Ldc(s), Insn::InvokeStatic(m)]);
            }
        }
    }
    Ok(insns)
}

fn inject_clinit_checks(cf: &mut ClassFile, checks: &[Assumption]) -> Result<()> {
    let block = check_block(cf, checks)?;
    let existing = cf.find_method("<clinit>", "()V").is_some();
    if existing {
        let pool_snapshot = cf.pool.clone();
        let m = cf
            .find_method_mut("<clinit>", "()V")
            .expect("checked above");
        let attr = m.code().ok_or_else(|| VerifyFailure {
            phase: 4,
            class: String::new(),
            method: Some("<clinit>".into()),
            at: None,
            reason: "initializer without code".into(),
        })?;
        let code = Code::decode(attr)?;
        let mut ed = CodeEditor::new(code);
        ed.insert_prologue(block);
        let new_attr = ed.into_code().encode(&pool_snapshot)?;
        m.set_code(new_attr);
    } else {
        let mut insns = block;
        insns.push(Insn::Return(None));
        let code = Code {
            insns,
            handlers: vec![],
            max_locals: 0,
        };
        let attr = code.encode(&cf.pool)?;
        push_method(
            cf,
            AccessFlags::STATIC | AccessFlags::SYNTHETIC,
            "<clinit>",
            "()V",
            attr,
        )?;
    }
    Ok(())
}

fn inject_method_checks(
    cf: &mut ClassFile,
    mname: &str,
    mdesc: &str,
    checks: &[Assumption],
    flag_counter: &mut usize,
) -> Result<()> {
    // Synthetic guard flag.
    let flag_name = format!("__dvmChecked${flag_counter}");
    *flag_counter += 1;
    let class_name = cf.name()?.to_owned();
    push_field(
        cf,
        AccessFlags::STATIC | AccessFlags::SYNTHETIC,
        &flag_name,
        "Z",
    )?;
    let flag_ref = cf.pool.fieldref(&class_name, &flag_name, "Z")?;

    let mut block = vec![Insn::GetStatic(flag_ref), Insn::If(ICond::Ne, 0)];
    block.extend(check_block(cf, checks)?);
    block.push(Insn::IConst(1));
    block.push(Insn::PutStatic(flag_ref));
    // The guard skips to the first original instruction, i.e. just past the
    // injected block.
    let skip_to = block.len();
    if let Insn::If(_, t) = &mut block[1] {
        *t = skip_to;
    }

    let pool_snapshot = cf.pool.clone();
    let m = cf
        .find_method_mut(mname, mdesc)
        .ok_or_else(|| VerifyFailure {
            phase: 4,
            class: class_name.clone(),
            method: Some(mname.to_owned()),
            at: None,
            reason: "instrumented method disappeared".into(),
        })?;
    let attr = m.code().ok_or_else(|| VerifyFailure {
        phase: 4,
        class: class_name,
        method: Some(mname.to_owned()),
        at: None,
        reason: "cannot instrument a bodyless method".into(),
    })?;
    let code = Code::decode(attr)?;
    let mut ed = CodeEditor::new(code);
    ed.insert_prologue(block);
    let new_attr = ed.into_code().encode(&pool_snapshot)?;
    m.set_code(new_attr);
    Ok(())
}

fn push_field(cf: &mut ClassFile, access: AccessFlags, name: &str, descriptor: &str) -> Result<()> {
    let name_index = cf.pool.utf8(name)?;
    let descriptor_index = cf.pool.utf8(descriptor)?;
    cf.fields.push(MemberInfo {
        access,
        name_index,
        descriptor_index,
        attributes: vec![Attribute::Synthetic],
    });
    Ok(())
}

fn push_method(
    cf: &mut ClassFile,
    access: AccessFlags,
    name: &str,
    descriptor: &str,
    code: CodeAttribute,
) -> Result<()> {
    let name_index = cf.pool.utf8(name)?;
    let descriptor_index = cf.pool.utf8(descriptor)?;
    cf.methods.push(MemberInfo {
        access,
        name_index,
        descriptor_index,
        attributes: vec![Attribute::Code(code)],
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EmptyEnvironment;

    fn sample_class() -> ClassFile {
        use dvm_bytecode::asm::Asm;
        let mut cf = dvm_classfile::ClassBuilder::new("t/Hello").build();
        let out = cf
            .pool
            .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
            .unwrap();
        let println = cf
            .pool
            .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        let msg = cf.pool.string("hello world").unwrap();
        let mut a = Asm::new(0);
        a.getstatic(out).ldc(msg).invokevirtual(println).ret();
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("main").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf
    }

    fn hello_assumptions() -> Vec<ScopedAssumption> {
        vec![
            ScopedAssumption {
                assumption: Assumption::FieldExists {
                    class: "java/lang/System".into(),
                    name: "out".into(),
                    descriptor: "Ljava/io/PrintStream;".into(),
                },
                scope: Scope::Method,
                method: Some(("main".into(), "()V".into())),
            },
            ScopedAssumption {
                assumption: Assumption::MethodExists {
                    class: "java/io/PrintStream".into(),
                    name: "println".into(),
                    descriptor: "(Ljava/lang/String;)V".into(),
                },
                scope: Scope::Method,
                method: Some(("main".into(), "()V".into())),
            },
        ]
    }

    #[test]
    fn unknown_environment_defers_all_checks_figure3() {
        let out =
            split_and_rewrite(sample_class(), &hello_assumptions(), &EmptyEnvironment).unwrap();
        assert_eq!(out.injected_checks, 2);
        assert_eq!(out.discharged, 0);
        // The rewritten class has the guard flag and a longer main.
        let cf = out.class;
        assert!(cf.find_field("__dvmChecked$0").is_some());
        let m = cf.find_method("main", "()V").unwrap();
        let code = Code::decode(m.code().unwrap()).unwrap();
        // Prologue: getstatic, ifne, 2 checks * 4 insns, iconst_1, putstatic
        // = 12 injected + 4 original.
        assert_eq!(code.insns.len(), 16);
        assert!(matches!(code.insns[0], Insn::GetStatic(_)));
        assert!(matches!(code.insns[1], Insn::If(ICond::Ne, 12)));
    }

    #[test]
    fn bootstrap_environment_discharges_hello_world() {
        let env = crate::env::MapEnvironment::with_bootstrap();
        let out = split_and_rewrite(sample_class(), &hello_assumptions(), &env).unwrap();
        assert_eq!(out.injected_checks, 0);
        assert_eq!(out.discharged, 2);
        // No rewriting needed.
        let m = out.class.find_method("main", "()V").unwrap();
        let code = Code::decode(m.code().unwrap()).unwrap();
        assert_eq!(code.insns.len(), 4);
    }

    #[test]
    fn violated_assumption_fails_phase4() {
        let env = crate::env::MapEnvironment::with_bootstrap();
        let bad = vec![ScopedAssumption {
            assumption: Assumption::MethodExists {
                class: "java/io/PrintStream".into(),
                name: "noSuchMethod".into(),
                descriptor: "()V".into(),
            },
            scope: Scope::Method,
            method: Some(("main".into(), "()V".into())),
        }];
        let err = split_and_rewrite(sample_class(), &bad, &env).unwrap_err();
        assert_eq!(err.phase, 4);
    }

    #[test]
    fn class_scope_checks_create_clinit() {
        let deferred = vec![ScopedAssumption {
            assumption: Assumption::Extends {
                class: "ext/Base".into(),
                superclass: "java/lang/Object".into(),
            },
            scope: Scope::Class,
            method: None,
        }];
        let out = split_and_rewrite(sample_class(), &deferred, &EmptyEnvironment).unwrap();
        assert_eq!(out.injected_checks, 1);
        let clinit = out.class.find_method("<clinit>", "()V").unwrap();
        let code = Code::decode(clinit.code().unwrap()).unwrap();
        // ldc, ldc, invokestatic, return
        assert_eq!(code.insns.len(), 4);
    }
}
