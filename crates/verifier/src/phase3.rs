//! Phase 3: type-safety verification by abstract interpretation.
//!
//! A worklist dataflow simulates every method over the [`VType`] lattice:
//! operand kinds, local-variable initialization, uninitialized-object
//! tracking (`new` → `<init>`), constructor discipline, and return-type
//! agreement. Because this phase sees one class in isolation, every belief
//! about *another* class (member existence, subtyping) is recorded as a
//! [`ScopedAssumption`] for phase 4 instead of being resolved here.
//!
//! Subroutines (`jsr`/`ret`) are rejected outright — the paper notes that
//! verifier implementations differ on subroutine constraints, and this
//! verifier takes the strict position.

use std::collections::HashMap;

use dvm_bytecode::insn::{AKind, Insn, Kind, NumKind, NumType};
use dvm_bytecode::Code;
use dvm_classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_classfile::pool::Constant;
use dvm_classfile::ClassFile;

use crate::assumptions::{Assumption, Scope, ScopedAssumption};
use crate::error::{Result, VerifyFailure};
use crate::types::VType;

/// Output of phase 3.
#[derive(Debug, Default)]
pub struct Phase3Output {
    /// Static checks performed.
    pub checks: u64,
    /// Link-time assumptions collected across all methods.
    pub assumptions: Vec<ScopedAssumption>,
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct MState {
    locals: Vec<VType>,
    stack: Vec<VType>,
    this_init: bool,
}

impl MState {
    fn merge(&self, other: &MState) -> Option<MState> {
        if self.stack.len() != other.stack.len() || self.locals.len() != other.locals.len() {
            return None;
        }
        Some(MState {
            locals: self
                .locals
                .iter()
                .zip(&other.locals)
                .map(|(a, b)| a.merge(b))
                .collect(),
            stack: self
                .stack
                .iter()
                .zip(&other.stack)
                .map(|(a, b)| a.merge(b))
                .collect(),
            this_init: self.this_init && other.this_init,
        })
    }
}

struct Ctx<'a> {
    cf: &'a ClassFile,
    class: String,
    method: String,
    is_init: bool,
    ret: Option<FieldType>,
    checks: u64,
    assumptions: Vec<ScopedAssumption>,
}

impl Ctx<'_> {
    fn fail(&self, at: usize, reason: String) -> VerifyFailure {
        dvm_fuzz::cov!("verify.phase3.fail");
        VerifyFailure {
            phase: 3,
            class: self.class.clone(),
            method: Some(self.method.clone()),
            at: Some(at),
            reason,
        }
    }

    fn assume(&mut self, a: Assumption, scope: Scope) {
        // Assumptions about this class itself are checked locally instead.
        let subject_is_self = a.subject() == self.class;
        if subject_is_self {
            return;
        }
        let method = match scope {
            Scope::Class => None,
            // The descriptor is attached by check() once the method's
            // verification completes.
            Scope::Method => Some((self.method.clone(), String::new())),
        };
        let sa = ScopedAssumption {
            assumption: a,
            scope,
            method,
        };
        if !self.assumptions.contains(&sa) {
            self.assumptions.push(sa);
        }
    }
}

/// Runs phase 3 over the decoded bodies from phase 2.
pub fn check(cf: &ClassFile, bodies: &[(usize, Code)]) -> Result<Phase3Output> {
    dvm_fuzz::cov!("verify.phase3");
    let class = cf.name()?.to_owned();
    let mut out = Phase3Output::default();

    // Class-scope assumption: the superclass relationship (the paper's
    // example of a fundamental assumption affecting the whole class).
    if let Some(sup) = cf.super_name()? {
        if sup != "java/lang/Object" {
            out.assumptions.push(ScopedAssumption {
                assumption: Assumption::Extends {
                    class: sup.to_owned(),
                    superclass: "java/lang/Object".to_owned(),
                },
                scope: Scope::Class,
                method: None,
            });
        }
    }

    for (mi, code) in bodies {
        let m = &cf.methods[*mi];
        let mname = m.name(&cf.pool)?.to_owned();
        let mdesc = m.descriptor(&cf.pool)?.to_owned();
        let desc = MethodDescriptor::parse(&mdesc)?;

        let mut ctx = Ctx {
            cf,
            class: class.clone(),
            method: mname.clone(),
            is_init: mname == "<init>",
            ret: desc.ret.clone(),
            checks: 0,
            assumptions: Vec::new(),
        };

        verify_method(&mut ctx, m.access.is_static(), &desc, code)?;

        out.checks += ctx.checks;
        for mut sa in ctx.assumptions {
            if let Some((n, _)) = &sa.method {
                sa.method = Some((n.clone(), mdesc.clone()));
            }
            if !out.assumptions.contains(&sa) {
                out.assumptions.push(sa);
            }
        }
    }
    Ok(out)
}

fn initial_state(ctx: &Ctx<'_>, is_static: bool, desc: &MethodDescriptor, code: &Code) -> MState {
    let mut locals = Vec::new();
    if !is_static {
        locals.push(if ctx.is_init {
            VType::UninitThis
        } else {
            VType::Ref(ctx.class.clone())
        });
    }
    for p in &desc.params {
        let v = VType::of_field_type(p);
        let wide = v.is_wide();
        locals.push(v);
        if wide {
            locals.push(match p {
                FieldType::Long => VType::Long2,
                _ => VType::Double2,
            });
        }
    }
    while locals.len() < code.max_locals as usize {
        locals.push(VType::Top);
    }
    MState {
        locals,
        stack: Vec::new(),
        this_init: !ctx.is_init,
    }
}

fn verify_method(
    ctx: &mut Ctx<'_>,
    is_static: bool,
    desc: &MethodDescriptor,
    code: &Code,
) -> Result<()> {
    dvm_fuzz::cov!("verify.phase3.method");
    let n = code.insns.len();
    let mut states: Vec<Option<MState>> = vec![None; n];
    let mut work: Vec<usize> = Vec::new();

    let entry = initial_state(ctx, is_static, desc, code);
    states[0] = Some(entry);
    work.push(0);

    // Handler catch types, resolved once.
    let mut handler_types: HashMap<usize, VType> = HashMap::new();
    for h in &code.handlers {
        let t = if h.catch_type == 0 {
            VType::Ref("java/lang/Throwable".to_owned())
        } else {
            let name = ctx.cf.pool.get_class_name(h.catch_type)?.to_owned();
            ctx.assume(
                Assumption::Extends {
                    class: name.clone(),
                    superclass: "java/lang/Throwable".to_owned(),
                },
                Scope::Method,
            );
            VType::Ref(name)
        };
        handler_types.insert(h.handler, t);
    }

    while let Some(i) = work.pop() {
        let Some(state) = states[i].clone() else {
            continue;
        };
        let insn = &code.insns[i];
        let mut st = state.clone();
        let succs = simulate(ctx, i, insn, &mut st)?;

        // Propagate to exception handlers covering this instruction: the
        // handler sees current locals with a one-element stack.
        for h in &code.handlers {
            if i >= h.start && i < h.end {
                let hstate = MState {
                    locals: st.locals.clone(),
                    stack: vec![handler_types
                        .get(&h.handler)
                        .cloned()
                        .unwrap_or(VType::Ref("java/lang/Throwable".to_owned()))],
                    this_init: st.this_init,
                };
                propagate(ctx, &mut states, &mut work, h.handler, hstate, i, n)?;
            }
        }

        for s in succs {
            propagate(ctx, &mut states, &mut work, s, st.clone(), i, n)?;
        }
    }
    Ok(())
}

fn propagate(
    ctx: &mut Ctx<'_>,
    states: &mut [Option<MState>],
    work: &mut Vec<usize>,
    target: usize,
    incoming: MState,
    from: usize,
    n: usize,
) -> Result<()> {
    if target >= n {
        return Err(ctx.fail(from, format!("branch target {target} out of range")));
    }
    ctx.checks += 1;
    match &states[target] {
        None => {
            states[target] = Some(incoming);
            work.push(target);
        }
        Some(existing) => {
            let merged = existing.merge(&incoming).ok_or_else(|| {
                ctx.fail(
                    target,
                    format!(
                        "stack shape mismatch at merge: {} vs {} entries",
                        existing.stack.len(),
                        incoming.stack.len()
                    ),
                )
            })?;
            if &merged != existing {
                states[target] = Some(merged);
                work.push(target);
            }
        }
    }
    Ok(())
}

// ---- Operand helpers --------------------------------------------------------

fn pop(ctx: &mut Ctx<'_>, st: &mut MState, at: usize) -> Result<VType> {
    ctx.checks += 1;
    st.stack
        .pop()
        .ok_or_else(|| ctx.fail(at, "operand stack underflow".into()))
}

fn pop_expect(ctx: &mut Ctx<'_>, st: &mut MState, at: usize, want: &VType) -> Result<()> {
    let got = pop(ctx, st, at)?;
    if &got != want {
        return Err(ctx.fail(at, format!("expected {want:?}, found {got:?}")));
    }
    Ok(())
}

fn pop_initialized_ref(ctx: &mut Ctx<'_>, st: &mut MState, at: usize) -> Result<VType> {
    let got = pop(ctx, st, at)?;
    if got.is_initialized_reference() {
        Ok(got)
    } else {
        Err(ctx.fail(at, format!("expected initialized reference, found {got:?}")))
    }
}

/// Checks assignability of `value` into a slot of declared type `want`,
/// recording a subtype assumption when the answer depends on another class.
fn compat(ctx: &mut Ctx<'_>, at: usize, value: &VType, want: &VType) -> Result<()> {
    ctx.checks += 1;
    let ok = match (value, want) {
        (VType::Int, VType::Int)
        | (VType::Float, VType::Float)
        | (VType::Long, VType::Long)
        | (VType::Double, VType::Double)
        | (VType::Null, VType::Ref(_)) => true,
        (VType::Ref(a), VType::Ref(b)) => {
            if a == b || b == "java/lang/Object" {
                true
            } else {
                // Subtyping across classes: defer to the link phase.
                ctx.assume(
                    Assumption::Extends {
                        class: a.clone(),
                        superclass: b.clone(),
                    },
                    Scope::Method,
                );
                true
            }
        }
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(ctx.fail(
            at,
            format!("cannot use {value:?} where {want:?} is required"),
        ))
    }
}

fn num_vtype(kind: NumKind) -> VType {
    match kind {
        NumKind::Int => VType::Int,
        NumKind::Long => VType::Long,
        NumKind::Float => VType::Float,
        NumKind::Double => VType::Double,
    }
}

fn kind_vtype(kind: Kind, class_hint: &str) -> VType {
    match kind {
        Kind::Int => VType::Int,
        Kind::Long => VType::Long,
        Kind::Float => VType::Float,
        Kind::Double => VType::Double,
        Kind::Ref => VType::Ref(class_hint.to_owned()),
    }
}

fn akind_elem(kind: AKind) -> VType {
    match kind {
        AKind::Int | AKind::Byte | AKind::Char | AKind::Short => VType::Int,
        AKind::Long => VType::Long,
        AKind::Float => VType::Float,
        AKind::Double => VType::Double,
        AKind::Ref => VType::Ref("java/lang/Object".to_owned()),
    }
}

fn akind_array_desc(kind: AKind) -> &'static str {
    match kind {
        AKind::Int => "[I",
        AKind::Long => "[J",
        AKind::Float => "[F",
        AKind::Double => "[D",
        AKind::Byte => "[B",
        AKind::Char => "[C",
        AKind::Short => "[S",
        AKind::Ref => "[",
    }
}

fn num_type_vtype(t: NumType) -> VType {
    match t {
        NumType::Int | NumType::Byte | NumType::Char | NumType::Short => VType::Int,
        NumType::Long => VType::Long,
        NumType::Float => VType::Float,
        NumType::Double => VType::Double,
    }
}

/// Simulates `insn` over `st`, returning explicit successor indices (the
/// fall-through successor `i + 1` is included when applicable).
#[allow(clippy::too_many_lines)]
fn simulate(ctx: &mut Ctx<'_>, i: usize, insn: &Insn, st: &mut MState) -> Result<Vec<usize>> {
    let mut succs = Vec::new();
    let mut fall = true;
    match insn {
        Insn::Nop => {}
        Insn::AConstNull => st.stack.push(VType::Null),
        Insn::IConst(_) => st.stack.push(VType::Int),
        Insn::LConst(_) => st.stack.push(VType::Long),
        Insn::FConst(_) => st.stack.push(VType::Float),
        Insn::DConst(_) => st.stack.push(VType::Double),
        Insn::Ldc(idx) => {
            ctx.checks += 1;
            match ctx.cf.pool.get(*idx) {
                Ok(Constant::Integer(_)) => st.stack.push(VType::Int),
                Ok(Constant::Float(_)) => st.stack.push(VType::Float),
                Ok(Constant::String { .. }) => {
                    st.stack.push(VType::Ref("java/lang/String".to_owned()))
                }
                other => return Err(ctx.fail(i, format!("ldc of invalid constant: {other:?}"))),
            }
        }
        Insn::Ldc2(idx) => {
            ctx.checks += 1;
            match ctx.cf.pool.get(*idx) {
                Ok(Constant::Long(_)) => st.stack.push(VType::Long),
                Ok(Constant::Double(_)) => st.stack.push(VType::Double),
                other => return Err(ctx.fail(i, format!("ldc2_w of invalid constant: {other:?}"))),
            }
        }
        Insn::Load(kind, slot) => {
            ctx.checks += 1;
            let slot = *slot as usize;
            let v = st
                .locals
                .get(slot)
                .cloned()
                .ok_or_else(|| ctx.fail(i, format!("local {slot} out of range")))?;
            match kind {
                Kind::Ref => {
                    if !v.is_reference() {
                        return Err(ctx.fail(i, format!("aload of non-reference {v:?}")));
                    }
                }
                _ => {
                    let want = kind_vtype(*kind, "");
                    if v != want {
                        return Err(ctx.fail(i, format!("load expected {want:?}, found {v:?}")));
                    }
                    if v.is_wide() {
                        let tail = st.locals.get(slot + 1).cloned();
                        let want_tail = if v == VType::Long {
                            VType::Long2
                        } else {
                            VType::Double2
                        };
                        if tail != Some(want_tail) {
                            return Err(ctx.fail(i, "broken wide local pair".into()));
                        }
                    }
                }
            }
            st.stack.push(v);
        }
        Insn::Store(kind, slot) => {
            let slot = *slot as usize;
            let v = pop(ctx, st, i)?;
            match kind {
                Kind::Ref => {
                    if !v.is_reference() {
                        return Err(ctx.fail(i, format!("astore of {v:?}")));
                    }
                }
                _ => {
                    let want = kind_vtype(*kind, "");
                    if v != want {
                        return Err(ctx.fail(i, format!("store expected {want:?}, found {v:?}")));
                    }
                }
            }
            if slot >= st.locals.len() {
                return Err(ctx.fail(i, format!("local {slot} out of range")));
            }
            // Overwriting half of a wide pair invalidates the other half.
            if slot > 0 && st.locals[slot - 1].is_wide() {
                st.locals[slot - 1] = VType::Top;
            }
            let wide = v.is_wide();
            let tail = if v == VType::Long {
                VType::Long2
            } else {
                VType::Double2
            };
            st.locals[slot] = v;
            if wide {
                if slot + 1 >= st.locals.len() {
                    return Err(ctx.fail(i, "wide store at last local slot".into()));
                }
                st.locals[slot + 1] = tail;
            }
        }
        Insn::ArrayLoad(kind) => {
            pop_expect(ctx, st, i, &VType::Int)?;
            let arr = pop_initialized_ref(ctx, st, i)?;
            let elem = check_array_ref(ctx, i, &arr, *kind)?;
            st.stack.push(elem);
        }
        Insn::ArrayStore(kind) => {
            let value = pop(ctx, st, i)?;
            pop_expect(ctx, st, i, &VType::Int)?;
            let arr = pop_initialized_ref(ctx, st, i)?;
            let elem = check_array_ref(ctx, i, &arr, *kind)?;
            compat(ctx, i, &value, &elem)?;
        }
        Insn::Pop => {
            let v = pop(ctx, st, i)?;
            if v.is_wide() {
                return Err(ctx.fail(i, "pop of category-2 value".into()));
            }
        }
        Insn::Pop2 => {
            let v = pop(ctx, st, i)?;
            if !v.is_wide() {
                let v2 = pop(ctx, st, i)?;
                if v2.is_wide() {
                    return Err(ctx.fail(i, "pop2 splitting a category-2 value".into()));
                }
            }
        }
        Insn::Dup => {
            let v = st
                .stack
                .last()
                .cloned()
                .ok_or_else(|| ctx.fail(i, "dup on empty stack".into()))?;
            if v.is_wide() {
                return Err(ctx.fail(i, "dup of category-2 value".into()));
            }
            st.stack.push(v);
        }
        Insn::DupX1 | Insn::DupX2 | Insn::Dup2 | Insn::Dup2X1 | Insn::Dup2X2 => {
            dup_form(ctx, st, i, insn)?;
        }
        Insn::Swap => {
            let a = pop(ctx, st, i)?;
            let b = pop(ctx, st, i)?;
            if a.is_wide() || b.is_wide() {
                return Err(ctx.fail(i, "swap of category-2 value".into()));
            }
            st.stack.push(a);
            st.stack.push(b);
        }
        Insn::Arith(kind, op) => {
            let t = num_vtype(*kind);
            pop_expect(ctx, st, i, &t)?;
            if *op != dvm_bytecode::ArithOp::Neg {
                pop_expect(ctx, st, i, &t)?;
            }
            st.stack.push(t);
        }
        Insn::Shift(kind, _) => {
            let t = num_vtype(*kind);
            if !matches!(kind, NumKind::Int | NumKind::Long) {
                return Err(ctx.fail(i, "shift of non-integral kind".into()));
            }
            pop_expect(ctx, st, i, &VType::Int)?;
            pop_expect(ctx, st, i, &t)?;
            st.stack.push(t);
        }
        Insn::Logic(kind, _) => {
            let t = num_vtype(*kind);
            if !matches!(kind, NumKind::Int | NumKind::Long) {
                return Err(ctx.fail(i, "logic of non-integral kind".into()));
            }
            pop_expect(ctx, st, i, &t)?;
            pop_expect(ctx, st, i, &t)?;
            st.stack.push(t);
        }
        Insn::IInc(slot, _) => {
            ctx.checks += 1;
            if st.locals.get(*slot as usize) != Some(&VType::Int) {
                return Err(ctx.fail(i, format!("iinc of non-int local {slot}")));
            }
        }
        Insn::Convert(from, to) => {
            pop_expect(ctx, st, i, &num_type_vtype(*from))?;
            st.stack.push(num_type_vtype(*to));
        }
        Insn::LCmp => {
            pop_expect(ctx, st, i, &VType::Long)?;
            pop_expect(ctx, st, i, &VType::Long)?;
            st.stack.push(VType::Int);
        }
        Insn::FCmp(_) => {
            pop_expect(ctx, st, i, &VType::Float)?;
            pop_expect(ctx, st, i, &VType::Float)?;
            st.stack.push(VType::Int);
        }
        Insn::DCmp(_) => {
            pop_expect(ctx, st, i, &VType::Double)?;
            pop_expect(ctx, st, i, &VType::Double)?;
            st.stack.push(VType::Int);
        }
        Insn::If(_, t) => {
            pop_expect(ctx, st, i, &VType::Int)?;
            succs.push(*t);
        }
        Insn::IfICmp(_, t) => {
            pop_expect(ctx, st, i, &VType::Int)?;
            pop_expect(ctx, st, i, &VType::Int)?;
            succs.push(*t);
        }
        Insn::IfACmp(_, t) => {
            pop_initialized_ref(ctx, st, i)?;
            pop_initialized_ref(ctx, st, i)?;
            succs.push(*t);
        }
        Insn::IfNull(t) | Insn::IfNonNull(t) => {
            pop_initialized_ref(ctx, st, i)?;
            succs.push(*t);
        }
        Insn::Goto(t) => {
            succs.push(*t);
            fall = false;
        }
        Insn::Jsr(_) | Insn::Ret(_) => {
            return Err(ctx.fail(
                i,
                "subroutines (jsr/ret) are rejected by this verifier".into(),
            ));
        }
        Insn::TableSwitch {
            default, targets, ..
        } => {
            pop_expect(ctx, st, i, &VType::Int)?;
            succs.push(*default);
            succs.extend_from_slice(targets);
            fall = false;
        }
        Insn::LookupSwitch { default, pairs } => {
            pop_expect(ctx, st, i, &VType::Int)?;
            succs.push(*default);
            succs.extend(pairs.iter().map(|(_, t)| *t));
            fall = false;
        }
        Insn::Return(kind) => {
            ctx.checks += 1;
            let ret = ctx.ret.clone();
            match (kind, &ret) {
                (None, None) => {}
                (Some(k), Some(rt)) => {
                    let want = VType::of_field_type(rt);
                    let v = pop(ctx, st, i)?;
                    let kind_ok = match k {
                        Kind::Int => want == VType::Int,
                        Kind::Long => want == VType::Long,
                        Kind::Float => want == VType::Float,
                        Kind::Double => want == VType::Double,
                        Kind::Ref => matches!(want, VType::Ref(_)),
                    };
                    if !kind_ok {
                        return Err(ctx.fail(i, format!("return kind {k:?} vs {rt}")));
                    }
                    compat(ctx, i, &v, &want)?;
                }
                (got, want) => {
                    return Err(
                        ctx.fail(i, format!("return {got:?} from method returning {want:?}"))
                    );
                }
            }
            if ctx.is_init && !st.this_init {
                return Err(ctx.fail(i, "constructor returns before super <init>".into()));
            }
            fall = false;
        }
        Insn::GetStatic(idx) => {
            let (c, n, d) = member(ctx, i, *idx)?;
            field_assumption(ctx, i, &c, &n, &d)?;
            st.stack.push(VType::of_field_type(&FieldType::parse(&d)?));
        }
        Insn::PutStatic(idx) => {
            let (c, n, d) = member(ctx, i, *idx)?;
            field_assumption(ctx, i, &c, &n, &d)?;
            let want = VType::of_field_type(&FieldType::parse(&d)?);
            let v = pop(ctx, st, i)?;
            compat(ctx, i, &v, &want)?;
        }
        Insn::GetField(idx) => {
            let (c, n, d) = member(ctx, i, *idx)?;
            field_assumption(ctx, i, &c, &n, &d)?;
            pop_initialized_ref(ctx, st, i)?;
            st.stack.push(VType::of_field_type(&FieldType::parse(&d)?));
        }
        Insn::PutField(idx) => {
            let (c, n, d) = member(ctx, i, *idx)?;
            field_assumption(ctx, i, &c, &n, &d)?;
            let want = VType::of_field_type(&FieldType::parse(&d)?);
            let v = pop(ctx, st, i)?;
            compat(ctx, i, &v, &want)?;
            // Receiver: an initialized reference, or `this` inside a
            // constructor storing to its own fields before super-init.
            let recv = pop(ctx, st, i)?;
            let ok =
                recv.is_initialized_reference() || (recv == VType::UninitThis && c == ctx.class);
            if !ok {
                return Err(ctx.fail(i, format!("putfield on {recv:?}")));
            }
        }
        Insn::InvokeVirtual(idx) | Insn::InvokeInterface(idx) => {
            invoke(ctx, st, i, *idx, InvokeKind::Virtual)?;
        }
        Insn::InvokeSpecial(idx) => {
            invoke(ctx, st, i, *idx, InvokeKind::Special)?;
        }
        Insn::InvokeStatic(idx) => {
            invoke(ctx, st, i, *idx, InvokeKind::Static)?;
        }
        Insn::New(idx) => {
            ctx.checks += 1;
            ctx.cf
                .pool
                .get_class_name(*idx)
                .map_err(|e| ctx.fail(i, e.to_string()))?;
            st.stack.push(VType::Uninit(i));
        }
        Insn::NewArray(kind) => {
            pop_expect(ctx, st, i, &VType::Int)?;
            st.stack
                .push(VType::Ref(akind_array_desc(*kind).to_owned()));
        }
        Insn::ANewArray(idx) => {
            let name = ctx
                .cf
                .pool
                .get_class_name(*idx)
                .map_err(|e| ctx.fail(i, e.to_string()))?
                .to_owned();
            pop_expect(ctx, st, i, &VType::Int)?;
            let desc = if name.starts_with('[') {
                format!("[{name}")
            } else {
                format!("[L{name};")
            };
            st.stack.push(VType::Ref(desc));
        }
        Insn::ArrayLength => {
            let arr = pop_initialized_ref(ctx, st, i)?;
            if let VType::Ref(name) = &arr {
                if !name.starts_with('[') {
                    return Err(ctx.fail(i, format!("arraylength of {name}")));
                }
            }
            st.stack.push(VType::Int);
        }
        Insn::AThrow => {
            let exc = pop_initialized_ref(ctx, st, i)?;
            if let VType::Ref(name) = &exc {
                if name != "java/lang/Throwable" {
                    ctx.assume(
                        Assumption::Extends {
                            class: name.clone(),
                            superclass: "java/lang/Throwable".to_owned(),
                        },
                        Scope::Method,
                    );
                }
            }
            fall = false;
        }
        Insn::CheckCast(idx) => {
            let name = ctx
                .cf
                .pool
                .get_class_name(*idx)
                .map_err(|e| ctx.fail(i, e.to_string()))?
                .to_owned();
            pop_initialized_ref(ctx, st, i)?;
            st.stack.push(VType::Ref(name));
        }
        Insn::InstanceOf(idx) => {
            ctx.checks += 1;
            ctx.cf
                .pool
                .get_class_name(*idx)
                .map_err(|e| ctx.fail(i, e.to_string()))?;
            pop_initialized_ref(ctx, st, i)?;
            st.stack.push(VType::Int);
        }
        Insn::MonitorEnter | Insn::MonitorExit => {
            pop_initialized_ref(ctx, st, i)?;
        }
        Insn::MultiANewArray(idx, dims) => {
            let name = ctx
                .cf
                .pool
                .get_class_name(*idx)
                .map_err(|e| ctx.fail(i, e.to_string()))?
                .to_owned();
            for _ in 0..*dims {
                pop_expect(ctx, st, i, &VType::Int)?;
            }
            st.stack.push(VType::Ref(name));
        }
    }
    if fall {
        succs.push(i + 1);
    }
    Ok(succs)
}

fn check_array_ref(ctx: &mut Ctx<'_>, i: usize, arr: &VType, kind: AKind) -> Result<VType> {
    ctx.checks += 1;
    match arr {
        VType::Null => Ok(akind_elem(kind)),
        VType::Ref(name) if name.starts_with('[') => {
            let elem_desc = &name[1..];
            match kind {
                AKind::Ref => {
                    if elem_desc.starts_with('L') || elem_desc.starts_with('[') {
                        let elem = FieldType::parse(elem_desc)
                            .map(|ft| VType::of_field_type(&ft))
                            .unwrap_or(VType::Ref("java/lang/Object".to_owned()));
                        Ok(elem)
                    } else {
                        Err(ctx.fail(i, format!("reference array op on {name}")))
                    }
                }
                prim => {
                    let want = akind_array_desc(prim);
                    // boolean arrays share the byte opcodes.
                    let ok = name == want || (prim == AKind::Byte && name == "[Z");
                    if ok {
                        Ok(akind_elem(prim))
                    } else {
                        Err(ctx.fail(i, format!("{prim:?} array op on {name}")))
                    }
                }
            }
        }
        VType::Ref(name) => Err(ctx.fail(i, format!("array op on non-array {name}"))),
        other => Err(ctx.fail(i, format!("array op on {other:?}"))),
    }
}

fn dup_form(ctx: &mut Ctx<'_>, st: &mut MState, i: usize, insn: &Insn) -> Result<()> {
    // Generic block duplication mirroring the interpreter's semantics,
    // with category checks per form.
    let top_slots: u16 = match insn {
        Insn::DupX1 | Insn::DupX2 => 1,
        _ => 2,
    };
    let mut block = Vec::new();
    let mut slots = 0;
    while slots < top_slots {
        let v = pop(ctx, st, i)?;
        slots += if v.is_wide() { 2 } else { 1 };
        block.push(v);
    }
    if matches!(insn, Insn::DupX1 | Insn::DupX2) && block[0].is_wide() {
        return Err(ctx.fail(i, "dup_x of category-2 value".into()));
    }
    let mut skipped = Vec::new();
    match insn {
        Insn::Dup2 => {}
        Insn::DupX1 | Insn::Dup2X1 => {
            let v = pop(ctx, st, i)?;
            if v.is_wide() {
                return Err(ctx.fail(i, "x1 form across category-2 value".into()));
            }
            skipped.push(v);
        }
        Insn::DupX2 | Insn::Dup2X2 => {
            let v = pop(ctx, st, i)?;
            let wide = v.is_wide();
            skipped.push(v);
            if !wide {
                skipped.push(pop(ctx, st, i)?);
            }
        }
        _ => unreachable!(),
    }
    for v in block.iter().rev() {
        st.stack.push(v.clone());
    }
    for v in skipped.iter().rev() {
        st.stack.push(v.clone());
    }
    for v in block.iter().rev() {
        st.stack.push(v.clone());
    }
    Ok(())
}

fn member(ctx: &mut Ctx<'_>, i: usize, idx: u16) -> Result<(String, String, String)> {
    ctx.checks += 1;
    let (c, n, d) = ctx
        .cf
        .pool
        .get_member_ref(idx)
        .map_err(|e| ctx.fail(i, e.to_string()))?;
    Ok((c.to_owned(), n.to_owned(), d.to_owned()))
}

/// For references to this class, check the member locally; for others,
/// record an assumption.
fn field_assumption(
    ctx: &mut Ctx<'_>,
    i: usize,
    class: &str,
    name: &str,
    descriptor: &str,
) -> Result<()> {
    if class == ctx.class {
        ctx.checks += 1;
        let found = ctx.cf.fields.iter().any(|f| {
            f.name(&ctx.cf.pool).map(|n| n == name).unwrap_or(false)
                && f.descriptor(&ctx.cf.pool)
                    .map(|d| d == descriptor)
                    .unwrap_or(false)
        });
        if !found {
            return Err(ctx.fail(
                i,
                format!("no such field {name}:{descriptor} in this class"),
            ));
        }
    } else {
        ctx.assume(
            Assumption::FieldExists {
                class: class.to_owned(),
                name: name.to_owned(),
                descriptor: descriptor.to_owned(),
            },
            Scope::Method,
        );
    }
    Ok(())
}

enum InvokeKind {
    Virtual,
    Special,
    Static,
}

fn invoke(ctx: &mut Ctx<'_>, st: &mut MState, i: usize, idx: u16, kind: InvokeKind) -> Result<()> {
    let (class, name, descriptor) = member(ctx, i, idx)?;
    let desc = MethodDescriptor::parse(&descriptor).map_err(|e| ctx.fail(i, e.to_string()))?;

    // Arguments, right to left.
    for p in desc.params.iter().rev() {
        let want = VType::of_field_type(p);
        let v = pop(ctx, st, i)?;
        compat(ctx, i, &v, &want)?;
    }

    let is_ctor = name == "<init>";
    match kind {
        InvokeKind::Static => {
            if is_ctor {
                return Err(ctx.fail(i, "invokestatic of constructor".into()));
            }
        }
        InvokeKind::Special if is_ctor => {
            let recv = pop(ctx, st, i)?;
            match recv {
                VType::Uninit(site) => {
                    // The constructed class must match the `new` site's class.
                    ctx.checks += 1;
                    // Replace every occurrence with the initialized type.
                    let init = VType::Ref(class.clone());
                    for v in st.locals.iter_mut().chain(st.stack.iter_mut()) {
                        if *v == VType::Uninit(site) {
                            *v = init.clone();
                        }
                    }
                }
                VType::UninitThis => {
                    // Must be a constructor of this class or its direct
                    // superclass.
                    ctx.checks += 1;
                    let sup = ctx
                        .cf
                        .super_name()
                        .ok()
                        .flatten()
                        .unwrap_or("java/lang/Object");
                    if class != ctx.class && class != sup {
                        return Err(ctx.fail(
                            i,
                            format!("constructor chain calls {class}, expected {sup} or self"),
                        ));
                    }
                    let init = VType::Ref(ctx.class.clone());
                    for v in st.locals.iter_mut().chain(st.stack.iter_mut()) {
                        if *v == VType::UninitThis {
                            *v = init.clone();
                        }
                    }
                    st.this_init = true;
                }
                other => {
                    return Err(ctx.fail(i, format!("<init> on {other:?}")));
                }
            }
        }
        _ => {
            if is_ctor {
                return Err(ctx.fail(i, "constructor invoked non-specially".into()));
            }
            let recv = pop_initialized_ref(ctx, st, i)?;
            if let VType::Ref(rname) = &recv {
                if rname != &class && class != "java/lang/Object" && !rname.starts_with('[') {
                    ctx.assume(
                        Assumption::Extends {
                            class: rname.clone(),
                            superclass: class.clone(),
                        },
                        Scope::Method,
                    );
                }
            }
        }
    }

    // Member-existence assumption or local check.
    if class == ctx.class {
        ctx.checks += 1;
        let found = ctx.cf.methods.iter().any(|m| {
            m.name(&ctx.cf.pool).map(|n| n == name).unwrap_or(false)
                && m.descriptor(&ctx.cf.pool)
                    .map(|d| d == descriptor)
                    .unwrap_or(false)
        });
        // Inherited methods invoked via this-class references are legal;
        // treat a miss as an assumption on the superclass instead of an
        // error.
        if !found {
            if let Ok(Some(sup)) = ctx.cf.super_name() {
                let sup = sup.to_owned();
                ctx.assume(
                    Assumption::MethodExists {
                        class: sup,
                        name: name.clone(),
                        descriptor: descriptor.clone(),
                    },
                    Scope::Method,
                );
            }
        }
    } else {
        ctx.assume(
            Assumption::MethodExists {
                class: class.clone(),
                name: name.clone(),
                descriptor: descriptor.clone(),
            },
            Scope::Method,
        );
    }

    if let Some(rt) = &desc.ret {
        st.stack.push(VType::of_field_type(rt));
    }
    Ok(())
}
