//! The signature environment a static verifier checks assumptions against.
//!
//! On the proxy, this is built from the bootstrap library plus every class
//! the proxy has already processed (its cache); assumptions about classes
//! outside the environment are deferred to runtime checks.

use std::collections::HashMap;

use dvm_classfile::ClassFile;

use crate::assumptions::Assumption;

/// Answers signature questions about known classes.
///
/// Every method returns `Some(answer)` when the class is known and `None`
/// when it is outside the environment (forcing a deferred runtime check).
pub trait SignatureEnvironment {
    /// Does `class` export field `name` with `descriptor`?
    fn has_field(&self, class: &str, name: &str, descriptor: &str) -> Option<bool>;
    /// Does `class` (or a supertype) export method `name` with `descriptor`?
    fn has_method(&self, class: &str, name: &str, descriptor: &str) -> Option<bool>;
    /// Is `class` a subtype of `superclass`?
    fn extends(&self, class: &str, superclass: &str) -> Option<bool>;

    /// Checks an assumption: `Some(true)` = holds, `Some(false)` =
    /// violated, `None` = unknown (defer to runtime).
    fn check(&self, a: &Assumption) -> Option<bool> {
        match a {
            Assumption::FieldExists {
                class,
                name,
                descriptor,
            } => self.has_field(class, name, descriptor),
            Assumption::MethodExists {
                class,
                name,
                descriptor,
            } => self.has_method(class, name, descriptor),
            Assumption::Extends { class, superclass } => self.extends(class, superclass),
        }
    }
}

/// An environment that knows nothing: every assumption defers to runtime.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyEnvironment;

impl SignatureEnvironment for EmptyEnvironment {
    fn has_field(&self, _: &str, _: &str, _: &str) -> Option<bool> {
        None
    }
    fn has_method(&self, _: &str, _: &str, _: &str) -> Option<bool> {
        None
    }
    fn extends(&self, _: &str, _: &str) -> Option<bool> {
        None
    }
}

#[derive(Debug, Clone)]
struct ClassSig {
    super_name: Option<String>,
    interfaces: Vec<String>,
    fields: Vec<(String, String)>,
    methods: Vec<(String, String)>,
}

/// An environment built from a set of class files.
#[derive(Debug, Default, Clone)]
pub struct MapEnvironment {
    classes: HashMap<String, ClassSig>,
}

impl MapEnvironment {
    /// Creates an empty environment.
    pub fn new() -> MapEnvironment {
        MapEnvironment::default()
    }

    /// Creates an environment seeded with the DVM bootstrap library, which
    /// every client is guaranteed to have.
    pub fn with_bootstrap() -> MapEnvironment {
        let mut env = MapEnvironment::new();
        for cf in dvm_jvm_bootstrap_classes() {
            env.add(&cf);
        }
        env
    }

    /// Adds a class's exported signatures.
    pub fn add(&mut self, cf: &ClassFile) {
        let Ok(name) = cf.name() else { return };
        let sig = ClassSig {
            super_name: cf.super_name().ok().flatten().map(str::to_owned),
            interfaces: cf
                .interface_names()
                .map(|v| v.into_iter().map(str::to_owned).collect())
                .unwrap_or_default(),
            fields: cf
                .fields
                .iter()
                .filter_map(|f| {
                    Some((
                        f.name(&cf.pool).ok()?.to_owned(),
                        f.descriptor(&cf.pool).ok()?.to_owned(),
                    ))
                })
                .collect(),
            methods: cf
                .methods
                .iter()
                .filter_map(|m| {
                    Some((
                        m.name(&cf.pool).ok()?.to_owned(),
                        m.descriptor(&cf.pool).ok()?.to_owned(),
                    ))
                })
                .collect(),
        };
        self.classes.insert(name.to_owned(), sig);
    }

    /// Number of classes known.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` when no classes are known.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Returns `true` when `class` is in the environment.
    pub fn knows(&self, class: &str) -> bool {
        self.classes.contains_key(class)
    }
}

/// The runtime library every client ships; its signatures seed the
/// environment so references into `java/lang` and `dvm/rt` are discharged
/// statically rather than deferred.
fn dvm_jvm_bootstrap_classes() -> Vec<ClassFile> {
    dvm_jvm::bootstrap::bootstrap_classes()
}

impl SignatureEnvironment for MapEnvironment {
    fn has_field(&self, class: &str, name: &str, descriptor: &str) -> Option<bool> {
        let mut cur = self.classes.get(class)?;
        loop {
            if cur.fields.iter().any(|(n, d)| n == name && d == descriptor) {
                return Some(true);
            }
            match &cur.super_name {
                Some(s) => match self.classes.get(s) {
                    Some(next) => cur = next,
                    // Unknown superclass: cannot prove absence.
                    None => return None,
                },
                None => return Some(false),
            }
        }
    }

    fn has_method(&self, class: &str, name: &str, descriptor: &str) -> Option<bool> {
        let mut cur = self.classes.get(class)?;
        loop {
            if cur
                .methods
                .iter()
                .any(|(n, d)| n == name && d == descriptor)
            {
                return Some(true);
            }
            // Interfaces may also declare it.
            for iface in &cur.interfaces {
                if let Some(sig) = self.classes.get(iface) {
                    if sig
                        .methods
                        .iter()
                        .any(|(n, d)| n == name && d == descriptor)
                    {
                        return Some(true);
                    }
                }
            }
            match &cur.super_name {
                Some(s) => match self.classes.get(s) {
                    Some(next) => cur = next,
                    None => return None,
                },
                None => return Some(false),
            }
        }
    }

    fn extends(&self, class: &str, superclass: &str) -> Option<bool> {
        if class == superclass {
            return Some(true);
        }
        let mut cur = self.classes.get(class)?;
        loop {
            if cur.super_name.as_deref() == Some(superclass)
                || cur.interfaces.iter().any(|i| i == superclass)
            {
                return Some(true);
            }
            // Walk interfaces transitively.
            for iface in &cur.interfaces {
                if let Some(true) = self.extends(iface, superclass) {
                    return Some(true);
                }
            }
            match &cur.super_name {
                Some(s) => match self.classes.get(s) {
                    Some(next) => cur = next,
                    None => return None,
                },
                None => return Some(false),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::{AccessFlags, ClassBuilder};

    fn env() -> MapEnvironment {
        let mut env = MapEnvironment::new();
        env.add(
            &ClassBuilder::new("java/lang/Object")
                .no_super_class()
                .build(),
        );
        env.add(
            &ClassBuilder::new("A")
                .field(AccessFlags::PUBLIC, "x", "I")
                .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "f", "()V")
                .build(),
        );
        env.add(&ClassBuilder::new("B").super_class("A").build());
        env
    }

    #[test]
    fn fields_resolve_through_supers() {
        let env = env();
        assert_eq!(env.has_field("A", "x", "I"), Some(true));
        assert_eq!(env.has_field("B", "x", "I"), Some(true));
        assert_eq!(env.has_field("B", "y", "I"), Some(false));
        assert_eq!(env.has_field("Zed", "x", "I"), None);
    }

    #[test]
    fn methods_resolve_through_supers() {
        let env = env();
        assert_eq!(env.has_method("B", "f", "()V"), Some(true));
        assert_eq!(env.has_method("B", "g", "()V"), Some(false));
    }

    #[test]
    fn extends_walks_chain() {
        let env = env();
        assert_eq!(env.extends("B", "A"), Some(true));
        assert_eq!(env.extends("B", "java/lang/Object"), Some(true));
        assert_eq!(env.extends("A", "B"), Some(false));
        assert_eq!(env.extends("Q", "A"), None);
    }

    #[test]
    fn bootstrap_environment_knows_the_runtime_library() {
        let env = MapEnvironment::with_bootstrap();
        assert_eq!(
            env.has_field("java/lang/System", "out", "Ljava/io/PrintStream;"),
            Some(true)
        );
        assert_eq!(
            env.has_method("java/io/PrintStream", "println", "(Ljava/lang/String;)V"),
            Some(true)
        );
        assert_eq!(
            env.extends("java/lang/VerifyError", "java/lang/Throwable"),
            Some(true)
        );
    }
}
