//! Link-time assumptions collected during static verification.
//!
//! Phase 3 runs on one class in isolation; every belief it forms about
//! *other* classes is recorded as an [`Assumption`] with a [`Scope`]. The
//! static service discharges the ones it can see in its environment; the
//! rest are compiled into runtime checks (phase 4's dynamic component, as
//! in Figure 3 of the paper).

/// How much of the class an assumption's failure would invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// The whole class (e.g. its inheritance relationship).
    Class,
    /// One method (e.g. a member reference its code performs).
    Method,
}

/// A belief about another class that must hold at link time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Assumption {
    /// `class` must export a field `name` of type `descriptor`.
    FieldExists {
        /// Declaring class searched.
        class: String,
        /// Field name.
        name: String,
        /// Field descriptor.
        descriptor: String,
    },
    /// `class` must export a method `name` with `descriptor`.
    MethodExists {
        /// Declaring class searched.
        class: String,
        /// Method name.
        name: String,
        /// Method descriptor.
        descriptor: String,
    },
    /// `class` must be a subtype of `superclass`.
    Extends {
        /// The subtype.
        class: String,
        /// The required supertype.
        superclass: String,
    },
}

impl Assumption {
    /// The class this assumption constrains.
    pub fn subject(&self) -> &str {
        match self {
            Assumption::FieldExists { class, .. }
            | Assumption::MethodExists { class, .. }
            | Assumption::Extends { class, .. } => class,
        }
    }
}

/// An assumption plus the method that formed it (None = class scope).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScopedAssumption {
    /// The assumption.
    pub assumption: Assumption,
    /// Scope of invalidation.
    pub scope: Scope,
    /// Method `(name, descriptor)` that relies on it, for method scope.
    pub method: Option<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_extraction() {
        let a = Assumption::FieldExists {
            class: "java/lang/System".into(),
            name: "out".into(),
            descriptor: "Ljava/io/PrintStream;".into(),
        };
        assert_eq!(a.subject(), "java/lang/System");
    }
}
