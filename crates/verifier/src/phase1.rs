//! Phase 1: class-file internal consistency.
//!
//! Checks that the constant pool is self-consistent, that `this`/`super`
//! and member names/descriptors resolve and parse, and that access flags
//! are coherent. Every individual judgment increments the static check
//! counter (the paper's Figure 8 counts checks, not methods).

use dvm_classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_classfile::pool::Constant;
use dvm_classfile::{AccessFlags, ClassFile};

use crate::error::{Result, VerifyFailure};

fn fail(class: &str, reason: String) -> VerifyFailure {
    dvm_fuzz::cov!("verify.phase1.fail");
    VerifyFailure {
        phase: 1,
        class: class.to_owned(),
        method: None,
        at: None,
        reason,
    }
}

/// Runs phase 1, returning the number of checks performed.
pub fn check(cf: &ClassFile) -> Result<u64> {
    dvm_fuzz::cov!("verify.phase1");
    let mut checks = 0u64;
    let name = cf.name().map_err(|e| fail("?", e.to_string()))?.to_owned();

    // Pool cross-reference integrity.
    cf.pool
        .check_structure()
        .map_err(|e| fail(&name, e.to_string()))?;
    checks += cf.pool.len() as u64;

    // this/super/interfaces resolve to Class entries.
    checks += 1;
    cf.pool
        .get_class_name(cf.this_class)
        .map_err(|e| fail(&name, e.to_string()))?;
    if cf.super_class != 0 {
        checks += 1;
        cf.pool
            .get_class_name(cf.super_class)
            .map_err(|e| fail(&name, e.to_string()))?;
    } else if name != "java/lang/Object" {
        return Err(fail(
            &name,
            "only java/lang/Object may omit a superclass".into(),
        ));
    }
    for &i in &cf.interfaces {
        checks += 1;
        cf.pool
            .get_class_name(i)
            .map_err(|e| fail(&name, e.to_string()))?;
    }

    // Class flags coherence.
    checks += 1;
    if cf.access.is_interface() && !cf.access.is_abstract() {
        return Err(fail(&name, "interface must be abstract".into()));
    }
    checks += 1;
    if cf.access.is_final() && cf.access.is_abstract() {
        return Err(fail(
            &name,
            "class cannot be both final and abstract".into(),
        ));
    }

    // Field names/descriptors and flags.
    for f in &cf.fields {
        let fname = f.name(&cf.pool).map_err(|e| fail(&name, e.to_string()))?;
        let fdesc = f
            .descriptor(&cf.pool)
            .map_err(|e| fail(&name, e.to_string()))?;
        checks += 1;
        FieldType::parse(fdesc).map_err(|e| fail(&name, format!("field {fname}: {e}")))?;
        checks += 1;
        if f.access
            .contains(AccessFlags::PUBLIC | AccessFlags::PRIVATE)
            || f.access
                .contains(AccessFlags::PUBLIC | AccessFlags::PROTECTED)
            || f.access
                .contains(AccessFlags::PRIVATE | AccessFlags::PROTECTED)
        {
            return Err(fail(
                &name,
                format!("field {fname}: conflicting visibility"),
            ));
        }
    }

    // Method names/descriptors, flags, and body presence.
    for m in &cf.methods {
        let mname = m.name(&cf.pool).map_err(|e| fail(&name, e.to_string()))?;
        let mdesc = m
            .descriptor(&cf.pool)
            .map_err(|e| fail(&name, e.to_string()))?;
        checks += 1;
        let parsed = MethodDescriptor::parse(mdesc)
            .map_err(|e| fail(&name, format!("method {mname}: {e}")))?;
        checks += 1;
        if mname == "<init>" && parsed.ret.is_some() {
            return Err(fail(&name, "constructor must return void".into()));
        }
        checks += 1;
        let has_body = m.code().is_some();
        let must_be_bodyless = m.access.is_native() || m.access.is_abstract();
        if has_body && must_be_bodyless {
            return Err(fail(
                &name,
                format!("method {mname}: native/abstract with body"),
            ));
        }
        if !has_body && !must_be_bodyless {
            return Err(fail(
                &name,
                format!("method {mname}: missing Code attribute"),
            ));
        }
        checks += 1;
        if m.access.is_abstract() && m.access.is_final() {
            return Err(fail(&name, format!("method {mname}: abstract final")));
        }
    }

    // String/ldc-referenced constants have sane shapes (redundant with the
    // pool structural check, but counted separately as the paper's verifiers
    // cross-validate redundant data in class files).
    for (_, c) in cf.pool.iter() {
        if let Constant::NameAndType { descriptor, .. } = c {
            checks += 1;
            let d = cf
                .pool
                .get_utf8(*descriptor)
                .map_err(|e| fail(&name, e.to_string()))?;
            let ok = if d.starts_with('(') {
                MethodDescriptor::parse(d).is_ok()
            } else {
                FieldType::parse(d).is_ok()
            };
            if !ok {
                return Err(fail(
                    &name,
                    format!("NameAndType descriptor {d:?} is malformed"),
                ));
            }
        }
    }

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::attributes::CodeAttribute;
    use dvm_classfile::ClassBuilder;

    #[test]
    fn accepts_well_formed_class() {
        let cf = ClassBuilder::new("t/Ok")
            .field(AccessFlags::PRIVATE, "x", "I")
            .method(
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                "f",
                "()I",
                CodeAttribute {
                    max_stack: 1,
                    code: vec![0x03, 0xAC],
                    ..Default::default()
                },
            )
            .build();
        assert!(check(&cf).unwrap() > 0);
    }

    #[test]
    fn rejects_method_without_body() {
        let cf = ClassBuilder::new("t/NoBody")
            .bodyless_method(AccessFlags::PUBLIC, "f", "()V")
            .build();
        let err = check(&cf).unwrap_err();
        assert_eq!(err.phase, 1);
        assert!(err.reason.contains("missing Code"));
    }

    #[test]
    fn rejects_constructor_returning_value() {
        let cf = ClassBuilder::new("t/BadCtor")
            .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "<init>", "()I")
            .build();
        let err = check(&cf).unwrap_err();
        assert!(err.reason.contains("constructor"));
    }

    #[test]
    fn rejects_bad_field_descriptor() {
        let cf = ClassBuilder::new("t/BadField")
            .field(AccessFlags::PUBLIC, "x", "Q")
            .build();
        assert!(check(&cf).is_err());
    }

    #[test]
    fn rejects_final_abstract_class() {
        let cf = ClassBuilder::new("t/FA")
            .access(AccessFlags::PUBLIC | AccessFlags::FINAL | AccessFlags::ABSTRACT)
            .build();
        assert!(check(&cf).is_err());
    }

    #[test]
    fn rejects_missing_superclass_on_non_object() {
        let cf = ClassBuilder::new("t/NoSuper").no_super_class().build();
        assert!(check(&cf).is_err());
    }
}
