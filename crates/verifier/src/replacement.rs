//! Replacement classes for verification failures.
//!
//! The paper (§3.1): "The distributed verification service propagates any
//! errors to the client by forwarding a replacement class that raises a
//! verification exception during its initialization." The replacement
//! preserves the original's method signatures (as unreachable stubs) so
//! that resolution succeeds; the first *use* then runs `<clinit>`, which
//! throws `java/lang/VerifyError` through the ordinary exception
//! mechanism.

use dvm_bytecode::insn::{Insn, Kind};
use dvm_bytecode::Code;
use dvm_classfile::descriptor::{FieldType, MethodDescriptor};
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};

/// Builds a replacement for class `name` whose `<clinit>` throws
/// `VerifyError` with `message`. When `original` is supplied, its method
/// signatures are preserved as stubs.
pub fn replacement_class(name: &str, message: &str, original: Option<&ClassFile>) -> ClassFile {
    let mut cf = ClassBuilder::new(name).build();
    let verify_error = cf.pool.class("java/lang/VerifyError").expect("small pool");
    let ctor = cf
        .pool
        .methodref("java/lang/VerifyError", "<init>", "(Ljava/lang/String;)V")
        .expect("small pool");
    let msg = cf.pool.string(message).expect("small pool");
    let clinit = Code {
        insns: vec![
            Insn::New(verify_error),
            Insn::Dup,
            Insn::Ldc(msg),
            Insn::InvokeSpecial(ctor),
            Insn::AThrow,
        ],
        handlers: vec![],
        max_locals: 0,
    };
    let attr = clinit.encode(&cf.pool).expect("replacement body encodes");
    push_method(
        &mut cf,
        AccessFlags::STATIC | AccessFlags::SYNTHETIC,
        "<clinit>",
        "()V",
        attr,
    );

    if let Some(orig) = original {
        for m in &orig.methods {
            let (Ok(mname), Ok(mdesc)) = (m.name(&orig.pool), m.descriptor(&orig.pool)) else {
                continue;
            };
            if mname == "<clinit>" {
                continue;
            }
            let (mname, mdesc) = (mname.to_owned(), mdesc.to_owned());
            let Ok(desc) = MethodDescriptor::parse(&mdesc) else {
                continue;
            };
            // Unreachable stub: <clinit> throws before any body runs.
            let body = Code {
                insns: stub_return(&desc),
                handlers: vec![],
                max_locals: desc.param_slots() + if m.access.is_static() { 0 } else { 1 },
            };
            let Ok(attr) = body.encode(&cf.pool) else {
                continue;
            };
            // Stubs carry bodies, so strip native/abstract from the
            // original flags.
            let access =
                AccessFlags(m.access.0 & !(AccessFlags::NATIVE.0 | AccessFlags::ABSTRACT.0));
            push_method(&mut cf, access, &mname, &mdesc, attr);
        }
    }
    cf
}

fn stub_return(desc: &MethodDescriptor) -> Vec<Insn> {
    match &desc.ret {
        None => vec![Insn::Return(None)],
        Some(FieldType::Long) => vec![Insn::LConst(0), Insn::Return(Some(Kind::Long))],
        Some(FieldType::Float) => vec![Insn::FConst(0.0), Insn::Return(Some(Kind::Float))],
        Some(FieldType::Double) => vec![Insn::DConst(0.0), Insn::Return(Some(Kind::Double))],
        Some(FieldType::Object(_)) | Some(FieldType::Array(_)) => {
            vec![Insn::AConstNull, Insn::Return(Some(Kind::Ref))]
        }
        Some(_) => vec![Insn::IConst(0), Insn::Return(Some(Kind::Int))],
    }
}

fn push_method(
    cf: &mut ClassFile,
    access: AccessFlags,
    name: &str,
    descriptor: &str,
    code: dvm_classfile::CodeAttribute,
) {
    let name_index = cf.pool.utf8(name).expect("small pool");
    let descriptor_index = cf.pool.utf8(descriptor).expect("small pool");
    cf.methods.push(MemberInfo {
        access: access | AccessFlags::SYNTHETIC,
        name_index,
        descriptor_index,
        attributes: vec![Attribute::Code(code)],
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_parses_and_carries_message() {
        let mut cf = replacement_class("bad/Applet", "phase 3 rejected bad/Applet", None);
        let bytes = cf.to_bytes().unwrap();
        let parsed = ClassFile::parse(&bytes).unwrap();
        assert_eq!(parsed.name().unwrap(), "bad/Applet");
        assert!(parsed.find_method("<clinit>", "()V").is_some());
    }

    #[test]
    fn replacement_preserves_signatures() {
        let orig = ClassBuilder::new("bad/App")
            .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "run", "()I")
            .bodyless_method(
                AccessFlags::PUBLIC | AccessFlags::STATIC | AccessFlags::NATIVE,
                "main",
                "()V",
            )
            .build();
        let rep = replacement_class("bad/App", "bad", Some(&orig));
        assert!(rep.find_method("run", "()I").is_some());
        assert!(rep.find_method("main", "()V").is_some());
        // Stub bodies exist even where the original was native.
        assert!(rep.find_method("run", "()I").unwrap().code().is_some());
    }
}
