//! Verification failure type.

use std::fmt;

use dvm_bytecode::BytecodeError;
use dvm_classfile::ClassFileError;

/// A verification failure: which phase rejected the class and why.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyFailure {
    /// Phase that failed (1–4).
    pub phase: u8,
    /// Class being verified.
    pub class: String,
    /// Method (if the failure is inside one).
    pub method: Option<String>,
    /// Instruction index (if applicable).
    pub at: Option<usize>,
    /// Human-readable explanation.
    pub reason: String,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase {} rejected {}", self.phase, self.class)?;
        if let Some(m) = &self.method {
            write!(f, ".{m}")?;
        }
        if let Some(at) = self.at {
            write!(f, " at instruction {at}")?;
        }
        write!(f, ": {}", self.reason)
    }
}

impl std::error::Error for VerifyFailure {}

impl From<ClassFileError> for VerifyFailure {
    fn from(e: ClassFileError) -> Self {
        VerifyFailure {
            phase: 1,
            class: String::new(),
            method: None,
            at: None,
            reason: e.to_string(),
        }
    }
}

impl From<BytecodeError> for VerifyFailure {
    fn from(e: BytecodeError) -> Self {
        VerifyFailure {
            phase: 2,
            class: String::new(),
            method: None,
            at: None,
            reason: e.to_string(),
        }
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, VerifyFailure>;
