//! The verification type lattice.

use dvm_classfile::descriptor::FieldType;

/// An abstract value type tracked by the phase-3 dataflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VType {
    /// Unusable: merge conflict or uninitialized local.
    Top,
    /// `int` and the int-like small types.
    Int,
    /// `float`.
    Float,
    /// `long` (single stack entry; two local slots with [`VType::Long2`]).
    Long,
    /// Second local slot of a `long`.
    Long2,
    /// `double`.
    Double,
    /// Second local slot of a `double`.
    Double2,
    /// The null reference.
    Null,
    /// A reference of the given internal class name (`[`-prefixed names are
    /// array types).
    Ref(String),
    /// `this` in a constructor before `super.<init>` has run.
    UninitThis,
    /// The result of `new` at the given instruction index, before `<init>`.
    Uninit(usize),
}

impl VType {
    /// Converts a descriptor type to its verification type.
    pub fn of_field_type(ft: &FieldType) -> VType {
        match ft {
            FieldType::Byte
            | FieldType::Char
            | FieldType::Short
            | FieldType::Boolean
            | FieldType::Int => VType::Int,
            FieldType::Float => VType::Float,
            FieldType::Long => VType::Long,
            FieldType::Double => VType::Double,
            FieldType::Object(name) => VType::Ref(name.clone()),
            FieldType::Array(_) => VType::Ref(ft.descriptor()),
        }
    }

    /// Returns `true` for reference-kinded types (including null and
    /// uninitialized objects, which occupy reference slots).
    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            VType::Null | VType::Ref(_) | VType::UninitThis | VType::Uninit(_)
        )
    }

    /// Returns `true` for fully-initialized references.
    pub fn is_initialized_reference(&self) -> bool {
        matches!(self, VType::Null | VType::Ref(_))
    }

    /// Returns `true` for two-slot types (stack entry still counts as one
    /// element; this refers to local-slot width).
    pub fn is_wide(&self) -> bool {
        matches!(self, VType::Long | VType::Double)
    }

    /// The least upper bound of two types.
    ///
    /// Reference joins involving distinct classes conservatively widen to
    /// `java/lang/Object`: phase 3 runs on a single class in isolation (the
    /// paper's first three phases), so cross-class hierarchy questions are
    /// deferred to link-time assumptions rather than resolved here.
    pub fn merge(&self, other: &VType) -> VType {
        use VType::*;
        if self == other {
            return self.clone();
        }
        match (self, other) {
            (Null, r @ Ref(_)) | (r @ Ref(_), Null) => r.clone(),
            (Ref(_), Ref(_)) => Ref("java/lang/Object".to_owned()),
            _ => Top,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_reflexive() {
        for t in [VType::Int, VType::Long, VType::Null, VType::Ref("A".into())] {
            assert_eq!(t.merge(&t), t);
        }
    }

    #[test]
    fn null_merges_into_references() {
        let r = VType::Ref("A".into());
        assert_eq!(VType::Null.merge(&r), r);
        assert_eq!(r.merge(&VType::Null), r);
    }

    #[test]
    fn distinct_refs_widen_to_object() {
        let a = VType::Ref("A".into());
        let b = VType::Ref("B".into());
        assert_eq!(a.merge(&b), VType::Ref("java/lang/Object".into()));
    }

    #[test]
    fn incompatible_kinds_become_top() {
        assert_eq!(VType::Int.merge(&VType::Float), VType::Top);
        assert_eq!(VType::Int.merge(&VType::Ref("A".into())), VType::Top);
        assert_eq!(VType::Uninit(1).merge(&VType::Uninit(2)), VType::Top);
    }

    #[test]
    fn field_type_mapping() {
        assert_eq!(VType::of_field_type(&FieldType::Boolean), VType::Int);
        assert_eq!(
            VType::of_field_type(&FieldType::Object("X".into())),
            VType::Ref("X".into())
        );
        assert_eq!(
            VType::of_field_type(&FieldType::Array(Box::new(FieldType::Int))),
            VType::Ref("[I".into())
        );
    }
}
