//! The DVM verification service (§3.1 of the paper).
//!
//! Java verification has four phases: (1) class-file internal consistency,
//! (2) instruction integrity, (3) type safety, and (4) link-time interface
//! checks. In the distributed configuration the first three run statically
//! on a network server; phase 4 is partially discharged against the
//! server's signature environment and the remainder is compiled into the
//! application as self-verifying runtime checks (Figure 3). In the
//! monolithic configuration all four phases run on the client.
//!
//! # Examples
//!
//! ```
//! use dvm_verifier::{StaticVerifier, MapEnvironment};
//! use dvm_classfile::ClassBuilder;
//!
//! let verifier = StaticVerifier::new(MapEnvironment::with_bootstrap());
//! let class = ClassBuilder::new("demo/Empty").build();
//! let (verified, report) = verifier.verify(class).unwrap();
//! assert!(report.static_checks > 0);
//! assert_eq!(verified.name().unwrap(), "demo/Empty");
//! ```

pub mod assumptions;
pub mod env;
pub mod error;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod reflection;
pub mod replacement;
pub mod rewrite;
pub mod types;

pub use assumptions::{Assumption, Scope, ScopedAssumption};
pub use env::{EmptyEnvironment, MapEnvironment, SignatureEnvironment};
pub use error::{Result, VerifyFailure};
pub use reflection::{attach_self_describing, digest_has_member, self_description};
pub use replacement::replacement_class;
pub use types::VType;

use dvm_classfile::ClassFile;

/// Outcome statistics of a verification run (the data behind Figure 8).
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Checks performed statically (phases 1–3 plus discharged link
    /// assumptions).
    pub static_checks: u64,
    /// Runtime checks injected into the application (the dynamic
    /// component's workload).
    pub dynamic_checks_injected: u64,
    /// Link assumptions proven against the environment.
    pub discharged_assumptions: u64,
    /// All assumptions collected by phase 3.
    pub assumptions: Vec<ScopedAssumption>,
}

/// The static verification service: phases 1–3 plus the phase-4 split.
#[derive(Debug, Default)]
pub struct StaticVerifier {
    env: MapEnvironment,
}

impl StaticVerifier {
    /// Creates a verifier with the given signature environment.
    pub fn new(env: MapEnvironment) -> StaticVerifier {
        StaticVerifier { env }
    }

    /// Adds a class's signatures to the environment (the proxy does this
    /// for every class it processes, growing what it can discharge).
    pub fn learn(&mut self, cf: &ClassFile) {
        self.env.add(cf);
    }

    /// Read access to the environment.
    pub fn environment(&self) -> &MapEnvironment {
        &self.env
    }

    /// Verifies `cf`, producing the (possibly rewritten, self-verifying)
    /// class and a report.
    pub fn verify(&self, cf: ClassFile) -> Result<(ClassFile, VerifyReport)> {
        let mut report = VerifyReport::default();
        report.static_checks += phase1::check(&cf)?;
        let (p2, bodies) = phase2::check(&cf)?;
        report.static_checks += p2;
        let p3 = phase3::check(&cf, &bodies)?;
        report.static_checks += p3.checks;
        report.assumptions = p3.assumptions.clone();
        let out = rewrite::split_and_rewrite(cf, &p3.assumptions, &self.env)?;
        dvm_fuzz::cov!("verify.ok");
        report.static_checks += out.discharged;
        report.discharged_assumptions = out.discharged;
        report.dynamic_checks_injected = out.injected_checks;
        Ok((out.class, report))
    }

    /// Like [`StaticVerifier::verify`], but converts failures into the
    /// paper's replacement-class mechanism instead of an error.
    pub fn verify_or_replace(&self, cf: ClassFile) -> (ClassFile, VerifyReport) {
        let name = cf.name().unwrap_or("invalid/Class").to_owned();
        match self.verify(cf.clone()) {
            Ok(r) => r,
            Err(e) => (
                replacement_class(&name, &e.to_string(), Some(&cf)),
                VerifyReport::default(),
            ),
        }
    }
}

/// Monolithic verification: all four phases at the client against its full
/// local namespace. Returns the total number of checks performed locally.
pub fn monolithic_verify(cf: &ClassFile, env: &dyn SignatureEnvironment) -> Result<u64> {
    let mut checks = phase1::check(cf)?;
    let (p2, bodies) = phase2::check(cf)?;
    checks += p2;
    let p3 = phase3::check(cf, &bodies)?;
    checks += p3.checks;
    for sa in &p3.assumptions {
        checks += 1;
        if env.check(&sa.assumption) == Some(false) {
            return Err(VerifyFailure {
                phase: 4,
                class: cf.name()?.to_owned(),
                method: sa.method.as_ref().map(|(n, _)| n.clone()),
                at: None,
                reason: format!("link check failed: {:?}", sa.assumption),
            });
        }
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_bytecode::asm::Asm;
    use dvm_classfile::attributes::CodeAttribute;
    use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, MemberInfo};

    fn hello() -> ClassFile {
        let mut cf = ClassBuilder::new("t/Hello").build();
        let out = cf
            .pool
            .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
            .unwrap();
        let println = cf
            .pool
            .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
            .unwrap();
        let msg = cf.pool.string("hello world").unwrap();
        let mut a = Asm::new(0);
        a.getstatic(out).ldc(msg).invokevirtual(println).ret();
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("main").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        cf
    }

    #[test]
    fn hello_world_verifies_with_bootstrap_environment() {
        let v = StaticVerifier::new(MapEnvironment::with_bootstrap());
        let (out, report) = v.verify(hello()).unwrap();
        assert!(report.static_checks > 10);
        assert_eq!(report.dynamic_checks_injected, 0);
        assert_eq!(report.discharged_assumptions, 2);
        assert_eq!(out.name().unwrap(), "t/Hello");
    }

    #[test]
    fn hello_world_gets_runtime_checks_without_environment() {
        let v = StaticVerifier::new(MapEnvironment::new());
        let (out, report) = v.verify(hello()).unwrap();
        assert_eq!(report.dynamic_checks_injected, 2);
        // The rewritten main carries the Figure 3 prologue.
        let m = out.find_method("main", "()V").unwrap();
        assert!(m.code().unwrap().code.len() > 10);
    }

    #[test]
    fn type_error_is_rejected_in_phase3() {
        // Pushes a float, returns it as int.
        let mut cf = ClassBuilder::new("t/Bad").build();
        let mut a = Asm::new(0);
        a.raw(dvm_bytecode::Insn::FConst(1.0));
        a.ret_val(dvm_bytecode::Kind::Int);
        let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("()I").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        let v = StaticVerifier::default();
        let err = v.verify(cf).unwrap_err();
        assert_eq!(err.phase, 3);
    }

    #[test]
    fn verify_or_replace_produces_replacement() {
        // Hand-craft a body that underflows the stack: pop; return.
        let mut cf = ClassBuilder::new("t/Bad2").build();
        let attr = CodeAttribute {
            max_stack: 1,
            max_locals: 0,
            code: vec![0x57, 0xB1],
            ..Default::default()
        };
        let n = cf.pool.utf8("f").unwrap();
        let d = cf.pool.utf8("()V").unwrap();
        cf.methods.push(MemberInfo {
            access: AccessFlags::PUBLIC | AccessFlags::STATIC,
            name_index: n,
            descriptor_index: d,
            attributes: vec![Attribute::Code(attr)],
        });
        let v = StaticVerifier::default();
        let (out, report) = v.verify_or_replace(cf);
        assert_eq!(out.name().unwrap(), "t/Bad2");
        assert_eq!(report.static_checks, 0);
        assert!(out.find_method("<clinit>", "()V").is_some());
    }

    #[test]
    fn monolithic_verify_counts_checks() {
        let env = MapEnvironment::with_bootstrap();
        let checks = monolithic_verify(&hello(), &env).unwrap();
        assert!(checks > 10);
    }
}
