//! The reflection service (§4.3 of the paper).
//!
//! "We subsequently developed a reflection service that adds
//! self-describing attributes to classes and modified our verifier to use
//! this interface rather than the slow library interface in the Sun JDK."
//! The proxy attaches a `DvmSelfDescribing` attribute enumerating the
//! class's exported members so that injected service code (and other
//! DVM components) can answer signature queries without reflective
//! lookups against the client runtime.

use dvm_classfile::attributes::{Attribute, ExportedMember};
use dvm_classfile::{ClassFile, Result};

/// Attaches (or refreshes) the `DvmSelfDescribing` attribute on `cf`.
///
/// Only non-synthetic members are exported: the attribute describes the
/// class's public shape, not service-injected plumbing.
pub fn attach_self_describing(cf: &mut ClassFile) -> Result<usize> {
    let mut members = Vec::new();
    for f in &cf.fields {
        if f.access.is_synthetic() {
            continue;
        }
        members.push(ExportedMember {
            name: f.name(&cf.pool)?.to_owned(),
            descriptor: f.descriptor(&cf.pool)?.to_owned(),
            access: f.access.0,
            is_method: false,
        });
    }
    for m in &cf.methods {
        if m.access.is_synthetic() {
            continue;
        }
        members.push(ExportedMember {
            name: m.name(&cf.pool)?.to_owned(),
            descriptor: m.descriptor(&cf.pool)?.to_owned(),
            access: m.access.0,
            is_method: true,
        });
    }
    let count = members.len();
    cf.attributes.retain(|a| a.name() != "DvmSelfDescribing");
    cf.attributes.push(Attribute::DvmSelfDescribing(members));
    Ok(count)
}

/// Reads the self-describing digest back, if present.
pub fn self_description(cf: &ClassFile) -> Option<&[ExportedMember]> {
    cf.attributes.iter().find_map(|a| match a {
        Attribute::DvmSelfDescribing(m) => Some(m.as_slice()),
        _ => None,
    })
}

/// Answers a member-existence query from the digest alone (the fast path
/// the paper's verifier switched to).
pub fn digest_has_member(
    cf: &ClassFile,
    name: &str,
    descriptor: &str,
    is_method: bool,
) -> Option<bool> {
    self_description(cf).map(|members| {
        members
            .iter()
            .any(|m| m.is_method == is_method && m.name == name && m.descriptor == descriptor)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::{AccessFlags, ClassBuilder};

    fn sample() -> ClassFile {
        ClassBuilder::new("t/Desc")
            .field(AccessFlags::PUBLIC, "x", "I")
            .field(
                AccessFlags::PUBLIC | AccessFlags::SYNTHETIC,
                "__hidden",
                "Z",
            )
            .bodyless_method(AccessFlags::PUBLIC | AccessFlags::NATIVE, "f", "(I)I")
            .build()
    }

    #[test]
    fn attaches_public_shape_only() {
        let mut cf = sample();
        let n = attach_self_describing(&mut cf).unwrap();
        assert_eq!(n, 2, "synthetic members must be excluded");
        let d = self_description(&cf).unwrap();
        assert!(d.iter().any(|m| m.name == "x" && !m.is_method));
        assert!(d.iter().any(|m| m.name == "f" && m.is_method));
        assert!(!d.iter().any(|m| m.name == "__hidden"));
    }

    #[test]
    fn digest_queries_answer_without_reflection() {
        let mut cf = sample();
        attach_self_describing(&mut cf).unwrap();
        assert_eq!(digest_has_member(&cf, "f", "(I)I", true), Some(true));
        assert_eq!(digest_has_member(&cf, "g", "()V", true), Some(false));
        assert_eq!(digest_has_member(&cf, "x", "I", false), Some(true));
    }

    #[test]
    fn survives_serialization_and_refresh_is_idempotent() {
        let mut cf = sample();
        attach_self_describing(&mut cf).unwrap();
        attach_self_describing(&mut cf).unwrap();
        assert_eq!(
            cf.attributes
                .iter()
                .filter(|a| a.name() == "DvmSelfDescribing")
                .count(),
            1
        );
        let bytes = cf.to_bytes().unwrap();
        let parsed = ClassFile::parse(&bytes).unwrap();
        assert_eq!(digest_has_member(&parsed, "f", "(I)I", true), Some(true));
    }
}
