//! Phase-3 discipline tests: uninitialized-object tracking, constructor
//! rules, category-2 stack hygiene, and local-variable soundness.

use dvm_bytecode::insn::{ArithOp, Insn, Kind, NumKind};
use dvm_bytecode::{Asm, Code};
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_verifier::{MapEnvironment, StaticVerifier};

fn class_with_raw(
    name: &str,
    method: &str,
    desc: &str,
    access: AccessFlags,
    code: Code,
) -> ClassFile {
    let mut cf = ClassBuilder::new(name).build();
    // Encode without stack verification (we are testing the *verifier*,
    // and some bodies are deliberately type-broken but depth-sane).
    let attr = code.encode(&cf.pool).expect("depth-consistent body");
    let n = cf.pool.utf8(method).unwrap();
    let d = cf.pool.utf8(desc).unwrap();
    cf.methods.push(MemberInfo {
        access,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    cf
}

fn verifier() -> StaticVerifier {
    StaticVerifier::new(MapEnvironment::with_bootstrap())
}

#[test]
fn using_uninitialized_object_as_argument_is_rejected() {
    // new Object; invokevirtual hashCode() without calling <init>.
    let mut cf = ClassBuilder::new("t/Uninit").build();
    let obj = cf.pool.class("java/lang/Object").unwrap();
    let hash = cf
        .pool
        .methodref("java/lang/Object", "hashCode", "()I")
        .unwrap();
    let code = Code {
        insns: vec![
            Insn::New(obj),
            Insn::InvokeVirtual(hash),
            Insn::Return(Some(Kind::Int)),
        ],
        handlers: vec![],
        max_locals: 0,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("()I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
}

#[test]
fn properly_initialized_object_is_accepted() {
    let mut cf = ClassBuilder::new("t/Init").build();
    let obj = cf.pool.class("java/lang/Object").unwrap();
    let init = cf
        .pool
        .methodref("java/lang/Object", "<init>", "()V")
        .unwrap();
    let hash = cf
        .pool
        .methodref("java/lang/Object", "hashCode", "()I")
        .unwrap();
    let mut a = Asm::new(0);
    a.new_object(obj)
        .dup()
        .invokespecial(init)
        .invokevirtual(hash);
    a.ret_val(Kind::Int);
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("()I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    verifier().verify(cf).unwrap();
}

#[test]
fn constructor_must_call_super_before_returning() {
    let mut cf = ClassBuilder::new("t/BadCtor").build();
    let code = Code {
        insns: vec![Insn::Return(None)], // never calls super.<init>
        handlers: vec![],
        max_locals: 1,
    };
    let attr = code.encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("<init>").unwrap();
    let d = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
    assert!(err.reason.contains("super"), "{}", err.reason);
}

#[test]
fn well_formed_constructor_verifies() {
    let mut cf = ClassBuilder::new("t/GoodCtor").build();
    let init = cf
        .pool
        .methodref("java/lang/Object", "<init>", "()V")
        .unwrap();
    let mut a = Asm::new(1);
    a.aload(0).invokespecial(init).ret();
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("<init>").unwrap();
    let d = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    verifier().verify(cf).unwrap();
}

#[test]
fn pop_of_long_is_rejected() {
    let cf = class_with_raw(
        "t/PopLong",
        "f",
        "()V",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![
                Insn::LConst(0),
                Insn::Pop, // category-2 violation
                Insn::Pop,
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 0,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
    assert!(err.reason.contains("category-2"), "{}", err.reason);
}

#[test]
fn reading_overwritten_wide_local_half_is_rejected() {
    // Store a long at 0 (occupies 0-1), overwrite slot 0 with an int,
    // then try to read the long back from 0.
    let cf = class_with_raw(
        "t/WideHalf",
        "f",
        "()V",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![
                Insn::LConst(0),
                Insn::Store(Kind::Long, 0),
                Insn::IConst(1),
                Insn::Store(Kind::Int, 1), // clobbers the tail slot
                Insn::Load(Kind::Long, 0), // broken pair
                Insn::Pop2,
                Insn::Return(None),
            ],
            handlers: vec![],
            max_locals: 2,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
}

#[test]
fn reading_uninitialized_local_is_rejected() {
    let cf = class_with_raw(
        "t/UninitLocal",
        "f",
        "()I",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![Insn::Load(Kind::Int, 0), Insn::Return(Some(Kind::Int))],
            handlers: vec![],
            max_locals: 1,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
}

#[test]
fn arithmetic_on_mismatched_kinds_is_rejected() {
    let cf = class_with_raw(
        "t/Mixed",
        "f",
        "()I",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![
                Insn::IConst(1),
                Insn::FConst(1.0),
                Insn::Arith(NumKind::Int, ArithOp::Add), // int + float
                Insn::Return(Some(Kind::Int)),
            ],
            handlers: vec![],
            max_locals: 0,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
}

#[test]
fn subroutines_are_rejected_by_the_strict_verifier() {
    let cf = class_with_raw(
        "t/Jsr",
        "f",
        "()V",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![
                Insn::Jsr(2),
                Insn::Return(None),
                Insn::Store(Kind::Ref, 0),
                Insn::Ret(0),
            ],
            handlers: vec![],
            max_locals: 1,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
    assert!(err.reason.contains("subroutines"), "{}", err.reason);
}

#[test]
fn exception_handlers_verify_with_thrown_reference() {
    let mut cf = ClassBuilder::new("t/Handler").build();
    let exc = cf.pool.class("java/lang/ArithmeticException").unwrap();
    let mut a = Asm::new(2);
    let s = a.new_label();
    let e = a.new_label();
    let h = a.new_label();
    a.place(s);
    a.iconst(1)
        .iload(0)
        .arith(NumKind::Int, ArithOp::Div)
        .istore(1);
    a.place(e);
    a.iload(1).ret_val(Kind::Int);
    a.place(h);
    a.astore(1); // store the exception; local 1 becomes a reference
    a.iconst(-1).ret_val(Kind::Int);
    a.handler(s, e, h, exc);
    let attr = a.finish().unwrap().encode(&cf.pool).unwrap();
    let n = cf.pool.utf8("f").unwrap();
    let d = cf.pool.utf8("(I)I").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: n,
        descriptor_index: d,
        attributes: vec![Attribute::Code(attr)],
    });
    let (_, report) = verifier().verify(cf).unwrap();
    assert!(report.static_checks > 0);
}

#[test]
fn athrow_of_non_reference_is_rejected() {
    let cf = class_with_raw(
        "t/ThrowInt",
        "f",
        "()V",
        AccessFlags::PUBLIC | AccessFlags::STATIC,
        Code {
            insns: vec![Insn::IConst(1), Insn::AThrow],
            handlers: vec![],
            max_locals: 0,
        },
    );
    let err = verifier().verify(cf).unwrap_err();
    assert_eq!(err.phase, 3);
}
